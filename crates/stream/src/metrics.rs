//! Lock-free per-shard observability.
//!
//! Same discipline as `triad-serve`'s metrics: every hot-path update is one
//! relaxed atomic op, snapshots tolerate torn reads. The histogram used for
//! score latency lives in `obs` ([`obs::Histogram`]) — one shared
//! implementation for the whole workspace — and is re-exported here (and by
//! `triad-serve`) so existing callers and the `stats` verb keep their exact
//! shape.

use std::sync::atomic::{AtomicU64, Ordering};

pub use obs::{Histogram, HistogramSnapshot};

/// Per-shard counters for the multi-stream manager.
pub struct ShardMetrics {
    /// Points accepted onto the ingest queue.
    pub ingested: AtomicU64,
    /// Points rejected because the bounded ingest queue was full
    /// (backpressure — the explicit drop account).
    pub dropped_backpressure: AtomicU64,
    /// Points rejected by the engine as NaN/Inf.
    pub dropped_nonfinite: AtomicU64,
    /// Windows embedded + scored.
    pub windows_scored: AtomicU64,
    /// Hysteresis events opened.
    pub events_opened: AtomicU64,
    /// Checkpoints written.
    pub checkpoints_written: AtomicU64,
    /// Streams skipped by a checkpoint sweep because their state stamp was
    /// unchanged since the last save (the on-disk file is already current).
    pub checkpoints_skipped_clean: AtomicU64,
    /// Checkpoint restores that failed CRC/format validation.
    pub checkpoint_failures: AtomicU64,
    /// Streams currently open on this shard.
    pub open_streams: AtomicU64,
    /// Per-window scoring latency, µs.
    pub score_latency_us: Histogram,
}

impl ShardMetrics {
    pub fn new() -> Self {
        ShardMetrics {
            ingested: AtomicU64::new(0),
            dropped_backpressure: AtomicU64::new(0),
            dropped_nonfinite: AtomicU64::new(0),
            windows_scored: AtomicU64::new(0),
            events_opened: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoints_skipped_clean: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            open_streams: AtomicU64::new(0),
            score_latency_us: Histogram::new(&[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]),
        }
    }

    /// Add `n` to a counter (relaxed; monotone tally).
    pub fn add(counter: &AtomicU64, n: u64) {
        // relaxed-ok: counters are independent monotone tallies; nothing is
        // published through them, so no ordering is needed.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter (relaxed; monitoring only).
    pub fn get(counter: &AtomicU64) -> u64 {
        // relaxed-ok: monitoring read; a stale value is acceptable.
        counter.load(Ordering::Relaxed)
    }

    /// Set a gauge-style counter to an absolute value.
    pub fn set(counter: &AtomicU64, v: u64) {
        // relaxed-ok: gauge store read only by monitoring snapshots.
        counter.store(v, Ordering::Relaxed);
    }
}

impl Default for ShardMetrics {
    fn default() -> Self {
        ShardMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_metrics_counters() {
        let m = ShardMetrics::new();
        ShardMetrics::add(&m.ingested, 10);
        ShardMetrics::add(&m.ingested, 5);
        ShardMetrics::set(&m.open_streams, 3);
        assert_eq!(ShardMetrics::get(&m.ingested), 15);
        assert_eq!(ShardMetrics::get(&m.open_streams), 3);
        m.score_latency_us.observe(42);
        assert_eq!(m.score_latency_us.count(), 1);
    }

    #[test]
    fn histogram_reexport_is_the_obs_type() {
        // The dedupe contract: serve/stream histograms ARE obs histograms.
        let h: obs::Histogram = Histogram::new(&[10]);
        h.observe(4);
        assert_eq!(h.count(), 1);
    }
}
