//! Run TriAD on the *real* UCR Anomaly Archive, if you have it.
//!
//! ```sh
//! cargo run --release --example real_ucr -- /path/to/UCR_Anomaly_Archive
//! ```
//!
//! Each file must use the archive's naming scheme
//! (`NNN_UCR_Anomaly_<name>_<trainEnd>_<anomBegin>_<anomEnd>.txt`). Without a
//! path the example demonstrates the loader on a generated file so it always
//! runs.

use triad_core::{TriAd, TriadConfig};
use ucrgen::loader;

fn main() {
    let dir = std::env::args().nth(1);
    let datasets = match dir {
        Some(d) => loader::load_dir(std::path::Path::new(&d)).expect("readable archive dir"),
        None => {
            // No archive available: write one synthetic dataset in the real
            // file format and load it back through the same code path.
            let ds = ucrgen::archive::generate_dataset(7, 25);
            let tmp = std::env::temp_dir().join("triad_real_ucr_demo");
            std::fs::create_dir_all(&tmp).expect("temp dir");
            let path = tmp.join(format!(
                "025_UCR_Anomaly_demo_{}_{}_{}.txt",
                ds.train_end,
                ds.anomaly.start + 1, // archive convention: 1-based inclusive
                ds.anomaly.end
            ));
            let body: Vec<String> = ds.series.iter().map(|v| format!("{v:.6}")).collect();
            std::fs::write(&path, body.join("\n")).expect("write demo file");
            println!("(no archive path given; demonstrating on {path:?})\n");
            vec![loader::load_file(&path).expect("round-trip")]
        }
    };

    println!("loaded {} dataset(s)", datasets.len());
    let cfg = TriadConfig {
        epochs: 6,
        merlin_step: 2,
        ..Default::default()
    };
    for ds in datasets.iter().take(3) {
        print!(
            "{}: train {} pts, test {} pts ... ",
            ds.name,
            ds.train().len(),
            ds.test().len()
        );
        match TriAd::new(cfg.clone()).fit(ds.train()) {
            Ok(fitted) => {
                let det = fitted.detect(ds.test());
                let hit = evalkit::eventwise::event_detected(
                    &det.selected_window,
                    &ds.anomaly_in_test(),
                    evalkit::eventwise::DEFAULT_MARGIN,
                );
                println!(
                    "window {:?} vs anomaly {:?} → {}",
                    det.selected_window,
                    ds.anomaly_in_test(),
                    if hit { "HIT" } else { "miss" }
                );
            }
            Err(e) => println!("skipped ({e})"),
        }
    }
}
