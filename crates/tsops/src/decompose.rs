//! Period estimation and classical seasonal decomposition.
//!
//! TriAD's third feature domain is the *residual*: "derived by eliminating the
//! underlying periodic trends from the original input" (Sec. III-B). We follow
//! the classical additive decomposition `x = trend + seasonal + residual`:
//!
//! * trend — centred moving average over one period;
//! * seasonal — per-phase means of the detrended series, re-centred to zero;
//! * residual — what is left.
//!
//! The period itself is estimated from the anomaly-free training split by
//! combining the FFT's dominant harmonic with an autocorrelation refinement
//! ([`estimate_period`]) — the FFT narrows the search to a harmonic
//! neighbourhood, the ACF picks the precise lag (robust to spectral leakage
//! when the period does not divide the series length).

use crate::spectral::dominant_harmonic;
use crate::stats::{autocorrelation, mean};

/// Result of the additive decomposition. All three components have the length
/// of the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    pub trend: Vec<f64>,
    pub seasonal: Vec<f64>,
    pub residual: Vec<f64>,
}

/// Estimate the fundamental period (in samples) of a (mostly) periodic series.
///
/// Returns `None` if the series is too short or has no detectable periodic
/// structure (dominant harmonic at DC or ACF peak below 0.1).
///
/// `max_period` bounds the search; pass `series.len() / 2` when in doubt.
pub fn estimate_period(series: &[f64], max_period: usize) -> Option<usize> {
    let n = series.len();
    if n < 8 {
        return None;
    }
    let max_period = max_period.min(n / 2).max(2);

    // 1) FFT guess: dominant harmonic k → period ≈ n/k.
    let fft_guess = dominant_harmonic(series).map(|k| (n as f64 / k as f64).round() as usize);

    // 2) ACF refinement around the guess (±25%), or a full scan if no guess.
    let acf = autocorrelation(series, max_period);
    let (lo, hi) = match fft_guess {
        Some(p) if p >= 2 && p <= max_period => {
            let lo = ((p as f64 * 0.75) as usize).max(2);
            let hi = ((p as f64 * 1.25).ceil() as usize).min(max_period);
            (lo, hi)
        }
        _ => (2, max_period),
    };
    let scan = |lo: usize, hi: usize| -> (usize, f64) {
        let mut best_lag = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for lag in lo..=hi {
            // Only local maxima of the ACF are period candidates.
            if lag + 1 < acf.len() && lag >= 1 {
                let v = acf[lag];
                let is_peak = v >= acf[lag - 1] && v >= acf[lag + 1];
                if is_peak && v > best_val {
                    best_val = v;
                    best_lag = lag;
                }
            }
        }
        if best_lag == 0 {
            // No interior peak; fall back to plain argmax over the range.
            for lag in lo..=hi.min(acf.len().saturating_sub(1)) {
                if acf[lag] > best_val {
                    best_val = acf[lag];
                    best_lag = lag;
                }
            }
        }
        (best_lag, best_val)
    };

    let (mut best_lag, mut best_val) = scan(lo, hi);
    if best_lag < 2 || best_val <= 0.1 {
        // The FFT guess pointed at a higher harmonic (spiky waveforms do
        // this); retry over the full admissible lag range.
        let (l, v) = scan(2, max_period);
        best_lag = l;
        best_val = v;
    }
    (best_lag >= 2 && best_val > 0.1).then_some(best_lag)
}

/// Centred moving average of width `period` (even widths use the standard
/// 2×MA convention so the window stays centred). Endpoints are padded by
/// repeating the first/last computable value.
pub fn trend_moving_average(series: &[f64], period: usize) -> Vec<f64> {
    let n = series.len();
    assert!(period >= 1, "period must be ≥ 1");
    if n == 0 {
        return Vec::new();
    }
    if period == 1 || n < period + 1 {
        return vec![mean(series); n];
    }

    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    if period % 2 == 1 {
        let w = period as f64;
        let mut sum: f64 = series[..period].iter().sum();
        for c in half..n - half {
            trend[c] = sum / w;
            if c + half + 1 < n {
                sum += series[c + half + 1] - series[c - half];
            }
        }
    } else {
        // 2×MA: average of two adjacent length-`period` windows, weights
        // ½,1,…,1,½ over period+1 points.
        let w = period as f64;
        for c in half..n - half {
            let lo = c - half;
            let hi = c + half; // inclusive
            let mut sum = 0.5 * series[lo] + 0.5 * series[hi];
            for v in &series[lo + 1..hi] {
                sum += v;
            }
            trend[c] = sum / w;
        }
    }
    // Pad endpoints.
    let first = trend
        .iter()
        .copied()
        .find(|v| !v.is_nan())
        .unwrap_or_else(|| mean(series));
    let last = trend
        .iter()
        .rev()
        .copied()
        .find(|v| !v.is_nan())
        .unwrap_or(first);
    for v in trend.iter_mut() {
        if v.is_nan() {
            *v = first;
        } else {
            break;
        }
    }
    for v in trend.iter_mut().rev() {
        if v.is_nan() {
            *v = last;
        } else {
            break;
        }
    }
    trend
}

/// Classical additive decomposition with a known period.
pub fn decompose(series: &[f64], period: usize) -> Decomposition {
    let n = series.len();
    let trend = trend_moving_average(series, period);
    let detrended: Vec<f64> = series.iter().zip(&trend).map(|(x, t)| x - t).collect();

    // Per-phase means.
    let period = period.max(1);
    let mut phase_sum = vec![0.0f64; period];
    let mut phase_cnt = vec![0usize; period];
    for (i, v) in detrended.iter().enumerate() {
        phase_sum[i % period] += v;
        phase_cnt[i % period] += 1;
    }
    let mut profile: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_cnt)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Re-centre the seasonal profile to zero mean so trend keeps the level.
    let pm = mean(&profile);
    for v in &mut profile {
        *v -= pm;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| profile[i % period]).collect();
    let residual: Vec<f64> = series
        .iter()
        .zip(&trend)
        .zip(&seasonal)
        .map(|((x, t), s)| x - t - s)
        .collect();
    Decomposition {
        trend,
        seasonal,
        residual,
    }
}

/// Convenience: the residual channel of one window, decomposed with `period`.
/// This is what the residual-domain encoder consumes.
pub fn residual_of(series: &[f64], period: usize) -> Vec<f64> {
    decompose(series, period).residual
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn periodic(n: usize, p: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * i as f64 / p).sin() + 0.3 * (4.0 * PI * i as f64 / p).sin())
            .collect()
    }

    #[test]
    fn estimates_exact_period() {
        for p in [10usize, 25, 50, 140] {
            let x = periodic(p * 12, p as f64);
            let est = estimate_period(&x, x.len() / 2).unwrap();
            assert!(est.abs_diff(p) <= 1, "period {p} estimated as {est}");
        }
    }

    #[test]
    fn estimates_period_with_noise_and_trend() {
        let p = 30usize;
        let x: Vec<f64> = periodic(p * 15, p as f64)
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.002 * i as f64 + 0.1 * ((i * 2654435761) as f64 % 1.0 - 0.5))
            .collect();
        let est = estimate_period(&x, x.len() / 2).unwrap();
        assert!(est.abs_diff(p) <= 2, "estimated {est}");
    }

    #[test]
    fn no_period_in_flat_or_tiny_series() {
        assert_eq!(estimate_period(&vec![1.0; 100], 50), None);
        assert_eq!(estimate_period(&[1.0, 2.0, 3.0], 2), None);
    }

    #[test]
    fn trend_recovers_linear_ramp() {
        let p = 20usize;
        let x: Vec<f64> = (0..300)
            .map(|i| 0.05 * i as f64 + (2.0 * PI * i as f64 / p as f64).sin())
            .collect();
        let t = trend_moving_average(&x, p);
        // Interior trend ≈ the ramp (MA of a full period kills the sinusoid).
        for i in p..300 - p {
            assert!((t[i] - 0.05 * i as f64).abs() < 0.05, "i={i} t={}", t[i]);
        }
    }

    #[test]
    fn decompose_reconstructs_input() {
        let x = periodic(200, 25.0);
        let d = decompose(&x, 25);
        for i in 0..x.len() {
            let recon = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((recon - x[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_of_clean_periodic_signal_is_small() {
        let x = periodic(400, 40.0);
        let d = decompose(&x, 40);
        let interior = &d.residual[40..360];
        let rms = (interior.iter().map(|v| v * v).sum::<f64>() / interior.len() as f64).sqrt();
        assert!(rms < 0.05, "residual rms {rms}");
    }

    #[test]
    fn residual_flags_injected_spike() {
        let mut x = periodic(400, 40.0);
        x[200] += 5.0;
        let d = decompose(&x, 40);
        let argmax = d
            .residual
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        assert_eq!(argmax, 200);
    }

    #[test]
    fn seasonal_profile_is_zero_mean() {
        let x = periodic(300, 30.0);
        let d = decompose(&x, 30);
        let profile_mean = mean(&d.seasonal[..30]);
        assert!(profile_mean.abs() < 1e-10);
    }

    #[test]
    fn degenerate_periods() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let d = decompose(&x, 1);
        assert_eq!(d.trend.len(), 4);
        let t = trend_moving_average(&[], 5);
        assert!(t.is_empty());
    }
}
