//! Seeded weight initialisers.
//!
//! All experiments in the paper are run under five fixed seeds (Sec. IV-A3);
//! every initialiser here consumes an explicit RNG so a `u64` seed fully
//! determines a model.
//!
//! lint-allow-file(lossy-cast): initialisers sample in f64 and narrow to the
//! crate's f32 tensors by design; fan counts are small integers, exact in f32.

use crate::tensor::Tensor;
use rand::Rng;

/// One standard-normal sample (Box–Muller; avoids a `rand_distr` dependency).
fn normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// He (Kaiming) normal initialisation: `N(0, √(2/fan_in))`. The right choice
/// for the ReLU convolution stacks of the tri-domain encoder.
pub fn he_normal<R: Rng>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| normal(rng) * std).collect())
}

/// Xavier/Glorot uniform initialisation: `U(±√(6/(fan_in+fan_out)))`. Used for
/// the sigmoid/tanh-gated LSTM and attention projections.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * bound)
            .collect(),
    )
}

/// Zeros — biases.
pub fn zeros(shape: &[usize]) -> Tensor {
    Tensor::zeros(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_is_right() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = he_normal(&mut rng, &[100, 100], 100);
        let m: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
        let v: f32 = t.data().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / t.numel() as f32;
        let target = 2.0 / 100.0;
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - target).abs() < target * 0.15, "var {v} vs {target}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, &[50, 50], 50, 50);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn determinism_per_seed() {
        let a = he_normal(&mut StdRng::seed_from_u64(7), &[10], 10);
        let b = he_normal(&mut StdRng::seed_from_u64(7), &[10], 10);
        assert_eq!(a, b);
    }
}
