//! Per-file analysis context shared by every rule.
//!
//! One tokenize pass per file produces:
//! * the significant-token stream (whitespace and comments stripped) that
//!   rules pattern-match over;
//! * **test regions** — byte ranges covered by `#[cfg(test)]` / `#[test]`
//!   items, so panic-hygiene rules can exempt test code;
//! * **suppressions** — `// lint-allow(rule): reason` comments, resolved to
//!   the lines they govern;
//! * the file's **crate class** (kernel / library / binary / test support),
//!   derived from its workspace-relative path.

use crate::parser::{self, Tree};
use crate::scope::{self, Symbols};
use crate::tokenizer::{tokenize, Tok, TokKind};
use std::collections::HashMap;

/// How a file participates in the workspace, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source of a numeric-kernel crate (`tsops`, `neuro`,
    /// `discord`): numeric rules apply at full strictness.
    Kernel,
    /// Library source of any other workspace crate.
    Library,
    /// Binary-target source (`main.rs`, `src/bin/*`): process-level code
    /// may abort; panic-hygiene rules do not apply.
    Binary,
    /// Integration tests, benches, examples, fixtures: exempt from the
    /// non-test-code rules entirely.
    TestSupport,
}

/// Crates whose inner loops do lossy float/index arithmetic on purpose —
/// the numeric rules watch these hardest (see ISSUE/PAPER §IV).
const KERNEL_CRATES: &[&str] = &["tsops", "neuro", "discord"];

/// The measurement harness: its whole purpose is to abort loudly on any
/// setup problem, so panic-hygiene rules skip it (documented in DESIGN.md).
const HARNESS_CRATES: &[&str] = &["bench"];

/// One `// lint-allow(rule, rule2): reason` annotation (or the
/// file-scoped `// lint-allow-file(rule): reason` variant).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules named inside the parentheses.
    pub rules: Vec<String>,
    /// Whether a non-empty reason follows the colon.
    pub has_reason: bool,
    /// Line the comment sits on.
    pub line: u32,
    /// Lines this suppression governs: from its own line through the first
    /// code line after it (so a multi-line justification comment still
    /// reaches the code below it), or the whole file for `lint-allow-file`.
    pub applies_to: (u32, u32),
}

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    pub src: &'a [u8],
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    pub class: FileClass,
    /// Crate name (`core`, `serve`, …) or `"workspace"` for root `src/`.
    pub crate_name: String,
    /// All tokens, in order.
    pub tokens: Vec<Tok>,
    /// Indices into `tokens` of significant tokens (no whitespace/comments).
    pub sig: Vec<usize>,
    /// Delimiter tree over `tokens` (see `parser`): bracket matching and
    /// group structure for the syntax-aware rules.
    pub tree: Tree,
    /// Scope/symbol table (see `scope`): field and local-binding types for
    /// receiver resolution.
    pub symbols: Symbols,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// Byte ranges of items sanctioned by `// numeric-mode(fast): reason`
    /// markers — fast-numeric kernels whose parallel float reductions are
    /// tolerance-gated by tests rather than bit-exact by construction.
    /// Only populated in kernel-crate files.
    fast_numeric_regions: Vec<(usize, usize)>,
    /// All suppression annotations found in comments.
    pub suppressions: Vec<Suppression>,
    /// rule-id → lines it is suppressed on.
    suppressed_lines: HashMap<String, Vec<(u32, u32)>>,
}

impl<'a> FileContext<'a> {
    pub fn new(rel_path: &str, src: &'a [u8]) -> Self {
        let tokens = tokenize(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let (class, crate_name) = classify(rel_path);
        let tree = parser::parse(&tokens, src);
        let symbols = scope::analyze(src, &tokens, &sig);
        let test_regions = find_test_regions(src, &tokens, &sig);
        // The fast-numeric sanction is a kernel-crate privilege: elsewhere
        // the marker is inert prose and the rules stay at full strictness.
        let fast_numeric_regions = if class == FileClass::Kernel {
            find_fast_numeric_regions(src, &tokens)
        } else {
            Vec::new()
        };
        let suppressions = find_suppressions(src, &tokens);
        let mut suppressed_lines: HashMap<String, Vec<(u32, u32)>> = HashMap::new();
        for s in &suppressions {
            if !s.has_reason {
                continue; // a reason is mandatory; rejected in `engine`
            }
            for r in &s.rules {
                suppressed_lines
                    .entry(r.clone())
                    .or_default()
                    .push(s.applies_to);
            }
        }
        FileContext {
            src,
            rel_path: rel_path.to_string(),
            class,
            crate_name,
            tokens,
            sig,
            tree,
            symbols,
            test_regions,
            fast_numeric_regions,
            suppressions,
            suppressed_lines,
        }
    }

    /// Significant token at significant-index `i` (not a raw token index).
    pub fn stok(&self, i: usize) -> &Tok {
        &self.tokens[self.sig[i]]
    }

    /// Text of the significant token at significant-index `i`.
    pub fn stext(&self, i: usize) -> std::borrow::Cow<'_, str> {
        self.stok(i).text(self.src)
    }

    /// Number of significant tokens.
    pub fn slen(&self) -> usize {
        self.sig.len()
    }

    /// Matching closer, in significant-index space, for the opener at
    /// significant index `i` (`None` for unterminated groups/non-openers).
    pub fn smatch_close(&self, i: usize) -> Option<usize> {
        let raw = self.tree.matching_close(self.sig[i])?;
        self.sig.binary_search(&raw).ok()
    }

    /// Is this byte offset inside a `#[cfg(test)]` / `#[test]` item?
    pub fn in_test_code(&self, byte: usize) -> bool {
        self.class == FileClass::TestSupport
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| byte >= s && byte < e)
    }

    /// Is this byte inside an item sanctioned by `// numeric-mode(fast):
    /// reason`? Such items opt out of the bit-exact reduction-order
    /// contract (their equivalence is tolerance-tested instead); the
    /// sanction exists only in kernel crates and only with a reason.
    pub fn in_fast_numeric(&self, byte: usize) -> bool {
        self.fast_numeric_regions
            .iter()
            .any(|&(s, e)| byte >= s && byte < e)
    }

    /// Is `rule` suppressed (with a reason) on `line`?
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressed_lines
            .get(rule)
            .is_some_and(|spans| spans.iter().any(|&(lo, hi)| line >= lo && line <= hi))
    }

    /// Whether the panic-hygiene family applies to this file at all.
    pub fn panic_rules_apply(&self) -> bool {
        matches!(self.class, FileClass::Kernel | FileClass::Library)
            && !HARNESS_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Path → (class, crate name). Paths are workspace-relative with `/`.
fn classify(rel_path: &str) -> (FileClass, String) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Root `src/lib.rs`, root `tests/`, `examples/`.
    if parts.first() == Some(&"src") {
        return (FileClass::Library, "workspace".into());
    }
    if matches!(parts.first(), Some(&"tests") | Some(&"examples")) {
        return (FileClass::TestSupport, "workspace".into());
    }
    if parts.first() == Some(&"crates") && parts.len() >= 3 {
        let krate = parts[1].to_string();
        match parts[2] {
            "tests" | "benches" | "examples" | "fixtures" => {
                return (FileClass::TestSupport, krate)
            }
            "src" => {
                let in_bin = parts.get(3) == Some(&"bin");
                let is_main = parts.last() == Some(&"main.rs");
                if in_bin || is_main {
                    return (FileClass::Binary, krate);
                }
                if KERNEL_CRATES.contains(&krate.as_str()) {
                    return (FileClass::Kernel, krate);
                }
                return (FileClass::Library, krate);
            }
            _ => return (FileClass::Library, krate),
        }
    }
    (FileClass::Library, "workspace".into())
}

/// Find byte ranges of items annotated `#[test]`, `#[cfg(test)]` or any
/// `#[cfg(...)]` attribute that mentions `test` (covers `cfg(all(test, …))`).
///
/// For each such attribute, the covered range runs from the attribute to the
/// end of the item it introduces: the matching `}` of the first `{` opened
/// after the attribute (skipping further attributes), or the first `;` if
/// none opens (e.g. `#[cfg(test)] use …;`).
fn find_test_regions(src: &[u8], tokens: &[Tok], sig: &[usize]) -> Vec<(usize, usize)> {
    let text = |i: usize| tokens[sig[i]].text(src);
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        // Match `#` `[` … `]` and remember whether `test` appears inside.
        if text(i) == "#" && i + 1 < sig.len() && text(i + 1) == "[" {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut mentions_test = false;
            while j < sig.len() {
                match text(j).as_ref() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if mentions_test && j < sig.len() {
                let start = tokens[sig[i]].start;
                // Skip any further attributes between this one and the item.
                let mut k = j + 1;
                while k + 1 < sig.len() && text(k) == "#" && text(k + 1) == "[" {
                    let mut d = 0i32;
                    while k < sig.len() {
                        match text(k).as_ref() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Find the item body: first `{` (then match it) or `;`.
                let mut bdepth = 0i32;
                let mut end = None;
                let mut m = k;
                while m < sig.len() {
                    match text(m).as_ref() {
                        "{" => bdepth += 1,
                        "}" => {
                            bdepth -= 1;
                            if bdepth == 0 {
                                end = Some(tokens[sig[m]].end);
                                break;
                            }
                        }
                        ";" if bdepth == 0 => {
                            end = Some(tokens[sig[m]].end);
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                regions.push((start, end.unwrap_or(src.len())));
                i = j + 1;
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    regions
}

/// Find byte ranges of items introduced by a `// numeric-mode(fast): reason`
/// marker comment. Like suppressions, the marker must open the comment body
/// and carry a non-empty reason; like test regions, the covered range runs
/// from the marker to the end of the item it introduces — the matching `}`
/// of the first `{` opened after it, or the first top-level `;`.
fn find_fast_numeric_regions(src: &[u8], tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (ti, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = t.text(src);
        let trimmed = body
            .trim_start_matches(|c: char| c == '/' || c == '*' || c == '!' || c.is_whitespace());
        let Some(rest) = trimmed.strip_prefix("numeric-mode(fast)") else {
            continue;
        };
        let has_reason = rest
            .strip_prefix(':')
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        if !has_reason {
            continue;
        }
        let mut depth = 0i32;
        let mut end = src.len();
        for n in &tokens[ti + 1..] {
            if matches!(
                n.kind,
                TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
            ) {
                continue;
            }
            match n.text(src).as_ref() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = n.end;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = n.end;
                    break;
                }
                _ => {}
            }
        }
        out.push((t.start, end));
    }
    out
}

/// Scan comments for `lint-allow(rule[, rule…]): reason` and the
/// file-scoped `lint-allow-file(rule): reason`.
fn find_suppressions(src: &[u8], tokens: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (ti, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = t.text(src);
        // The marker must open the comment body (after `//`, `/*`, doc
        // sigils and whitespace) — prose that merely *mentions*
        // `lint-allow(...)` mid-sentence is not a suppression.
        let trimmed = body
            .trim_start_matches(|c: char| c == '/' || c == '*' || c == '!' || c.is_whitespace());
        let (marker, file_scoped) = if trimmed.starts_with("lint-allow-file(") {
            ("lint-allow-file(", true)
        } else if trimmed.starts_with("lint-allow(") {
            ("lint-allow(", false)
        } else {
            continue;
        };
        let rest = &trimmed[marker.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = &rest[close + 1..];
        let has_reason = after
            .strip_prefix(':')
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        let applies_to = if file_scoped {
            (1, u32::MAX)
        } else {
            // Govern the comment's own line through the first code line after
            // it, skipping continuation comment lines — a justification too
            // long for one line still reaches the code it annotates.
            let next_code_line = tokens[ti + 1..]
                .iter()
                .find(|n| {
                    !matches!(
                        n.kind,
                        TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
                    )
                })
                .map(|n| n.line);
            let hi = next_code_line.map_or(t.line + 1, |l| l.max(t.line + 1));
            (t.line, hi)
        };
        out.push(Suppression {
            rules,
            has_reason,
            line: t.line,
            applies_to,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/tsops/src/fft.rs"),
            (FileClass::Kernel, "tsops".into())
        );
        assert_eq!(
            classify("crates/core/src/detect.rs"),
            (FileClass::Library, "core".into())
        );
        assert_eq!(
            classify("crates/cli/src/main.rs"),
            (FileClass::Binary, "cli".into())
        );
        assert_eq!(
            classify("crates/bench/src/bin/table3.rs"),
            (FileClass::Binary, "bench".into())
        );
        assert_eq!(
            classify("crates/cli/tests/cli.rs"),
            (FileClass::TestSupport, "cli".into())
        );
        assert_eq!(
            classify("tests/end_to_end.rs"),
            (FileClass::TestSupport, "workspace".into())
        );
        assert_eq!(
            classify("src/lib.rs"),
            (FileClass::Library, "workspace".into())
        );
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = b"fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        let lib_at = src.windows(1).position(|w| w == b"x").expect("x position");
        let test_at = src.windows(1).position(|w| w == b"y").expect("y position");
        let tail_at = src
            .windows(4)
            .position(|w| w == b"tail")
            .expect("tail position");
        assert!(!cx.in_test_code(lib_at));
        assert!(cx.in_test_code(test_at));
        assert!(!cx.in_test_code(tail_at));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = b"#[test]\nfn check() { z.unwrap(); }\nfn lib() { w.unwrap(); }\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        let z = src.windows(2).position(|w| w == b"z.").expect("z.");
        let w = src.windows(2).position(|w| w == b"w.").expect("w.");
        assert!(cx.in_test_code(z));
        assert!(!cx.in_test_code(w));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = b"#[cfg(feature = \"x\")]\nfn gated() { q.unwrap(); }\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        let q = src.iter().position(|&b| b == b'q').expect("q");
        assert!(!cx.in_test_code(q));
    }

    #[test]
    fn suppressions_parse_and_require_reasons() {
        let src = b"// lint-allow(no-unwrap): holds by construction\nx.unwrap();\n// lint-allow(float-cmp)\ny.partial_cmp(z);\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        assert_eq!(cx.suppressions.len(), 2);
        assert!(cx.suppressions[0].has_reason);
        assert!(!cx.suppressions[1].has_reason);
        assert!(cx.is_suppressed("no-unwrap", 2));
        assert!(!cx.is_suppressed("no-unwrap", 4));
        // Reason-less suppression does not actually suppress.
        assert!(!cx.is_suppressed("float-cmp", 4));
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = b"let v = m.lock().unwrap(); // lint-allow(no-unwrap): test-only helper\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        assert!(cx.is_suppressed("no-unwrap", 1));
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_suppression() {
        let src = b"/// Suppress with `lint-allow(rule): reason` on the line above.\nfn doc() {}\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        assert!(cx.suppressions.is_empty());
    }

    #[test]
    fn file_scoped_suppression_covers_every_line() {
        let src = b"//! lint-allow-file(lossy-cast): quantized kernel, narrowing is intentional\nfn a() {}\nfn b() { let _ = 1.0f64 as f32; }\n";
        let cx = FileContext::new("crates/tsops/src/x.rs", src);
        assert!(cx.is_suppressed("lossy-cast", 3));
        assert!(cx.is_suppressed("lossy-cast", 999));
        assert!(!cx.is_suppressed("no-unwrap", 3));
    }

    #[test]
    fn multi_line_suppression_reaches_the_code_below_the_block() {
        let src = b"// lint-allow(no-panic): sanitizer trip; stopping at the first bad\n// value is the feature, exactly like debug_assert!\npanic!(\"bad\");\nother();\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        assert!(cx.is_suppressed("no-panic", 3));
        assert!(!cx.is_suppressed("no-panic", 4));
    }

    #[test]
    fn fast_numeric_marker_covers_the_item_it_introduces() {
        let src = b"// numeric-mode(fast): diagonal partials merge by max\nfn kernel() { hot(); }\nfn other() { cold(); }\n";
        let cx = FileContext::new("crates/tsops/src/x.rs", src);
        let hot = src.windows(3).position(|w| w == b"hot").expect("hot");
        let cold = src.windows(4).position(|w| w == b"cold").expect("cold");
        assert!(cx.in_fast_numeric(hot));
        assert!(!cx.in_fast_numeric(cold));
    }

    #[test]
    fn fast_numeric_marker_requires_a_reason() {
        let src = b"// numeric-mode(fast)\nfn kernel() { hot(); }\n";
        let cx = FileContext::new("crates/tsops/src/x.rs", src);
        let hot = src.windows(3).position(|w| w == b"hot").expect("hot");
        assert!(!cx.in_fast_numeric(hot));
    }

    #[test]
    fn fast_numeric_marker_is_inert_outside_kernel_crates() {
        let src =
            b"// numeric-mode(fast): not a kernel crate, no sanction\nfn kernel() { hot(); }\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        let hot = src.windows(3).position(|w| w == b"hot").expect("hot");
        assert!(!cx.in_fast_numeric(hot));
    }

    #[test]
    fn prose_mentioning_fast_numeric_marker_is_inert() {
        let src = b"/// Sanction with `numeric-mode(fast): reason` above the item.\nfn doc() { hot(); }\n";
        let cx = FileContext::new("crates/tsops/src/x.rs", src);
        let hot = src.windows(3).position(|w| w == b"hot").expect("hot");
        assert!(!cx.in_fast_numeric(hot));
    }

    #[test]
    fn multi_rule_suppression() {
        let src = b"// lint-allow(no-unwrap, float-cmp): both fine here\nwork();\n";
        let cx = FileContext::new("crates/core/src/x.rs", src);
        assert!(cx.is_suppressed("no-unwrap", 2));
        assert!(cx.is_suppressed("float-cmp", 2));
        assert!(!cx.is_suppressed("no-panic", 2));
    }
}
