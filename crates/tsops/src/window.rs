//! Time-series segmentation into fixed-length, strided windows.
//!
//! TriAD (Sec. IV-A2) segments each series into windows covering ~2.5 periods
//! with a stride of a quarter window. [`Segmenter`] owns that policy;
//! [`Windows`] is the resulting view with bookkeeping to map window indices
//! back to timestamp ranges (needed when votes are projected back onto the
//! series).

/// Start offsets of strided windows of length `window` over a series of
/// `len` points, with the final window flush with the end of the series so
/// no suffix is left uncovered. Yields nothing when `len < window`.
///
/// This is the one place the striding arithmetic lives; [`Segmenter::segment`]
/// and the streaming engine's window-completion logic both consume it, so the
/// off-by-one-prone flush handling cannot drift between them.
pub fn strided_windows(len: usize, window: usize, stride: usize) -> StridedWindows {
    assert!(window >= 1, "window length must be ≥ 1");
    assert!(stride >= 1, "stride must be ≥ 1");
    if len < window {
        StridedWindows {
            next: 0,
            last: 0,
            stride,
            state: StrideState::Done,
        }
    } else {
        StridedWindows {
            next: 0,
            last: len - window,
            stride,
            state: StrideState::OnGrid,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StrideState {
    /// Yielding `0, stride, 2·stride, …` while they stay ≤ `last`.
    OnGrid,
    /// The grid overshot `last`; one off-grid flush start remains.
    Flush,
    Done,
}

/// Iterator returned by [`strided_windows`].
#[derive(Debug, Clone)]
pub struct StridedWindows {
    next: usize,
    last: usize,
    stride: usize,
    state: StrideState,
}

impl Iterator for StridedWindows {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self.state {
            StrideState::Done => None,
            StrideState::Flush => {
                self.state = StrideState::Done;
                Some(self.last)
            }
            StrideState::OnGrid => {
                let cur = self.next;
                if cur >= self.last {
                    self.state = StrideState::Done;
                    return Some(self.last);
                }
                self.next = cur + self.stride;
                if self.next > self.last {
                    self.state = StrideState::Flush;
                }
                Some(cur)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self.state {
            StrideState::Done => 0,
            StrideState::Flush => 1,
            StrideState::OnGrid => {
                let span = self.last - self.next;
                // Grid starts plus the off-grid flush start, if any.
                span / self.stride + 1 + usize::from(span % self.stride != 0)
            }
        };
        (n, Some(n))
    }
}

/// Iterator-free segmentation result: start offsets plus the shared length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Windows {
    /// Start timestamp of each window.
    pub starts: Vec<usize>,
    /// Common window length `L`.
    pub len: usize,
}

impl Windows {
    /// Number of windows `M`.
    pub fn count(&self) -> usize {
        self.starts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Half-open timestamp range `[start, start+L)` of window `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        let s = self.starts[i];
        s..s + self.len
    }

    /// Borrow the slice of window `i` out of the source series.
    pub fn slice<'a>(&self, series: &'a [f64], i: usize) -> &'a [f64] {
        &series[self.range(i)]
    }

    /// Indices of all windows whose range contains timestamp `t`.
    pub fn covering(&self, t: usize) -> Vec<usize> {
        self.starts
            .iter()
            .enumerate()
            .filter(|(_, &s)| s <= t && t < s + self.len)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Segmentation policy: window length and stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segmenter {
    pub window: usize,
    pub stride: usize,
}

impl Segmenter {
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window >= 1, "window length must be ≥ 1");
        assert!(stride >= 1, "stride must be ≥ 1");
        Segmenter { window, stride }
    }

    /// The paper's policy: `L = ceil(2.5 · period)`, `stride = max(1, L/4)`.
    pub fn for_period(period: usize) -> Self {
        let window = ((period as f64) * 2.5).ceil() as usize;
        let window = window.max(4);
        Segmenter::new(window, (window / 4).max(1))
    }

    /// Segment `series`, always including a final window flush with the end of
    /// the series so no suffix is ever left uncovered (an anomaly in the tail
    /// must land inside some window).
    pub fn segment(&self, series_len: usize) -> Windows {
        Windows {
            starts: strided_windows(series_len, self.window, self.stride).collect(),
            len: self.window,
        }
    }

    /// Like [`segment`](Segmenter::segment), but a series shorter than one
    /// window becomes a single clamped window covering all of it instead of
    /// no windows at all. This is the policy shared by `core::detect` and the
    /// baselines: every test split, however short, must yield at least one
    /// rankable window.
    pub fn segment_clamped(&self, series_len: usize) -> Windows {
        if series_len >= self.window {
            self.segment(series_len)
        } else {
            Windows {
                starts: vec![0],
                len: series_len,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_series() {
        let seg = Segmenter::new(10, 3);
        let w = seg.segment(25);
        assert_eq!(w.len, 10);
        assert_eq!(w.starts, vec![0, 3, 6, 9, 12, 15]);
        // Final window flush with the end.
        assert_eq!(*w.starts.last().unwrap() + w.len, 25);
    }

    #[test]
    fn exact_fit_has_single_flush_window() {
        let w = Segmenter::new(10, 4).segment(10);
        assert_eq!(w.starts, vec![0]);
    }

    #[test]
    fn too_short_series_yields_no_windows() {
        let w = Segmenter::new(10, 2).segment(7);
        assert!(w.is_empty());
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn stride_divides_exactly_no_duplicate_tail() {
        let w = Segmenter::new(4, 2).segment(12);
        assert_eq!(w.starts, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn for_period_policy() {
        let s = Segmenter::for_period(140);
        assert_eq!(s.window, 350);
        assert_eq!(s.stride, 87);
        // Degenerate small periods still give usable windows.
        let s = Segmenter::for_period(1);
        assert!(s.window >= 4 && s.stride >= 1);
    }

    #[test]
    fn covering_finds_overlapping_windows() {
        let w = Segmenter::new(10, 3).segment(25);
        let c = w.covering(11);
        // Windows starting at 3, 6, 9 contain t=11; 12 starts after it.
        assert_eq!(c, vec![1, 2, 3]);
        assert!(w.covering(0) == vec![0]);
        assert!(w.covering(24).contains(&(w.count() - 1)));
    }

    #[test]
    fn strided_windows_matches_segment_across_shapes() {
        for len in 0..60usize {
            for window in 1..12usize {
                for stride in 1..6usize {
                    let iter: Vec<usize> = strided_windows(len, window, stride).collect();
                    let seg = Segmenter::new(window, stride).segment(len);
                    assert_eq!(iter, seg.starts, "len={len} w={window} s={stride}");
                    let (lo, hi) = strided_windows(len, window, stride).size_hint();
                    assert_eq!(lo, iter.len(), "size_hint len={len} w={window} s={stride}");
                    assert_eq!(hi, Some(iter.len()));
                }
            }
        }
    }

    #[test]
    fn strided_windows_flush_and_exact_grid() {
        let s: Vec<usize> = strided_windows(23, 10, 4).collect();
        assert_eq!(s, vec![0, 4, 8, 12, 13]); // off-grid tail flushes at 13
        let s: Vec<usize> = strided_windows(12, 4, 2).collect();
        assert_eq!(s, vec![0, 2, 4, 6, 8]); // exact grid: no duplicate tail
        assert!(strided_windows(3, 4, 1).next().is_none());
    }

    #[test]
    fn segment_clamped_short_series_single_window() {
        let seg = Segmenter::new(10, 3);
        let w = seg.segment_clamped(7);
        assert_eq!(w.starts, vec![0]);
        assert_eq!(w.len, 7);
        // At or above one window it is exactly segment().
        assert_eq!(seg.segment_clamped(25), seg.segment(25));
        assert_eq!(seg.segment_clamped(10), seg.segment(10));
    }

    #[test]
    fn slice_returns_expected_values() {
        let series: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let w = Segmenter::new(5, 5).segment(series.len());
        assert_eq!(w.slice(&series, 1), &[5.0, 6.0, 7.0, 8.0, 9.0]);
    }
}
