//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a single-use tape: the forward pass appends one node per op
//! (its value, its parents, and a backward closure); [`Graph::backward`] walks
//! the tape in reverse creation order — which is a valid reverse topological
//! order because parents are always created before children — accumulating
//! gradients, and finally flushes leaf gradients into the persistent
//! [`Param`] cells that layers own.
//!
//! Shapes are validated eagerly at op-recording time, so a mis-wired model
//! fails at the call site of the offending op rather than deep inside
//! `backward`.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

/// Index of a node on the tape.
pub type NodeId = usize;

/// Persistent trainable parameter: value plus accumulated gradient, shared
/// between the owning layer, the graphs that use it, and the optimizer.
#[derive(Clone)]
pub struct Param(Rc<RefCell<ParamData>>);

pub struct ParamData {
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param(Rc::new(RefCell::new(ParamData { value, grad })))
    }

    pub fn value(&self) -> std::cell::Ref<'_, ParamData> {
        self.0.borrow()
    }

    pub fn borrow_mut(&self) -> std::cell::RefMut<'_, ParamData> {
        self.0.borrow_mut()
    }

    /// Snapshot of the current value.
    pub fn tensor(&self) -> Tensor {
        self.0.borrow().value.clone()
    }

    pub fn shape(&self) -> Vec<usize> {
        self.0.borrow().value.shape().to_vec()
    }

    pub fn zero_grad(&self) {
        self.0.borrow_mut().grad.zero_();
    }

    pub fn numel(&self) -> usize {
        self.0.borrow().value.numel()
    }
}

type BackFn = Box<dyn Fn(&[Tensor], &Tensor, &mut [Option<Tensor>])>;

/// One-shot autodiff tape. Create per forward pass; drop after `backward`.
pub struct Graph {
    values: Vec<Tensor>,
    backfns: Vec<Option<BackFn>>,
    needs_grad: Vec<bool>,
    bindings: Vec<(NodeId, Param)>,
    /// Set by `backward`; the sanitizer uses it to catch tape reuse.
    ran_backward: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        crate::sanitize::note_tape_dropped();
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
    match &mut grads[id] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

// ---------- raw matmul kernels (ikj loop order for cache locality) ----------
//
// All three kernels (and conv1d below) parallelise over *output rows*: every
// output element is computed by exactly one worker with the same inner-loop
// accumulation order as the serial code, so results are bit-identical at any
// worker count — the determinism contract `crates/parallel` documents.

/// Minimum fused multiply-adds per worker before a kernel goes parallel;
/// below this, thread spawn latency exceeds the arithmetic saved.
const PAR_MIN_WORK: usize = 1 << 17;

/// Ambient parallelism gated by the kernel's total work.
fn kernel_par(work: usize) -> parallel::Parallelism {
    parallel::ambient().for_work(work, PAR_MIN_WORK)
}

/// Output rows processed together by the matmul kernels: every `B` row
/// fetched from cache feeds `ROW_TILE` output rows instead of one. Within a
/// tile the `kk` loop stays outermost, so each `out[i, j]` still accumulates
/// its terms in ascending `kk` order — the tiling is bit-identical to the
/// untiled loop, it only changes the memory traffic.
const ROW_TILE: usize = 4;

fn matmul_raw(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel::fill_rows(kernel_par(m * n * k), &mut out, n, |rows, chunk| {
        for (tile_i, tile) in chunk.chunks_mut(ROW_TILE * n).enumerate() {
            let base = rows.start + tile_i * ROW_TILE;
            for kk in 0..k {
                let brow = &bd[kk * n..(kk + 1) * n];
                for (r, orow) in tile.chunks_mut(n).enumerate() {
                    let av = ad[(base + r) * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// `Aᵀ × B` without materialising the transpose. Row-tiled over the output
/// with `kk` ascending inside: every `out[i, j]` accumulates its `kk` terms
/// in the same order as the historical kk-outer loop, so the reordering is
/// exact.
fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel::fill_rows(kernel_par(m * n * k), &mut out, n, |rows, chunk| {
        for (tile_i, tile) in chunk.chunks_mut(ROW_TILE * n).enumerate() {
            let base = rows.start + tile_i * ROW_TILE;
            for kk in 0..k {
                let brow = &bd[kk * n..(kk + 1) * n];
                for (r, orow) in tile.chunks_mut(n).enumerate() {
                    let av = ad[kk * m + base + r];
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// `A × Bᵀ` without materialising the transpose.
fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel::fill_rows(kernel_par(m * n * k), &mut out, n, |rows, chunk| {
        for (i, orow) in rows.zip(chunk.chunks_mut(n)) {
            let arow = &ad[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                *o = parallel::reduce::sum_f32_in_order(arow.iter().zip(brow).map(|(x, y)| x * y));
            }
        }
    });
    Tensor::from_vec(&[m, n], out)
}

impl Graph {
    pub fn new() -> Self {
        crate::sanitize::note_tape_created();
        Graph {
            values: Vec::new(),
            backfns: Vec::new(),
            needs_grad: Vec::new(),
            bindings: Vec::new(),
            ran_backward: false,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of a node (available immediately after the op is recorded).
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.values[id]
    }

    fn push(&mut self, value: Tensor, needs_grad: bool, backfn: Option<BackFn>) -> NodeId {
        // Every op funnels through here, so this one check guards every
        // tensor-op boundary (see `sanitize` module docs).
        crate::sanitize::check_finite("op output", self.values.len(), value.data());
        self.values.push(value);
        self.needs_grad.push(needs_grad);
        self.backfns.push(backfn);
        self.values.len() - 1
    }

    /// Non-trainable leaf (input data, masks, constants).
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(t, false, None)
    }

    /// Trainable leaf bound to a persistent [`Param`]; `backward` adds the
    /// computed gradient into `param.grad`.
    pub fn param(&mut self, p: &Param) -> NodeId {
        let id = self.push(p.tensor(), true, None);
        self.bindings.push((id, p.clone()));
        id
    }

    fn any_grad(&self, ids: &[NodeId]) -> bool {
        ids.iter().any(|&i| self.needs_grad[i])
    }

    // ------------------------------------------------------------------
    // Elementwise binary ops (identical shapes)
    // ------------------------------------------------------------------

    fn binary(
        &mut self,
        a: NodeId,
        b: NodeId,
        f: impl Fn(f32, f32) -> f32,
        back: impl Fn(f32, f32, f32) -> (f32, f32) + 'static,
        name: &str,
    ) -> NodeId {
        assert_eq!(
            self.values[a].shape(),
            self.values[b].shape(),
            "{name}: shape mismatch"
        );
        let data: Vec<f32> = self.values[a]
            .data()
            .iter()
            .zip(self.values[b].data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        let out = Tensor::from_vec(self.values[a].shape(), data);
        let ng = self.any_grad(&[a, b]);
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let (va, vb) = (&vals[a], &vals[b]);
                    let mut ga = Tensor::zeros(va.shape());
                    let mut gb = Tensor::zeros(vb.shape());
                    let ins = va.data().iter().zip(vb.data()).zip(g.data());
                    let outs = ga.data_mut().iter_mut().zip(gb.data_mut().iter_mut());
                    for (((&xa, &xb), &gv), (oa, ob)) in ins.zip(outs) {
                        let (da, db) = back(xa, xb, gv);
                        *oa = da;
                        *ob = db;
                    }
                    accumulate(grads, a, ga);
                    accumulate(grads, b, gb);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(a, b, |x, y| x + y, |_, _, g| (g, g), "add")
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(a, b, |x, y| x - y, |_, _, g| (g, -g), "sub")
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(a, b, |x, y| x * y, |x, y, g| (g * y, g * x), "mul")
    }

    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(
            a,
            b,
            |x, y| x / y,
            |x, y, g| (g / y, -g * x / (y * y)),
            "div",
        )
    }

    // ------------------------------------------------------------------
    // Elementwise unary ops
    // ------------------------------------------------------------------

    fn unary(
        &mut self,
        a: NodeId,
        f: impl Fn(f32) -> f32,
        // backward receives (input, output, out-grad) -> in-grad
        back: impl Fn(f32, f32, f32) -> f32 + 'static,
    ) -> NodeId {
        let data: Vec<f32> = self.values[a].data().iter().map(|&x| f(x)).collect();
        let out = Tensor::from_vec(self.values[a].shape(), data);
        let ng = self.needs_grad[a];
        let out_id = self.values.len() + 0; // id this node will get
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let va = &vals[a];
                    let vo = &vals[out_id];
                    let mut ga = Tensor::zeros(va.shape());
                    let ins = va.data().iter().zip(vo.data()).zip(g.data());
                    for (o, ((&xv, &yv), &gv)) in ga.data_mut().iter_mut().zip(ins) {
                        *o = back(xv, yv, gv);
                    }
                    accumulate(grads, a, ga);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.unary(a, |x| x.max(0.0), |x, _, g| if x > 0.0 { g } else { 0.0 })
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        self.unary(a, |x| 1.0 / (1.0 + (-x).exp()), |_, y, g| g * y * (1.0 - y))
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        self.unary(a, |x| x.tanh(), |_, y, g| g * (1.0 - y * y))
    }

    pub fn exp(&mut self, a: NodeId) -> NodeId {
        self.unary(a, |x| x.exp(), |_, y, g| g * y)
    }

    /// Natural log with an epsilon floor for numerical safety.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        const EPS: f32 = 1e-12;
        self.unary(a, |x| x.max(EPS).ln(), |x, _, g| g / x.max(EPS))
    }

    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.unary(a, |x| -x, |_, _, g| -g)
    }

    pub fn square(&mut self, a: NodeId) -> NodeId {
        self.unary(a, |x| x * x, |x, _, g| 2.0 * g * x)
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&mut self, a: NodeId, k: f32) -> NodeId {
        self.unary(a, move |x| x * k, move |_, _, g| g * k)
    }

    pub fn add_scalar(&mut self, a: NodeId, k: f32) -> NodeId {
        self.unary(a, move |x| x + k, |_, _, g| g)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// `[m,k] × [k,n] → [m,n]`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(self.values[a].ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(self.values[b].ndim(), 2, "matmul rhs must be 2-D");
        let out = matmul_raw(&self.values[a], &self.values[b]);
        let ng = self.any_grad(&[a, b]);
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    // dA = G × Bᵀ ; dB = Aᵀ × G
                    accumulate(grads, a, matmul_nt(g, &vals[b]));
                    accumulate(grads, b, matmul_tn(&vals[a], g));
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = &self.values[a];
        assert_eq!(v.ndim(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (v.shape()[0], v.shape()[1]);
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = v.at2(i, j);
            }
        }
        let out = Tensor::from_vec(&[n, m], data);
        let ng = self.needs_grad[a];
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |_vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let (n2, m2) = (g.shape()[0], g.shape()[1]);
                    let mut gd = vec![0.0f32; m2 * n2];
                    for i in 0..n2 {
                        for j in 0..m2 {
                            gd[j * n2 + i] = g.at2(i, j);
                        }
                    }
                    accumulate(grads, a, Tensor::from_vec(&[m2, n2], gd));
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    // ------------------------------------------------------------------
    // Broadcast / reduction
    // ------------------------------------------------------------------

    /// `[B,F] + [F]` row-wise bias.
    pub fn add_bias(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let (xs, bs) = (
            self.values[x].shape().to_vec(),
            self.values[b].shape().to_vec(),
        );
        assert_eq!(xs.len(), 2, "add_bias lhs must be [B,F]");
        assert_eq!(bs, vec![xs[1]], "bias must be [F]");
        let f = xs[1];
        let mut out = self.values[x].clone();
        for row in out.data_mut().chunks_mut(f) {
            for (o, &bv) in row.iter_mut().zip(self.values[b].data()) {
                *o += bv;
            }
        }
        let ng = self.any_grad(&[x, b]);
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |_vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    accumulate(grads, x, g.clone());
                    let f = g.shape()[1];
                    let mut gb = Tensor::zeros(&[f]);
                    for row in g.data().chunks(f) {
                        for (o, &gv) in gb.data_mut().iter_mut().zip(row) {
                            *o += gv;
                        }
                    }
                    accumulate(grads, b, gb);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    /// Sum of all elements → shape `[1]`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let s: f32 = self.values[a].data().iter().sum();
        let shape = self.values[a].shape().to_vec();
        let ng = self.needs_grad[a];
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |_vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    accumulate(grads, a, Tensor::full(&shape, g.item()));
                },
            ) as BackFn
        });
        self.push(Tensor::scalar(s), ng, backfn)
    }

    /// Mean of all elements → shape `[1]`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        // lint-allow(lossy-cast): tensor element counts stay far below 2^24,
        // exactly representable in f32.
        let n = self.values[a].numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Row sums: `[B,F] → [B,1]`.
    pub fn row_sum(&mut self, a: NodeId) -> NodeId {
        let v = &self.values[a];
        assert_eq!(v.ndim(), 2, "row_sum needs [B,F]");
        let (bsz, f) = (v.shape()[0], v.shape()[1]);
        let data: Vec<f32> = v.data().chunks(f).map(|r| r.iter().sum()).collect();
        let out = Tensor::from_vec(&[bsz, 1], data);
        let ng = self.needs_grad[a];
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let f = vals[a].shape()[1];
                    let mut ga = Tensor::zeros(vals[a].shape());
                    for (i, row) in ga.data_mut().chunks_mut(f).enumerate() {
                        let gv = g.data()[i];
                        for o in row {
                            *o = gv;
                        }
                    }
                    accumulate(grads, a, ga);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    /// Reshape (data order unchanged).
    pub fn reshape(&mut self, a: NodeId, shape: &[usize]) -> NodeId {
        let out = self.values[a].clone().reshaped(shape);
        let ng = self.needs_grad[a];
        let old_shape = self.values[a].shape().to_vec();
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |_vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    accumulate(grads, a, g.clone().reshaped(&old_shape));
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    /// Columns `lo..hi` of a `[B,F]` tensor.
    pub fn slice_cols(&mut self, a: NodeId, lo: usize, hi: usize) -> NodeId {
        let v = &self.values[a];
        assert_eq!(v.ndim(), 2, "slice_cols needs [B,F]");
        let (bsz, f) = (v.shape()[0], v.shape()[1]);
        assert!(lo < hi && hi <= f, "slice_cols {lo}..{hi} of F={f}");
        let w = hi - lo;
        let mut data = Vec::with_capacity(bsz * w);
        for row in v.data().chunks(f) {
            data.extend_from_slice(&row[lo..hi]);
        }
        let out = Tensor::from_vec(&[bsz, w], data);
        let ng = self.needs_grad[a];
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let f = vals[a].shape()[1];
                    let w = hi - lo;
                    let mut ga = Tensor::zeros(vals[a].shape());
                    for (grow, garow) in g.data().chunks(w).zip(ga.data_mut().chunks_mut(f)) {
                        garow[lo..hi].copy_from_slice(grow);
                    }
                    accumulate(grads, a, ga);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    /// Horizontally concatenate `[B,F_i]` tensors into `[B,ΣF]`.
    pub fn concat_cols(&mut self, ids: &[NodeId]) -> NodeId {
        assert!(!ids.is_empty(), "concat_cols of nothing");
        let first = ids[0];
        let bsz = self.values[first].shape()[0];
        let widths: Vec<usize> = ids
            .iter()
            .map(|&i| {
                let v = &self.values[i];
                assert_eq!(v.ndim(), 2, "concat_cols inputs must be 2-D");
                assert_eq!(v.shape()[0], bsz, "concat_cols batch mismatch");
                v.shape()[1]
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut data = Vec::with_capacity(bsz * total);
        for r in 0..bsz {
            for (&id, &w) in ids.iter().zip(&widths) {
                let v = &self.values[id];
                data.extend_from_slice(&v.data()[r * w..(r + 1) * w]);
            }
        }
        let out = Tensor::from_vec(&[bsz, total], data);
        let ng = self.any_grad(ids);
        let ids_cl = ids.to_vec();
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |_vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let mut offset = 0usize;
                    for (&id, &w) in ids_cl.iter().zip(&widths) {
                        let bsz = g.shape()[0];
                        let total = g.shape()[1];
                        let mut part = Tensor::zeros(&[bsz, w]);
                        for r in 0..bsz {
                            part.data_mut()[r * w..(r + 1) * w].copy_from_slice(
                                &g.data()[r * total + offset..r * total + offset + w],
                            );
                        }
                        accumulate(grads, id, part);
                        offset += w;
                    }
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    // ------------------------------------------------------------------
    // Row-normalisations
    // ------------------------------------------------------------------

    /// L2-normalise each row of `[B,F]` (the InfoNCE stabilisation documented
    /// in DESIGN.md).
    pub fn l2_normalize_rows(&mut self, a: NodeId) -> NodeId {
        const EPS: f32 = 1e-8;
        let v = &self.values[a];
        assert_eq!(v.ndim(), 2, "l2_normalize_rows needs [B,F]");
        let f = v.shape()[1];
        let mut out = v.clone();
        let mut norms = Vec::with_capacity(v.shape()[0]);
        for row in out.data_mut().chunks_mut(f) {
            let n = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
            norms.push(n);
            let inv = 1.0 / n; // n is clamped to EPS above, never zero
            for x in row {
                *x *= inv;
            }
        }
        let ng = self.needs_grad[a];
        let out_id = self.values.len();
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let f = g.shape()[1];
                    let y = &vals[out_id];
                    let mut ga = Tensor::zeros(g.shape());
                    for (r, norm) in norms.iter().enumerate() {
                        let grow = &g.data()[r * f..(r + 1) * f];
                        let yrow = &y.data()[r * f..(r + 1) * f];
                        let dot: f32 = grow.iter().zip(yrow).map(|(a, b)| a * b).sum();
                        let garow = &mut ga.data_mut()[r * f..(r + 1) * f];
                        for (o, (&gv, &yv)) in garow.iter_mut().zip(grow.iter().zip(yrow)) {
                            *o = (gv - yv * dot) / norm;
                        }
                    }
                    accumulate(grads, a, ga);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    /// Numerically-stable softmax over each row of `[B,F]`.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = &self.values[a];
        assert_eq!(v.ndim(), 2, "softmax_rows needs [B,F]");
        let f = v.shape()[1];
        let mut out = v.clone();
        for row in out.data_mut().chunks_mut(f) {
            let mx = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - mx).exp();
                sum += *x;
            }
            // The max element contributes exp(0) = 1, so sum ≥ 1.
            let inv = 1.0 / sum;
            for x in row {
                *x *= inv;
            }
        }
        let ng = self.needs_grad[a];
        let out_id = self.values.len();
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let f = g.shape()[1];
                    let y = &vals[out_id];
                    let mut ga = Tensor::zeros(g.shape());
                    for r in 0..g.shape()[0] {
                        let grow = &g.data()[r * f..(r + 1) * f];
                        let yrow = &y.data()[r * f..(r + 1) * f];
                        let dot: f32 = grow.iter().zip(yrow).map(|(a, b)| a * b).sum();
                        let garow = &mut ga.data_mut()[r * f..(r + 1) * f];
                        for (o, (&gv, &yv)) in garow.iter_mut().zip(grow.iter().zip(yrow)) {
                            *o = yv * (gv - dot);
                        }
                    }
                    accumulate(grads, a, ga);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    // ------------------------------------------------------------------
    // Convolution
    // ------------------------------------------------------------------

    /// Dilated 1-D convolution with *same* padding.
    ///
    /// `x: [B, C_in, L]`, `w: [C_out, C_in, K]` (K odd), `b: [C_out]` →
    /// `[B, C_out, L]`. The effective receptive field per tap is
    /// `(K−1)·dilation + 1`; same padding keeps `L` fixed, as Sec. III-B
    /// requires for the `L × h_d` hidden representation.
    pub fn conv1d(&mut self, x: NodeId, w: NodeId, b: NodeId, dilation: usize) -> NodeId {
        let (xs, ws) = (
            self.values[x].shape().to_vec(),
            self.values[w].shape().to_vec(),
        );
        assert_eq!(xs.len(), 3, "conv1d input must be [B,C,L]");
        assert_eq!(ws.len(), 3, "conv1d weight must be [Cout,Cin,K]");
        // lint-allow(index-stampede): length asserted to be 3 just above.
        let (bsz, cin, l) = (xs[0], xs[1], xs[2]);
        // lint-allow(index-stampede): length asserted to be 3 just above.
        let (cout, cin2, k) = (ws[0], ws[1], ws[2]);
        assert_eq!(cin, cin2, "conv1d channel mismatch");
        assert_eq!(k % 2, 1, "conv1d kernel must be odd for same padding");
        assert_eq!(
            self.values[b].shape(),
            &[cout],
            "conv1d bias must be [Cout]"
        );
        assert!(dilation >= 1);

        let half = (k / 2) * dilation;
        let out = {
            let xv = self.values[x].data();
            let wv = self.values[w].data();
            let bv = self.values[b].data();
            let mut out = vec![0.0f32; bsz * cout * l];
            // Every output row (bi, co) depends only on the inputs, so the
            // rows parallelise with bit-identical results (see kernel_par).
            let par = kernel_par(bsz * cout * cin * k * l);
            parallel::fill_rows(par, &mut out, l, |rows, chunk| {
                for (row, orow) in rows.zip(chunk.chunks_mut(l)) {
                    let (bi, co) = (row / cout, row % cout);
                    orow.fill(bv[co]);
                    for ci in 0..cin {
                        let xrow = &xv[(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                        let wrow = &wv[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                        for (kk, &wk) in wrow.iter().enumerate() {
                            if wk == 0.0 {
                                continue;
                            }
                            // t + kk*dilation - half must land in [0, L)
                            let shift = kk * dilation;
                            let t_lo = half.saturating_sub(shift);
                            let t_hi = (l + half).saturating_sub(shift).min(l);
                            // The tap can fall entirely outside the row for
                            // short L / large dilation.
                            if t_hi <= t_lo {
                                continue;
                            }
                            // Zipped sub-slices: same per-element accumulation
                            // order as indexing `orow[t]`/`xrow[t+shift-half]`,
                            // but bounds-check-free and autovectorizable.
                            let x_lo = t_lo + shift - half;
                            let xs = &xrow[x_lo..x_lo + (t_hi - t_lo)];
                            for (o, &xv) in orow[t_lo..t_hi].iter_mut().zip(xs) {
                                *o += wk * xv;
                            }
                        }
                    }
                }
            });
            Tensor::from_vec(&[bsz, cout, l], out)
        };

        let ng = self.any_grad(&[x, w, b]);
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    let xv = vals[x].data();
                    let wv = vals[w].data();
                    let gv = g.data();
                    let mut gx = Tensor::zeros(vals[x].shape());
                    let mut gw = Tensor::zeros(vals[w].shape());
                    let mut gb = Tensor::zeros(vals[b].shape());
                    let par = kernel_par(2 * bsz * cout * cin * k * l);
                    if par.is_serial() {
                        // Fused single pass: gx/gw/gb write disjoint tensors,
                        // so this produces exactly the same values as the
                        // split passes below — only the loop is shared.
                        for bi in 0..bsz {
                            for co in 0..cout {
                                let grow = &gv[(bi * cout + co) * l..(bi * cout + co + 1) * l];
                                gb.data_mut()[co] += grow.iter().sum::<f32>();
                                for ci in 0..cin {
                                    let xrow = &xv[(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                                    let wrow = &wv[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                                    let gxrow = &mut gx.data_mut()
                                        [(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                                    let gwrow = &mut gw.data_mut()
                                        [(co * cin + ci) * k..(co * cin + ci + 1) * k];
                                    for kk in 0..k {
                                        let shift = kk * dilation;
                                        let t_lo = half.saturating_sub(shift);
                                        let t_hi = (l + half).saturating_sub(shift).min(l);
                                        let wk = wrow[kk];
                                        let mut wacc = 0.0f32;
                                        for t in t_lo..t_hi {
                                            let xi = t + shift - half;
                                            gxrow[xi] += wk * grow[t];
                                            wacc += xrow[xi] * grow[t];
                                        }
                                        gwrow[kk] += wacc;
                                    }
                                }
                            }
                        }
                    } else {
                        // Split passes over disjoint outputs. Each keeps the
                        // fused loop's per-element accumulation order (co→kk
                        // for gx rows, bi-ascending for gw/gb), so the split
                        // and the parallel row partition are both exact.
                        parallel::fill_rows(par, gx.data_mut(), l, |rows, chunk| {
                            for (row, gxrow) in rows.zip(chunk.chunks_mut(l)) {
                                let (bi, ci) = (row / cin, row % cin);
                                for co in 0..cout {
                                    let grow = &gv[(bi * cout + co) * l..(bi * cout + co + 1) * l];
                                    let wrow = &wv[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                                    for (kk, &wk) in wrow.iter().enumerate() {
                                        let shift = kk * dilation;
                                        let t_lo = half.saturating_sub(shift);
                                        let t_hi = (l + half).saturating_sub(shift).min(l);
                                        for t in t_lo..t_hi {
                                            gxrow[t + shift - half] += wk * grow[t];
                                        }
                                    }
                                }
                            }
                        });
                        parallel::fill_rows(par, gw.data_mut(), k, |rows, chunk| {
                            for (row, gwrow) in rows.zip(chunk.chunks_mut(k)) {
                                let (co, ci) = (row / cin, row % cin);
                                for bi in 0..bsz {
                                    let grow = &gv[(bi * cout + co) * l..(bi * cout + co + 1) * l];
                                    let xrow = &xv[(bi * cin + ci) * l..(bi * cin + ci + 1) * l];
                                    for (kk, gwv) in gwrow.iter_mut().enumerate() {
                                        let shift = kk * dilation;
                                        let t_lo = half.saturating_sub(shift);
                                        let t_hi = (l + half).saturating_sub(shift).min(l);
                                        let wacc = parallel::reduce::sum_f32_in_order(
                                            (t_lo..t_hi).map(|t| xrow[t + shift - half] * grow[t]),
                                        );
                                        *gwv += wacc;
                                    }
                                }
                            }
                        });
                        for co in 0..cout {
                            for bi in 0..bsz {
                                gb.data_mut()[co] += gv
                                    [(bi * cout + co) * l..(bi * cout + co + 1) * l]
                                    .iter()
                                    .sum::<f32>();
                            }
                        }
                    }
                    accumulate(grads, x, gx);
                    accumulate(grads, w, gw);
                    accumulate(grads, b, gb);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    /// `[B,C,L] + [C]` channel bias (separate from conv's own bias; used by
    /// residual skip connections).
    pub fn add_channel_bias(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let xs = self.values[x].shape().to_vec();
        assert_eq!(xs.len(), 3);
        // lint-allow(index-stampede): length asserted to be 3 just above.
        let (bsz, c, l) = (xs[0], xs[1], xs[2]);
        assert_eq!(self.values[b].shape(), &[c]);
        let mut out = self.values[x].clone();
        {
            let bv = self.values[b].data().to_vec();
            for bi in 0..bsz {
                for ci in 0..c {
                    for v in &mut out.data_mut()[(bi * c + ci) * l..(bi * c + ci + 1) * l] {
                        *v += bv[ci];
                    }
                }
            }
        }
        let ng = self.any_grad(&[x, b]);
        let backfn: Option<BackFn> = ng.then(|| {
            Box::new(
                move |_vals: &[Tensor], g: &Tensor, grads: &mut [Option<Tensor>]| {
                    accumulate(grads, x, g.clone());
                    let mut gb = Tensor::zeros(&[c]);
                    for bi in 0..bsz {
                        for ci in 0..c {
                            gb.data_mut()[ci] += g.data()[(bi * c + ci) * l..(bi * c + ci + 1) * l]
                                .iter()
                                .sum::<f32>();
                        }
                    }
                    accumulate(grads, b, gb);
                },
            ) as BackFn
        });
        self.push(out, ng, backfn)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse pass from `loss` (must be a `[1]` scalar node). Gradients of
    /// bound parameters are *added* into their `grad` cells; call
    /// `Param::zero_grad` (or `Optimizer::step`, which does it) between
    /// batches.
    pub fn backward(&mut self, loss: NodeId) {
        crate::sanitize::check_backward_once(self.ran_backward);
        self.ran_backward = true;
        assert_eq!(
            self.values[loss].numel(),
            1,
            "backward must start from a scalar loss"
        );
        let n = self.values.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[loss] = Some(Tensor::scalar(1.0));
        for id in (0..=loss).rev() {
            if !self.needs_grad[id] {
                continue;
            }
            let Some(g) = grads[id].take() else { continue };
            if let Some(f) = &self.backfns[id] {
                f(&self.values, &g, &mut grads);
            } else {
                // Leaf: stash back for the binding flush below.
                grads[id] = Some(g);
            }
        }
        for (id, p) in &self.bindings {
            if let Some(g) = &grads[*id] {
                // A non-finite gradient would corrupt the persistent param
                // state; catch it at the flush boundary.
                crate::sanitize::check_finite("gradient flush", *id, g.data());
                p.borrow_mut().grad.add_assign(g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check helper: compares analytic dL/dp[i] with a
    /// central difference for every coordinate of `p`.
    fn check_grad(build: impl Fn(&mut Graph, NodeId) -> NodeId, init: Tensor, tol: f32) {
        let p = Param::new(init.clone());
        let mut g = Graph::new();
        let pid = g.param(&p);
        let loss = build(&mut g, pid);
        g.backward(loss);
        let analytic = p.value().grad.clone();

        let eps = 1e-3f32;
        for i in 0..init.numel() {
            let mut lo = init.clone();
            lo.data_mut()[i] -= eps;
            let mut hi = init.clone();
            hi.data_mut()[i] += eps;
            let eval = |t: Tensor| {
                let q = Param::new(t);
                let mut g = Graph::new();
                let qid = g.param(&q);
                let loss = build(&mut g, qid);
                g.value(loss).item()
            };
            let fd = (eval(hi) - eval(lo)) / (2.0 * eps);
            let an = analytic.data()[i];
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "coord {i}: fd {fd} vs analytic {an}"
            );
        }
    }

    fn seeded(shape: &[usize], seed: u32) -> Tensor {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 1000.0)
                    - 0.5
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn elementwise_grads() {
        check_grad(
            |g, p| {
                let q = g.square(p);
                let r = g.relu(q);
                g.sum_all(r)
            },
            seeded(&[6], 3),
            1e-2,
        );
        check_grad(
            |g, p| {
                let s = g.sigmoid(p);
                let t = g.tanh(s);
                let e = g.exp(t);
                g.mean_all(e)
            },
            seeded(&[5], 11),
            1e-2,
        );
    }

    #[test]
    fn binary_grads() {
        check_grad(
            |g, p| {
                let c = g.input(seeded(&[4], 77));
                let a = g.mul(p, c);
                let b = g.add(a, p);
                let d = g.sub(b, c);
                g.sum_all(d)
            },
            seeded(&[4], 5),
            1e-2,
        );
    }

    #[test]
    fn div_and_ln_grads() {
        let mut pos = seeded(&[4], 9);
        for v in pos.data_mut() {
            *v = v.abs() + 0.5;
        }
        check_grad(
            |g, p| {
                let c = g.input(Tensor::full(&[4], 2.0));
                let d = g.div(p, c);
                let l = g.ln(d);
                g.sum_all(l)
            },
            pos,
            1e-2,
        );
    }

    #[test]
    fn matmul_grad() {
        check_grad(
            |g, p| {
                let b = g.input(seeded(&[3, 2], 4));
                let c = g.matmul(p, b);
                let s = g.square(c);
                g.sum_all(s)
            },
            seeded(&[2, 3], 8),
            1e-2,
        );
    }

    #[test]
    fn matmul_value_correct() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]));
        let b = g.input(Tensor::from_vec(&[2, 2], vec![5., 6., 7., 8.]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn transpose_grad_and_value() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let t = g.transpose(a);
        assert_eq!(g.value(t).shape(), &[3, 2]);
        assert_eq!(g.value(t).data(), &[1., 4., 2., 5., 3., 6.]);
        check_grad(
            |g, p| {
                let t = g.transpose(p);
                let c = g.input(seeded(&[3, 2], 2));
                let m = g.mul(t, c);
                g.sum_all(m)
            },
            seeded(&[2, 3], 1),
            1e-2,
        );
    }

    #[test]
    fn bias_and_rowsum_grads() {
        check_grad(
            |g, p| {
                let x = g.input(seeded(&[3, 4], 21));
                let y = g.add_bias(x, p);
                let r = g.row_sum(y);
                let s = g.square(r);
                g.sum_all(s)
            },
            seeded(&[4], 13),
            1e-2,
        );
    }

    #[test]
    fn slice_concat_grads() {
        check_grad(
            |g, p| {
                let lo = g.slice_cols(p, 0, 2);
                let hi = g.slice_cols(p, 2, 5);
                let hi2 = g.square(hi);
                let cat = g.concat_cols(&[hi2, lo]);
                g.mean_all(cat)
            },
            seeded(&[2, 5], 17),
            1e-2,
        );
    }

    #[test]
    fn l2_normalize_grad_and_value() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(&[1, 2], vec![3.0, 4.0]));
        let y = g.l2_normalize_rows(a);
        assert!((g.value(y).data()[0] - 0.6).abs() < 1e-6);
        assert!((g.value(y).data()[1] - 0.8).abs() < 1e-6);
        check_grad(
            |g, p| {
                let y = g.l2_normalize_rows(p);
                let c = g.input(seeded(&[2, 4], 6));
                let m = g.mul(y, c);
                g.sum_all(m)
            },
            seeded(&[2, 4], 19),
            1e-2,
        );
    }

    #[test]
    fn softmax_rows_value_and_grad() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(&[1, 3], vec![1.0, 1.0, 1.0]));
        let y = g.softmax_rows(a);
        for &v in g.value(y).data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
        check_grad(
            |g, p| {
                let y = g.softmax_rows(p);
                let c = g.input(seeded(&[2, 3], 31));
                let m = g.mul(y, c);
                g.sum_all(m)
            },
            seeded(&[2, 3], 23),
            1e-2,
        );
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(&[1, 2], vec![1000.0, 0.0]));
        let y = g.softmax_rows(a);
        assert!((g.value(y).data()[0] - 1.0).abs() < 1e-6);
        assert!(g.value(y).data()[1].abs() < 1e-6);
    }

    #[test]
    fn conv1d_identity_kernel() {
        // K=1 kernel with weight 1 reproduces the input.
        let mut g = Graph::new();
        let x = g.input(seeded(&[1, 1, 7], 40));
        let w = g.input(Tensor::from_vec(&[1, 1, 1], vec![1.0]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv1d(x, w, b, 1);
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn conv1d_same_padding_shape_and_edges() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(&[1, 1, 4], vec![1., 1., 1., 1.]));
        let w = g.input(Tensor::from_vec(&[1, 1, 3], vec![1., 1., 1.]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv1d(x, w, b, 1);
        // Interior sums three ones; edges see zero padding.
        assert_eq!(g.value(y).data(), &[2., 3., 3., 2.]);
    }

    #[test]
    fn conv1d_dilation_reaches_further() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(&[1, 1, 5], vec![1., 0., 0., 0., 1.]));
        let w = g.input(Tensor::from_vec(&[1, 1, 3], vec![1., 0., 1.]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv1d(x, w, b, 2);
        // Output[2] sees x[0] and x[4] through the dilated taps.
        assert_eq!(g.value(y).data()[2], 2.0);
    }

    #[test]
    fn conv1d_weight_grad() {
        check_grad(
            |g, p| {
                let x = g.input(seeded(&[2, 2, 6], 50));
                let b = g.input(Tensor::zeros(&[2]));
                let y = g.conv1d(x, p, b, 2);
                let s = g.square(y);
                g.sum_all(s)
            },
            seeded(&[2, 2, 3], 51),
            2e-2,
        );
    }

    #[test]
    fn conv1d_input_grad() {
        check_grad(
            |g, p| {
                let pr = g.reshape(p, &[1, 1, 8]);
                let w = g.input(seeded(&[2, 1, 3], 52));
                let b = g.input(seeded(&[2], 53));
                let y = g.conv1d(pr, w, b, 1);
                let s = g.square(y);
                g.mean_all(s)
            },
            seeded(&[1, 8], 54),
            2e-2,
        );
    }

    #[test]
    fn channel_bias_grad() {
        check_grad(
            |g, p| {
                let x = g.input(seeded(&[2, 3, 4], 60));
                let y = g.add_channel_bias(x, p);
                let s = g.square(y);
                g.sum_all(s)
            },
            seeded(&[3], 61),
            1e-2,
        );
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let p = Param::new(Tensor::scalar(2.0));
        for _ in 0..2 {
            let mut g = Graph::new();
            let pid = g.param(&p);
            let l = g.square(pid);
            let l = g.sum_all(l);
            g.backward(l);
        }
        // dL/dp = 2p = 4 per pass, accumulated twice.
        assert!((p.value().grad.item() - 8.0).abs() < 1e-5);
        p.zero_grad();
        assert_eq!(p.value().grad.item(), 0.0);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = p·p + p  → dL/dp = 2p + 1
        let p = Param::new(Tensor::scalar(3.0));
        let mut g = Graph::new();
        let pid = g.param(&p);
        let sq = g.mul(pid, pid);
        let s = g.add(sq, pid);
        let l = g.sum_all(s);
        g.backward(l);
        assert!((p.value().grad.item() - 7.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_from_non_scalar_panics() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(&[2]));
        g.backward(a);
    }

    #[test]
    fn no_grad_paths_are_skipped() {
        // Ops on pure inputs record no backward closure.
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(1.0));
        let b = g.square(a);
        assert!(!g.needs_grad[b]);
    }

    // ------------------------------------------------------- sanitizer

    /// Panic payloads are `String` for formatted messages, `&'static str`
    /// otherwise; normalise for assertions.
    fn panic_msg(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&'static str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn sanitizer_catches_nan_at_the_op_boundary() {
        let _guard = crate::sanitize::test_guard();
        crate::sanitize::set_enabled(true);
        let trip = std::panic::catch_unwind(|| {
            let mut g = Graph::new();
            g.input(Tensor::from_vec(&[2], vec![1.0, f32::NAN]));
        });
        let msg = panic_msg(trip.expect_err("NaN input should trip the sanitizer"));
        assert!(msg.contains("non-finite"), "unexpected panic: {msg}");
    }

    #[test]
    fn sanitizer_off_lets_nan_through() {
        let _guard = crate::sanitize::test_guard();
        crate::sanitize::set_enabled(false);
        let mut g = Graph::new();
        let id = g.input(Tensor::from_vec(&[1], vec![f32::INFINITY]));
        assert!(g.value(id).data()[0].is_infinite());
        crate::sanitize::set_enabled(true);
    }

    #[test]
    fn sanitizer_catches_backward_reuse() {
        let _guard = crate::sanitize::test_guard();
        crate::sanitize::set_enabled(true);
        let trip = std::panic::catch_unwind(|| {
            let p = Param::new(Tensor::scalar(2.0));
            let mut g = Graph::new();
            let pid = g.param(&p);
            let loss = g.square(pid);
            g.backward(loss);
            g.backward(loss);
        });
        let msg = panic_msg(trip.expect_err("second backward should trip the sanitizer"));
        assert!(msg.contains("one-shot"), "unexpected panic: {msg}");
    }

    #[test]
    fn sanitizer_counts_live_tapes_per_thread() {
        let _guard = crate::sanitize::test_guard();
        let before = crate::sanitize::live_tapes();
        {
            let _g1 = Graph::new();
            let _g2 = Graph::new();
            assert_eq!(crate::sanitize::live_tapes(), before + 2);
        }
        assert_eq!(crate::sanitize::live_tapes(), before);
    }

    #[test]
    fn sanitizer_trips_on_tape_leak() {
        let _guard = crate::sanitize::test_guard();
        crate::sanitize::set_enabled(true);
        let cap = crate::sanitize::max_live_tapes();
        let trip = std::panic::catch_unwind(|| {
            let mut hoard = Vec::new();
            for _ in 0..=cap {
                hoard.push(Graph::new());
            }
            hoard.len()
        });
        let msg = panic_msg(trip.expect_err("exceeding the tape cap should trip the sanitizer"));
        assert!(
            msg.contains("live autodiff tapes"),
            "unexpected panic: {msg}"
        );
    }
}
