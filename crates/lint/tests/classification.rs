//! Regression: generated and vendored trees (`vendor/`, `target/`,
//! `bench_out/`, `evalbed_out/`) are never scanned — neither when the
//! walker meets them inside a workspace nor when one is passed explicitly
//! as the root.

use std::path::{Path, PathBuf};

/// A file that definitely produces a diagnostic if it is ever scanned:
/// the `//@ path:` directive forces library classification.
const SEEDED: &str =
    "//@ path: crates/core/src/fx.rs\npub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";

const GENERATED: &[&str] = &["vendor", "target", "bench_out", "evalbed_out"];

struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> TempTree {
        let dir = std::env::temp_dir().join(format!(
            "triad_lint_classification_{}_{}",
            tag,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in GENERATED {
            std::fs::create_dir_all(dir.join(sub)).expect("mk generated dir");
            std::fs::write(dir.join(sub).join("bad.rs"), SEEDED).expect("write seeded file");
        }
        std::fs::create_dir_all(dir.join("src")).expect("mk src");
        std::fs::write(dir.join("src").join("bad.rs"), SEEDED).expect("write seeded file");
        TempTree(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn walker_skips_generated_trees() {
    let tree = TempTree::new("walk");
    let reports =
        triad_lint::run(tree.path(), &triad_lint::Options::default()).expect("tree readable");
    let paths: Vec<&str> = reports.iter().map(|r| r.rel_path.as_str()).collect();
    assert_eq!(paths, vec!["src/bad.rs"], "only src/ may be scanned");
    assert!(
        reports[0].diagnostics.iter().any(|d| d.rule == "no-unwrap"),
        "the seeded file must actually trip a rule when scanned"
    );
}

#[test]
fn explicit_generated_roots_produce_no_reports() {
    let tree = TempTree::new("roots");
    for sub in GENERATED {
        let reports = triad_lint::run(&tree.path().join(sub), &triad_lint::Options::default())
            .expect("tree readable");
        assert!(
            reports.is_empty(),
            "{sub}/ passed explicitly must still not be scanned, got {:?}",
            reports.iter().map(|r| &r.rel_path).collect::<Vec<_>>()
        );
    }
}

#[test]
fn include_vendor_restores_vendor_only() {
    let tree = TempTree::new("vendor");
    let opts = triad_lint::Options {
        include_vendor: true,
    };
    let reports = triad_lint::run(&tree.path().join("vendor"), &opts).expect("tree readable");
    assert_eq!(
        reports.len(),
        1,
        "--include-vendor lints an explicit vendor root"
    );
    let reports = triad_lint::run(&tree.path().join("target"), &opts).expect("tree readable");
    assert!(
        reports.is_empty(),
        "target/ stays excluded regardless of flags"
    );
}
