//! MERLIN++ — MERLIN with Orchard-style indexed nearest-neighbour refinement
//! (Nakamura, Mercer, Imamura & Keogh, DMKD 2023).
//!
//! The length sweep and adaptive-`r` logic are identical to [`crate::merlin`]
//! (so results match MERLIN exactly); the speedup comes from the refinement
//! phase. Z-normalised Euclidean distance is a true metric over z-normalised
//! subsequences, so for any pivot `p`:
//!
//! ```text
//! d(c, j) ≥ |d(c, p) − d(j, p)|
//! ```
//!
//! The index precomputes pivot-to-everything distances **once per length**
//! (shared across the adaptive-`r` retries); candidate refinement then skips
//! every neighbour whose pivot bound already exceeds the running best —
//! Orchard's pruning with multiple pivots, without per-candidate sorting.

use crate::drag::drag_prepared;
use crate::merlin::{merlin_with, MerlinConfig};
use crate::Discord;
use tsops::distance::ZnormSeries;

/// Pivot index over the subsequences of one series at one length.
pub struct PivotIndex {
    /// `dists[p][j]` = distance from pivot `p` to subsequence `j`.
    dists: Vec<Vec<f64>>,
}

impl PivotIndex {
    /// Build with `n_pivots` evenly-spaced pivots (clamped to the
    /// subsequence count).
    pub fn build(zs: &ZnormSeries<'_>, n_pivots: usize) -> Self {
        let n = zs.count();
        let n_pivots = n_pivots.min(n).max(1);
        let mut dists = Vec::with_capacity(n_pivots);
        for k in 0..n_pivots {
            let p = k * n / n_pivots;
            dists.push((0..n).map(|j| zs.dist(p, j)).collect());
        }
        PivotIndex { dists }
    }

    /// Triangle-inequality lower bound on `d(i, j)`.
    #[inline]
    pub fn lower_bound(&self, i: usize, j: usize) -> f64 {
        let mut lb = 0.0f64;
        for pd in &self.dists {
            let d = (pd[i] - pd[j]).abs();
            if d > lb {
                lb = d;
            }
        }
        lb
    }
}

/// DRAG with pivot-pruned refinement against a prebuilt index: identical
/// output to [`crate::drag::drag`].
pub fn drag_indexed(zs: &ZnormSeries<'_>, index: &PivotIndex, r: f64) -> Vec<Discord> {
    let n = zs.count();
    let w = zs.subseq_len();
    if n == 0 {
        return Vec::new();
    }

    // Phase 1: candidate selection (unchanged from plain DRAG).
    let r_sq = r * r;
    let mut candidates: Vec<usize> = vec![0];
    for j in 1..n {
        let mut is_candidate = true;
        let mut kept = Vec::with_capacity(candidates.len());
        for &c in &candidates {
            if j.abs_diff(c) < w {
                kept.push(c);
                continue;
            }
            if zs.dist_sq(c, j) < r_sq {
                is_candidate = false;
            } else {
                kept.push(c);
            }
        }
        candidates = kept;
        if is_candidate {
            candidates.push(j);
        }
    }
    if candidates.is_empty() {
        return Vec::new();
    }

    // Phase 2: refinement, skipping neighbours the pivot bound rules out.
    let mut out = Vec::new();
    for &c in &candidates {
        let mut best = f64::INFINITY;
        let mut alive = true;
        for j in 0..n {
            if j.abs_diff(c) < w {
                continue;
            }
            if index.lower_bound(c, j) >= best {
                continue; // provably not a closer neighbour
            }
            if let Some(d) = zs.dist_early_abandon(c, j, best) {
                if d < best {
                    best = d;
                    if best < r {
                        alive = false;
                        break;
                    }
                }
            }
        }
        if alive && best.is_finite() && best >= r {
            out.push(Discord {
                index: c,
                length: w,
                distance: best,
            });
        }
    }
    out.sort_by(|a, b| b.distance.total_cmp(&a.distance));
    out
}

/// Run MERLIN++ over `series` — MERLIN's adaptive-`r` sweep with the indexed
/// refinement. The pivot index is built once per length and shared across
/// the `r` retries of that length.
pub fn merlin_pp(series: &[f64], cfg: MerlinConfig) -> Vec<Discord> {
    let mut out = Vec::new();
    let mut prev: Option<Discord> = None;

    let mut w = cfg.min_len;
    while w <= cfg.max_len {
        if series.len() < 2 * w {
            break;
        }
        let zs = ZnormSeries::new(series, w);
        // A handful of pivots suffices: the bound must be cheaper than the
        // O(w) early-abandoning distance it tries to avoid.
        let index = PivotIndex::build(&zs, 8.min(zs.count()));
        let mut r = match prev {
            Some(p) if p.distance > 1e-9 => 0.99 * p.distance * (w as f64 / p.length as f64).sqrt(),
            _ => 2.0 * (w as f64).sqrt(),
        };

        let mut found: Option<Discord> = None;
        for attempt in 0..200 {
            let ds = drag_indexed(&zs, &index, r);
            if let Some(top) = ds.first() {
                found = Some(*top);
                break;
            }
            r *= if attempt < 20 { 0.99 } else { 0.5 };
            if r < 1e-9 {
                break;
            }
        }
        if let Some(d) = found {
            prev = Some(d);
            out.push(d);
        }
        w += cfg.step;
    }
    out
}

/// Reference non-indexed run (for the equality tests & benches).
pub fn merlin_reference(series: &[f64], cfg: MerlinConfig) -> Vec<Discord> {
    merlin_with(series, cfg, |zs, r| drag_prepared(zs, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anomalous(n: usize, p: usize, at: usize, len: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / p as f64).sin()
                    + 0.05 * ((i * 37 % 11) as f64)
            })
            .collect();
        for i in at..(at + len).min(n) {
            x[i] += 1.8 * ((i - at) as f64 * 0.9).sin();
        }
        x
    }

    #[test]
    fn indexed_drag_equals_plain_drag() {
        let x = anomalous(400, 25, 180, 30);
        for w in [15usize, 25, 40] {
            let zs = tsops::distance::ZnormSeries::new(&x, w);
            let index = PivotIndex::build(&zs, 12);
            for r in [0.5f64, 1.0, 2.0] {
                let plain = crate::drag::drag_prepared(&zs, r);
                let indexed = drag_indexed(&zs, &index, r);
                assert_eq!(plain.len(), indexed.len(), "w={w} r={r}");
                for (a, b) in plain.iter().zip(&indexed) {
                    assert_eq!(a.index, b.index, "w={w} r={r}");
                    assert!((a.distance - b.distance).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn merlin_pp_equals_merlin() {
        let x = anomalous(450, 30, 250, 40);
        let cfg = MerlinConfig::new(18, 42).with_step(6);
        let fast = merlin_pp(&x, cfg);
        let slow = merlin_reference(&x, cfg);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!((a.index, a.length), (b.index, b.length));
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn pivot_bound_is_admissible() {
        let x = anomalous(300, 20, 150, 25);
        let zs = tsops::distance::ZnormSeries::new(&x, 20);
        let idx = PivotIndex::build(&zs, 8);
        for &(i, j) in &[(0usize, 100usize), (40, 220), (10, 260)] {
            let lb = idx.lower_bound(i, j);
            let d = zs.dist(i, j);
            assert!(lb <= d + 1e-9, "bound {lb} exceeds distance {d}");
        }
    }
}
