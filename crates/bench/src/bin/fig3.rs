//! Fig. 3 — 'one-liner' anomalies in KPI-like data: the series, the 4σ
//! threshold line, and the events the one-liner detector catches.

use bench::print_series;
use ucrgen::oneliner::{kpi_like, oneliner_predict};

fn main() {
    let d = kpi_like(1, 2000, 3000, 8);
    let pred = oneliner_predict(&d, 4.0);
    let labels = d.test_labels();
    let hits = d
        .events
        .iter()
        .filter(|ev| (ev.start..ev.end).any(|i| pred[i - d.train_end]))
        .count();
    println!(
        "# Fig. 3 — KPI-like test split; one-liner |z|>4 catches {hits}/{} events",
        d.events.len()
    );
    let m = tsops::stats::mean(d.train());
    let s = tsops::stats::std_dev(d.train());
    println!(
        "# threshold lines: {:.3} and {:.3}",
        m + 4.0 * s,
        m - 4.0 * s
    );
    let pts: Vec<(f64, f64)> = d
        .test()
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    print_series("Fig3 KPI-like test split", "t", "x", &pts);
    let lab: Vec<(f64, f64)> = labels
        .iter()
        .enumerate()
        .map(|(i, &b)| (i as f64, b as u8 as f64))
        .collect();
    print_series("Fig3 ground truth", "t", "label", &lab);
}
