//! Dataset substrate: a synthetic stand-in for the UCR Time Series Anomaly
//! Archive, plus the "flawed benchmark" generators behind Table II.
//!
//! The real archive (Wu & Keogh 2023) is 250 univariate datasets, each with
//! an anomaly-free training prefix and a test suffix containing **exactly one
//! anomalous event** of length 1–1700. We cannot redistribute it, so
//! [`archive`] generates 250 datasets honouring the same contract:
//!
//! * periodic base signals from several families ([`signal`]), with noise,
//!   drift and amplitude modulation so windows are never trivially identical;
//! * one injected anomaly per dataset from the six families showcased in the
//!   paper's Fig. 16 ([`anomaly`]);
//! * anomaly lengths drawn from a Fig. 6-shaped distribution (scaled to our
//!   smaller series — documented in DESIGN.md);
//! * the training prefix is left strictly untouched by the injector.
//!
//! [`oneliner`] generates the KPI-like and SWaT-like pathological datasets
//! whose *explicit* anomalies drive Table II's "a random model beats a
//! trained one under PA%K" result. [`loader`] reads the real archive's file
//! format for users who have it.

#![forbid(unsafe_code)]

pub mod anomaly;
pub mod archive;
pub mod loader;
pub mod oneliner;
pub mod signal;
pub mod stress;

use std::ops::Range;

/// A dataset honouring the UCR anomaly-archive contract.
#[derive(Debug, Clone, PartialEq)]
pub struct UcrDataset {
    /// 1-based id, mirroring the archive's `001`–`250` numbering.
    pub id: usize,
    /// Human-readable name (`family_anomalykind` for synthetic data).
    pub name: String,
    /// Full series; `series[..train_end]` is the anomaly-free training split.
    pub series: Vec<f64>,
    /// First index of the test split.
    pub train_end: usize,
    /// Anomalous event, in **full-series** coordinates (always ≥ train_end).
    pub anomaly: Range<usize>,
    /// Generating period in samples (diagnostics only — detectors must
    /// estimate the period themselves from the training split).
    pub period: usize,
    /// Which injector produced the anomaly (synthetic data only).
    pub kind: anomaly::AnomalyKind,
}

impl UcrDataset {
    /// Anomaly-free training split.
    pub fn train(&self) -> &[f64] {
        &self.series[..self.train_end]
    }

    /// Test split (contains the single anomalous event).
    pub fn test(&self) -> &[f64] {
        &self.series[self.train_end..]
    }

    /// Anomaly range in **test-split** coordinates.
    pub fn anomaly_in_test(&self) -> Range<usize> {
        self.anomaly.start - self.train_end..self.anomaly.end - self.train_end
    }

    /// Point-wise ground-truth labels over the test split.
    pub fn test_labels(&self) -> Vec<bool> {
        let r = self.anomaly_in_test();
        (0..self.test().len()).map(|i| r.contains(&i)).collect()
    }

    /// Length of the anomalous event.
    pub fn anomaly_len(&self) -> usize {
        self.anomaly.len()
    }

    /// Sanity-check the archive contract; used by tests and the loader.
    pub fn validate(&self) -> Result<(), String> {
        if self.train_end == 0 || self.train_end >= self.series.len() {
            return Err(format!("train_end {} out of bounds", self.train_end));
        }
        if self.anomaly.start < self.train_end {
            return Err("anomaly overlaps the training split".into());
        }
        if self.anomaly.end > self.series.len() {
            return Err("anomaly exceeds the series".into());
        }
        if self.anomaly.is_empty() {
            return Err("empty anomaly".into());
        }
        if self.series.iter().any(|v| !v.is_finite()) {
            return Err("non-finite sample".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;

    fn toy() -> UcrDataset {
        UcrDataset {
            id: 1,
            name: "toy".into(),
            series: (0..100).map(|i| i as f64).collect(),
            train_end: 60,
            anomaly: 80..90,
            period: 10,
            kind: AnomalyKind::Noise,
        }
    }

    #[test]
    fn split_accessors() {
        let d = toy();
        assert_eq!(d.train().len(), 60);
        assert_eq!(d.test().len(), 40);
        assert_eq!(d.anomaly_in_test(), 20..30);
        let labels = d.test_labels();
        assert_eq!(labels.iter().filter(|&&b| b).count(), 10);
        assert!(labels[20] && labels[29] && !labels[19] && !labels[30]);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn validate_catches_contract_violations() {
        let mut d = toy();
        d.anomaly = 50..70; // overlaps train
        assert!(d.validate().is_err());
        let mut d = toy();
        d.anomaly = 95..120; // exceeds series
        assert!(d.validate().is_err());
        let mut d = toy();
        d.train_end = 0;
        assert!(d.validate().is_err());
        let mut d = toy();
        d.series[5] = f64::NAN;
        assert!(d.validate().is_err());
    }
}
