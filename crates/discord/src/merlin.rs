//! MERLIN — parameter-free discovery of arbitrary-length discords
//! (Nakamura, Imamura, Mercer & Keogh, ICDM 2020).
//!
//! MERLIN sweeps a range of subsequence lengths and, for each, finds the
//! top-1 discord by driving DRAG with an adaptively chosen range `r`:
//!
//! * at the first length, `r` starts at `2√w` (the theoretical maximum of a
//!   z-normalised distance is `2√w`) and halves until DRAG succeeds;
//! * at each subsequent length, the previous discord distance — rescaled by
//!   `√(w/w_prev)` since z-normalised distances grow with `√w` — seeds `r`
//!   at 99%, shrinking geometrically on failure.
//!
//! The output is one [`Discord`] per length, exactly what TriAD's voting
//! stage consumes (`s_dd` in Eq. 8).

use crate::drag::drag_prepared;
use crate::Discord;
use tsops::distance::ZnormSeries;

/// Length-sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MerlinConfig {
    /// Smallest subsequence length (≥ 2).
    pub min_len: usize,
    /// Largest subsequence length (inclusive).
    pub max_len: usize,
    /// Length increment between sweeps (1 = every length, the paper's
    /// setting; larger steps trade recall for speed).
    pub step: usize,
}

impl MerlinConfig {
    pub fn new(min_len: usize, max_len: usize) -> Self {
        assert!(min_len >= 2, "min_len must be ≥ 2");
        assert!(max_len >= min_len, "max_len < min_len");
        MerlinConfig {
            min_len,
            max_len,
            step: 1,
        }
    }

    pub fn with_step(mut self, step: usize) -> Self {
        assert!(step >= 1);
        self.step = step;
        self
    }

    /// The paper's case-study sweep: lengths 3 to `min(300, limit)`.
    pub fn paper_sweep(limit: usize) -> Self {
        let max = limit.min(300).max(3);
        MerlinConfig::new(3.min(max), max)
    }
}

/// The lengths a sweep over `series_len` points actually visits: ascending
/// from `min_len` by `step`, stopping at the first length the series cannot
/// hold two non-overlapping subsequences of. Shared by the exact ladder
/// ([`merlin`]) and the fast profile kernel ([`crate::fast::merlin_fast`]) so
/// both modes explore the identical candidate length order.
pub fn swept_lengths(series_len: usize, cfg: MerlinConfig) -> Vec<usize> {
    let mut lengths = Vec::new();
    let mut w = cfg.min_len;
    while w <= cfg.max_len && series_len >= 2 * w {
        lengths.push(w);
        w += cfg.step;
    }
    lengths
}

/// Run MERLIN over `series`. Returns the top discord found at each swept
/// length (lengths the series is too short for are skipped).
///
/// ```
/// // A periodic signal with a level-shift anomaly at 150..170.
/// let mut x: Vec<f64> = (0..400)
///     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 25.0).sin())
///     .collect();
/// for v in &mut x[150..170] { *v += 2.0; }
///
/// let cfg = discord::merlin::MerlinConfig::new(10, 30).with_step(10);
/// let discords = discord::merlin::merlin(&x, cfg);
/// assert_eq!(discords.len(), 3); // one per swept length
/// // Every per-length discord intersects the anomaly.
/// assert!(discords.iter().all(|d| d.index < 170 && d.index + d.length > 150));
/// ```
pub fn merlin(series: &[f64], cfg: MerlinConfig) -> Vec<Discord> {
    merlin_with(series, cfg, |zs, r| drag_prepared(zs, r))
}

/// Top-`k` **non-overlapping** discords per swept length — the extension
/// needed off the UCR contract (multiple anomalous events per test split;
/// see `ucrgen::stress`). `k = 1` matches [`merlin`] exactly.
pub fn merlin_top_k(series: &[f64], cfg: MerlinConfig, k: usize) -> Vec<Vec<Discord>> {
    assert!(k >= 1, "k must be ≥ 1");
    let mut out: Vec<Vec<Discord>> = Vec::new();
    let mut prev: Option<Discord> = None;
    let mut w = cfg.min_len;
    while w <= cfg.max_len {
        if series.len() < 2 * w {
            break;
        }
        let zs = ZnormSeries::new(series, w);
        let mut r = match prev {
            Some(p) if p.distance > 1e-9 => 0.99 * p.distance * (w as f64 / p.length as f64).sqrt(),
            _ => 2.0 * (w as f64).sqrt(),
        };
        let mut found: Vec<Discord> = Vec::new();
        for attempt in 0..200 {
            let mut ds = drag_prepared(&zs, r);
            if !ds.is_empty() {
                // The adaptive r is tuned to catch the top-1; runner-up
                // discords can sit below it. Re-run once at half the top
                // distance so every discord within 2× of the best surfaces,
                // then keep the k best non-overlapping ones.
                if k > 1 {
                    let wider_r = ds[0].distance * 0.5;
                    if wider_r < r {
                        ds = drag_prepared(&zs, wider_r);
                    }
                }
                for d in ds {
                    if found.len() >= k {
                        break;
                    }
                    if found.iter().all(|f| f.index.abs_diff(d.index) >= w) {
                        found.push(d);
                    }
                }
                break;
            }
            r *= if attempt < 20 { 0.99 } else { 0.5 };
            if r < 1e-9 {
                break;
            }
        }
        if let Some(top) = found.first() {
            prev = Some(*top);
            out.push(found);
        }
        w += cfg.step;
    }
    out
}

/// Shared driver: the adaptive-`r` sweep, parameterised over the DRAG
/// implementation so MERLIN++ can swap in its indexed refinement.
///
/// The per-length searches run on the ambient worker pool. That is safe
/// because each length's *result* is independent of its `r` seed: whenever
/// DRAG succeeds it returns the exact top-1 for that length (phase 1 keeps a
/// superset of every subsequence with NN distance ≥ `r`, phase 2 computes
/// exact distances, and the stable sort breaks ties by ascending candidate
/// index), and the retry loop always shrinks `r` into the success region.
/// The seed therefore only affects *speed* — so every length after the
/// first is seeded from the first length's discord (a pure function of the
/// input, never of the thread count or of sibling lengths), and the sweep
/// is bit-identical at any worker count.
pub(crate) fn merlin_with(
    series: &[f64],
    cfg: MerlinConfig,
    run_drag: impl Fn(&ZnormSeries<'_>, f64) -> Vec<Discord> + Sync,
) -> Vec<Discord> {
    // Swept lengths the series is long enough for (at least two
    // non-overlapping subsequences); lengths ascend, so stop at the first
    // too-long one exactly as the serial loop's `break` did.
    let lengths = swept_lengths(series.len(), cfg);
    let mut span = obs::span("merlin-sweep");
    span.add_field("n", series.len());
    span.add_field("lengths", lengths.len());
    let Some((&first_len, rest_lens)) = lengths.split_first() else {
        return Vec::new();
    };

    // First length: the paper's cold start (r = 2√w, the z-norm maximum).
    let first = sweep_one(series, first_len, None, &run_drag);

    let par = parallel::ambient().for_work(rest_lens.len() * series.len(), 1 << 14);
    let rest = parallel::map_indexed(par, rest_lens, |_, &w| {
        sweep_one(series, w, first, &run_drag)
    });

    std::iter::once(first).chain(rest).flatten().collect()
}

/// The adaptive-`r` search at one length: shrink `r` geometrically from the
/// seed until DRAG yields something (`r` can always reach a success region —
/// at r→0 every subsequence is reported), gently at first (the common case
/// per the paper), then halving so pathological series terminate fast.
fn sweep_one(
    series: &[f64],
    w: usize,
    seed: Option<Discord>,
    run_drag: &(impl Fn(&ZnormSeries<'_>, f64) -> Vec<Discord> + Sync),
) -> Option<Discord> {
    let zs = ZnormSeries::new(series, w);
    let mut r = match seed {
        Some(p) if p.distance > 1e-9 => 0.99 * p.distance * (w as f64 / p.length as f64).sqrt(),
        _ => 2.0 * (w as f64).sqrt(),
    };
    for attempt in 0..200 {
        let ds = run_drag(&zs, r);
        if let Some(top) = ds.first() {
            return Some(*top);
        }
        r *= if attempt < 20 { 0.99 } else { 0.5 };
        if r < 1e-9 {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_profile::matrix_profile;
    use std::f64::consts::PI;

    fn anomalous(n: usize, p: usize, at: usize, len: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * i as f64 / p as f64).sin())
            .collect();
        // Frequency-shift anomaly: double frequency inside [at, at+len).
        for i in at..at + len {
            x[i] = (4.0 * PI * i as f64 / p as f64).sin();
        }
        x
    }

    #[test]
    fn merlin_matches_brute_force_at_every_length() {
        let x = anomalous(420, 30, 200, 35);
        let cfg = MerlinConfig::new(20, 30).with_step(5);
        let found = merlin(&x, cfg);
        assert_eq!(found.len(), 3); // lengths 20, 25, 30
        for d in &found {
            let truth = matrix_profile(&x, d.length).top_discord().unwrap();
            assert!(
                (d.distance - truth.distance).abs() < 1e-6,
                "length {}: merlin {} vs truth {}",
                d.length,
                d.distance,
                truth.distance
            );
        }
    }

    #[test]
    fn merlin_localises_the_anomaly() {
        let x = anomalous(500, 25, 300, 40);
        let found = merlin(&x, MerlinConfig::new(15, 45).with_step(10));
        assert!(!found.is_empty());
        // The majority of per-length discords should intersect the anomaly.
        let hits = found
            .iter()
            .filter(|d| d.index < 340 && d.index + d.length > 300)
            .count();
        assert!(
            hits * 2 >= found.len(),
            "only {hits}/{} discords hit the anomaly",
            found.len()
        );
    }

    #[test]
    fn merlin_skips_lengths_longer_than_half_the_series() {
        let x = anomalous(100, 10, 50, 10);
        let found = merlin(&x, MerlinConfig::new(40, 80).with_step(10));
        // lengths 60, 70, 80 need ≥ 120/140/160 points — skipped.
        assert!(found.iter().all(|d| d.length <= 50));
    }

    #[test]
    fn merlin_on_constant_series_returns_nothing_meaningful() {
        let x = vec![1.0; 200];
        let found = merlin(&x, MerlinConfig::new(10, 12));
        // All-zero distances: either empty or zero-distance reports.
        assert!(found.iter().all(|d| d.distance < 1e-9) || found.is_empty());
    }

    #[test]
    fn top_k_first_entry_matches_merlin_and_entries_do_not_overlap() {
        let mut x = anomalous(500, 25, 120, 30);
        for i in 350..380 {
            x[i] += 2.0; // second event
        }
        let cfg = MerlinConfig::new(20, 30).with_step(10);
        let top1 = merlin(&x, cfg);
        let topk = merlin_top_k(&x, cfg, 2);
        assert_eq!(top1.len(), topk.len());
        for (a, b) in top1.iter().zip(&topk) {
            assert_eq!(a.index, b[0].index);
            assert!((a.distance - b[0].distance).abs() < 1e-9);
            for pair in b.windows(2) {
                assert!(pair[0].distance >= pair[1].distance);
                assert!(pair[0].index.abs_diff(pair[1].index) >= a.length);
            }
        }
        // With two injected events, some length should yield 2 discords.
        assert!(topk.iter().any(|v| v.len() == 2));
    }

    #[test]
    fn paper_sweep_clamps() {
        let cfg = MerlinConfig::paper_sweep(1000);
        assert_eq!((cfg.min_len, cfg.max_len), (3, 300));
        let cfg = MerlinConfig::paper_sweep(50);
        assert_eq!((cfg.min_len, cfg.max_len), (3, 50));
    }
}
