//! MASS-accelerated exact matrix profile.
//!
//! Identical output to [`crate::matrix_profile::matrix_profile`], but each
//! row of the all-pairs distance matrix is produced by one MASS call
//! (`O(n log n)` instead of `O(n·w)`), which wins for long subsequence
//! lengths. This is the STOMP-family speed/accuracy point the paper's
//! related-work section cites via the matrix-profile literature [27], [28].

use crate::matrix_profile::MatrixProfile;
use tsops::mass::mass;

/// Exact matrix profile via per-row MASS distance profiles.
pub fn matrix_profile_mass(series: &[f64], w: usize) -> MatrixProfile {
    assert!(w >= 2, "subsequence length must be ≥ 2");
    let n = series.len().saturating_sub(w).wrapping_add(1);
    let n = if series.len() < w { 0 } else { n };
    let mut profile = vec![f64::INFINITY; n];
    let mut index = vec![usize::MAX; n];
    for i in 0..n {
        let query = &series[i..i + w];
        let row = mass(query, series);
        for (j, &d) in row.iter().enumerate() {
            if j.abs_diff(i) < w {
                continue; // trivial-match exclusion zone
            }
            if d < profile[i] {
                profile[i] = d;
                index[i] = j;
            }
        }
    }
    MatrixProfile { profile, index, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_profile::matrix_profile;

    fn signal(n: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 30.0).sin())
            .collect();
        for (k, v) in x[n / 2..n / 2 + 8].iter_mut().enumerate() {
            *v += 1.0 + 0.2 * k as f64;
        }
        x
    }

    #[test]
    fn mass_profile_equals_naive_profile() {
        let x = signal(240);
        for w in [12usize, 30] {
            let fast = matrix_profile_mass(&x, w);
            let naive = matrix_profile(&x, w);
            assert_eq!(fast.profile.len(), naive.profile.len());
            for i in 0..fast.profile.len() {
                assert!(
                    (fast.profile[i] - naive.profile[i]).abs() < 1e-6,
                    "w={w} i={i}: {} vs {}",
                    fast.profile[i],
                    naive.profile[i]
                );
            }
            // Same top discord.
            assert_eq!(
                fast.top_discord().map(|d| d.index),
                naive.top_discord().map(|d| d.index)
            );
        }
    }

    #[test]
    fn short_series_yields_empty_profile() {
        let mp = matrix_profile_mass(&[1.0, 2.0], 5);
        assert!(mp.profile.is_empty());
        assert!(mp.top_discord().is_none());
    }
}
