//! MASS — Mueen's Algorithm for Similarity Search.
//!
//! Computes the z-normalised Euclidean distance between a query and **every**
//! subsequence of a series in `O(n log n)` via FFT convolution, instead of
//! `O(n·w)` naive sliding. This is the standard building block under
//! matrix-profile methods; here it accelerates (a) TriAD's single-window
//! selection scan over the training split and (b) the exact matrix profile
//! for long series / long subsequence lengths.

use crate::fft::{fft, ifft, Complex};
use crate::stats::{mean, rolling_mean_std, std_dev};

/// Sliding dot products `⟨query, series[i..i+m]⟩` for all valid `i`,
/// computed with one FFT-sized convolution.
pub fn sliding_dot_products(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    assert!(m >= 1, "empty query");
    if n < m {
        return Vec::new();
    }
    // Correlation via convolution with the reversed query, zero-padded to a
    // power of two ≥ n + m.
    let size = (n + m).next_power_of_two();
    let mut a: Vec<Complex> = Vec::with_capacity(size);
    a.extend(series.iter().map(|&v| Complex::new(v, 0.0)));
    a.resize(size, Complex::ZERO);
    let mut b: Vec<Complex> = Vec::with_capacity(size);
    b.extend(query.iter().rev().map(|&v| Complex::new(v, 0.0)));
    b.resize(size, Complex::ZERO);

    let fa = fft(&a);
    let fb = fft(&b);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    let conv = ifft(&prod);
    // conv[m-1+i] = Σ_k query[k]·series[i+k]
    (0..=n - m).map(|i| conv[m - 1 + i].re).collect()
}

/// The MASS distance profile: z-normalised Euclidean distance from `query`
/// to every length-`m` subsequence of `series` (`m = query.len()`).
///
/// ```
/// let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.2).sin()).collect();
/// let query = series[40..72].to_vec();
/// let profile = tsops::mass::mass(&query, &series);
/// assert_eq!(profile.len(), series.len() - query.len() + 1);
/// assert!(profile[40] < 1e-6); // exact self-match
/// ```
///
/// Degenerate (constant) subsequences follow the same convention as
/// [`crate::distance::ZnormSeries`]: constant-vs-constant → 0,
/// constant-vs-varying → `√m`.
pub fn mass(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m >= 2, "query must have ≥ 2 samples");
    if series.len() < m {
        return Vec::new();
    }
    let mq = mean(query);
    let sq = std_dev(query);
    let query_degenerate = sq < 1e-12;

    let dots = sliding_dot_products(query, series);
    let (means, stds) = rolling_mean_std(series, m);
    let mf = m as f64;

    dots.iter()
        .zip(means.iter().zip(&stds))
        .map(|(&dot, (&mu, &sigma))| {
            let sub_degenerate = sigma < 1e-12;
            match (query_degenerate, sub_degenerate) {
                (true, true) => 0.0,
                (true, false) | (false, true) => mf.sqrt(),
                (false, false) => {
                    let corr = ((dot - mf * mq * mu) / (mf * sq * sigma)).clamp(-1.0, 1.0);
                    (2.0 * mf * (1.0 - corr)).max(0.0).sqrt()
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{euclidean, ZnormSeries};
    use crate::stats::znormalize;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * ((i * i) as f64 * 0.011).cos())
            .collect()
    }

    #[test]
    fn sliding_dots_match_naive() {
        let series = signal(200);
        let query = &series[40..72];
        let fast = sliding_dot_products(query, &series);
        assert_eq!(fast.len(), 200 - 32 + 1);
        for i in [0usize, 7, 100, 168] {
            let naive: f64 = query
                .iter()
                .zip(&series[i..i + 32])
                .map(|(a, b)| a * b)
                .sum();
            assert!((fast[i] - naive).abs() < 1e-8, "offset {i}");
        }
    }

    #[test]
    fn mass_matches_explicit_distances() {
        let series = signal(300);
        let query = &series[120..160].to_vec();
        let profile = mass(query, &series);
        let zq = znormalize(query);
        for i in [0usize, 33, 120, 200, 260] {
            let zs = znormalize(&series[i..i + 40]);
            let direct = euclidean(&zq, &zs);
            assert!(
                (profile[i] - direct).abs() < 1e-6,
                "offset {i}: {} vs {direct}",
                profile[i]
            );
        }
        // Exact self-match at the query's own offset.
        assert!(profile[120] < 1e-6);
    }

    #[test]
    fn mass_agrees_with_znorm_series() {
        let series = signal(150);
        let w = 25;
        let zs = ZnormSeries::new(&series, w);
        let query = &series[60..60 + w].to_vec();
        let profile = mass(query, &series);
        for j in 0..zs.count() {
            assert!(
                (profile[j] - zs.dist(60, j)).abs() < 1e-6,
                "j={j}: {} vs {}",
                profile[j],
                zs.dist(60, j)
            );
        }
    }

    #[test]
    fn mass_degenerate_conventions() {
        let mut series = vec![2.0; 60];
        for (i, v) in series[30..60].iter_mut().enumerate() {
            *v = (i as f64 * 0.9).sin();
        }
        let flat_query = vec![5.0; 10];
        let profile = mass(&flat_query, &series);
        assert!(profile[0].abs() < 1e-9); // constant vs constant
        assert!((profile[40] - (10.0f64).sqrt()).abs() < 1e-9); // constant vs varying
    }

    #[test]
    fn mass_short_series_is_empty() {
        assert!(mass(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_empty());
    }
}
