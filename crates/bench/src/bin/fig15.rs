//! Fig. 15 — the case where discord discovery fails: the anomalous event
//! dominates the search window, MERLIN flags the (minority) normal data,
//! and TriAD's Sec. IV-G fallback rescues the prediction by flagging the
//! whole selected window.
//!
//! Flags: `--epochs N`.

use bench::Args;
use triad_core::{TriAd, TriadConfig};
use ucrgen::archive::{generate_archive, ArchiveConfig};

fn main() {
    let args = Args::parse();
    let epochs: usize = args.get("epochs", 5);
    // Hunt for a dataset whose anomaly is at least as long as the window —
    // the Fig. 15 condition.
    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count: 120,
            ..Default::default()
        },
    );
    let ds = archive
        .iter()
        .find(|d| d.anomaly_len() >= (d.period as f64 * 2.0) as usize)
        .expect("archive contains wide anomalies");
    println!(
        "# Fig. 15 — {}: anomaly {} pts vs window {} pts",
        ds.name,
        ds.anomaly_len(),
        (ds.period as f64 * 2.5).ceil()
    );

    let cfg = TriadConfig {
        epochs,
        merlin_step: 2,
        ..Default::default()
    };
    let fitted = TriAd::new(cfg).fit(ds.train()).expect("fit");
    let det = fitted.detect(ds.test());
    let anomaly = ds.anomaly_in_test();

    println!("selected window     : {:?}", det.selected_window);
    println!("true anomaly        : {anomaly:?}");
    println!("fallback fired      : {}", det.used_fallback);
    let m = bench::MetricRow::from_predictions(&det.prediction, &ds.test_labels());
    println!("affiliation F1      : {:.3}", m.affiliation.f1);
    println!("point-wise F1       : {:.3}", m.pw.f1);
    if det.used_fallback {
        println!("\nThe discord search found no anomaly inside the selected window");
        println!("(anomalous data dominated it), so all window points were flagged —");
        println!("exactly the exception the paper describes for UCR '150'.");
    }
}
