//! Anomaly-simulating data augmentation (TriAD Sec. III-A).
//!
//! TriAD does **not** augment whole series to enlarge the training set.
//! Instead, each training window gets a *random segment* of random location,
//! length and shape altered so that it resembles an anomaly; the contrastive
//! loss then pushes original windows away from their altered twins. Two
//! alteration families are used:
//!
//! * **jittering** (Eq. 3) — Gaussian noise added to the segment;
//! * **warping** (Eq. 4) — the segment replaced by a Butterworth-filtered
//!   (smoothed, primary-frequency-emphasising) version of itself.
//!
//! [`classic`] additionally provides the whole-window jitter / scale /
//! shuffle / crop transforms that Fig. 1 shows are *unsuited* to TSAD (they
//! make normal data look anomalous) — used by the Fig. 1 binary and by the
//! TS2Vec-lite baseline.

#![forbid(unsafe_code)]

pub mod classic;
pub mod rng;
pub mod segment;

use rng::gaussian;
use tsops::filter::{filtfilt, Butterworth};

use rand::Rng;

/// Which alteration was applied to a window (kept for diagnostics and the
/// Fig. 5 binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugKind {
    Jitter,
    Warp,
}

/// Parameters controlling random-segment augmentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Minimum altered-segment length as a fraction of the window.
    pub min_frac: f64,
    /// Maximum altered-segment length as a fraction of the window.
    pub max_frac: f64,
    /// Jitter noise std as a multiple of the window's own std.
    pub jitter_scale: f64,
    /// Butterworth cutoff range (fraction of Nyquist) for warping.
    pub cutoff_range: (f64, f64),
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            min_frac: 0.1,
            max_frac: 0.5,
            jitter_scale: 1.0,
            cutoff_range: (0.02, 0.15),
        }
    }
}

/// Add Gaussian noise (std `sigma`) to `x[start..start+len]` (Eq. 3).
pub fn jitter_segment<R: Rng>(rng: &mut R, x: &mut [f64], start: usize, len: usize, sigma: f64) {
    let end = (start + len).min(x.len());
    for v in &mut x[start..end] {
        *v += gaussian(rng) * sigma;
    }
}

/// Replace `x[start..start+len]` by its zero-phase Butterworth-filtered
/// version with normalized cutoff `cutoff` (Eq. 4).
///
/// The filter sees the whole window (context gives the filter a run-up), but
/// only the chosen segment is replaced, so the alteration stays local.
pub fn warp_segment(x: &mut [f64], start: usize, len: usize, cutoff: f64) {
    let end = (start + len).min(x.len());
    if end <= start {
        return;
    }
    let filt = Butterworth::lowpass(4, cutoff);
    let smoothed = filtfilt(&filt, x);
    x[start..end].copy_from_slice(&smoothed[start..end]);
}

/// Apply one random alteration (jitter or warp, coin flip) to a random
/// segment of `window`, returning the altered copy and what was done.
pub fn augment_window<R: Rng>(
    rng: &mut R,
    window: &[f64],
    cfg: &AugmentConfig,
) -> (Vec<f64>, AugKind, std::ops::Range<usize>) {
    let l = window.len();
    let mut out = window.to_vec();
    if l < 4 {
        return (out, AugKind::Jitter, 0..l);
    }
    let min_len = ((l as f64 * cfg.min_frac) as usize).max(2);
    let max_len = ((l as f64 * cfg.max_frac) as usize).max(min_len + 1);
    let seg_len = rng.random_range(min_len..max_len.min(l));
    let start = rng.random_range(0..=(l - seg_len));

    let kind = if rng.random::<bool>() {
        let sigma = tsops::stats::std_dev(window) * cfg.jitter_scale;
        // Guard: a constant window still needs visible jitter.
        let sigma = if sigma < 1e-9 {
            cfg.jitter_scale
        } else {
            sigma
        };
        jitter_segment(rng, &mut out, start, seg_len, sigma);
        AugKind::Jitter
    } else {
        let (lo, hi) = cfg.cutoff_range;
        let cutoff = lo + (hi - lo) * rng.random::<f64>();
        warp_segment(&mut out, start, seg_len, cutoff);
        AugKind::Warp
    };
    (out, kind, start..start + seg_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn wave(n: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * i as f64 / 25.0).sin()).collect()
    }

    #[test]
    fn jitter_alters_only_the_segment() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = wave(100);
        let mut y = x.clone();
        jitter_segment(&mut rng, &mut y, 30, 20, 0.5);
        assert_eq!(&x[..30], &y[..30]);
        assert_eq!(&x[50..], &y[50..]);
        assert!(x[30..50].iter().zip(&y[30..50]).any(|(a, b)| a != b));
    }

    #[test]
    fn jitter_clamps_at_window_end() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut y = wave(50);
        jitter_segment(&mut rng, &mut y, 45, 100, 0.5); // over-long segment
        assert_eq!(y.len(), 50);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn warp_smooths_the_segment() {
        let n = 200;
        // Signal with a high-frequency rider.
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (2.0 * PI * t / 50.0).sin() + 0.4 * (2.0 * PI * t / 4.0).sin()
            })
            .collect();
        let mut y = x.clone();
        warp_segment(&mut y, 60, 60, 0.05);
        // Outside: untouched.
        assert_eq!(&x[..60], &y[..60]);
        assert_eq!(&x[120..], &y[120..]);
        // Inside: high-frequency energy reduced.
        let hf = |s: &[f64]| -> f64 { s.windows(2).map(|p| (p[1] - p[0]).powi(2)).sum::<f64>() };
        assert!(hf(&y[60..120]) < hf(&x[60..120]) * 0.5);
    }

    #[test]
    fn warp_empty_segment_is_noop() {
        let x = wave(40);
        let mut y = x.clone();
        warp_segment(&mut y, 39, 0, 0.1);
        assert_eq!(x, y);
    }

    #[test]
    fn augment_window_is_deterministic_per_seed() {
        let x = wave(120);
        let cfg = AugmentConfig::default();
        let (a1, k1, r1) = augment_window(&mut StdRng::seed_from_u64(42), &x, &cfg);
        let (a2, k2, r2) = augment_window(&mut StdRng::seed_from_u64(42), &x, &cfg);
        assert_eq!(a1, a2);
        assert_eq!(k1, k2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn augment_window_changes_data_within_reported_range() {
        let x = wave(120);
        let cfg = AugmentConfig::default();
        for seed in 0..20 {
            let (aug, _, range) = augment_window(&mut StdRng::seed_from_u64(seed), &x, &cfg);
            assert_eq!(aug.len(), x.len());
            for i in 0..x.len() {
                if !range.contains(&i) {
                    assert_eq!(aug[i], x[i], "seed {seed} touched i={i} outside {range:?}");
                }
            }
            assert!(
                range.clone().any(|i| aug[i] != x[i]),
                "seed {seed}: no visible alteration"
            );
            let frac = range.len() as f64 / x.len() as f64;
            assert!(frac >= 0.01 && frac <= cfg.max_frac + 0.01);
        }
    }

    #[test]
    fn augment_tiny_window_is_safe() {
        let x = vec![1.0, 2.0, 3.0];
        let (aug, _, _) =
            augment_window(&mut StdRng::seed_from_u64(0), &x, &AugmentConfig::default());
        assert_eq!(aug.len(), 3);
    }
}
