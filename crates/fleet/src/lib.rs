//! # triad-fleet — the memory-budgeted million-stream tier
//!
//! `triad_stream::StreamManager` keeps every engine hot in RAM forever, so
//! fleet size is bounded by memory rather than by the model. This crate
//! layers state tiering on top of the same sharded architecture:
//!
//! * [`budget`] — a per-shard byte ledger over
//!   `StreamEngine::estimated_bytes` with logical-clock LRU ordering. When
//!   a shard exceeds its slice of the global budget, its least-recently
//!   touched idle engines are **evicted**: serialized to a TRIADS1
//!   checkpoint and dropped from RAM.
//! * [`store`] — a directory-backed [`CheckpointStore`] with
//!   generation-numbered files, atomic tmp+rename writes, compaction of
//!   superseded generations, orphan GC on startup, and torn/stale-file
//!   recovery under the same CRC discipline as the model format.
//! * Rehydration is **transparent and bit-identical**: the next `push` or
//!   `poll` on an evicted stream reloads the latest intact generation and
//!   continues exactly where the resident engine would have — scores,
//!   hysteresis events, and `finalize` cannot tell whether a stream was
//!   ever evicted.
//! * [`drift`] — a CUSUM-style, O(1)-per-window [`DriftDetector`] compares
//!   each stream's online deviance against the *training* deviance
//!   distribution of its model (mean + k·σ slack), with hysteresis
//!   enter/exit so a borderline stream does not flap. A drift entry
//!   schedules a background **refit** through a caller-supplied
//!   [`Refitter`] (the serve tier wires this to its `ModelRegistry`), and
//!   the refreshed model is swapped in at a deterministic window boundary
//!   of the stream — never mid-batch, never reordering in-flight scores.
//! * [`manager`] — the [`FleetManager`] itself: FNV-sharded worker threads
//!   with bounded queues, mirroring `StreamManager`'s surface (`open`,
//!   `push`, `poll`, `close`, `checkpoint`, `streams`) so the serve tier
//!   can host either interchangeably.
//!
//! Determinism: eviction order uses logical touch ticks (never wall
//! clock), byte estimates derive from collection lengths only, the drift
//! statistic is a pure fold over scored deviances, and refit swaps happen
//! at a window index fixed when drift was detected. Gated outputs are
//! byte-identical at any thread count; see DESIGN.md "Fleet tier".

#![forbid(unsafe_code)]

pub mod budget;
pub mod drift;
pub mod manager;
pub mod store;

pub use budget::BudgetLedger;
pub use drift::{DriftBaseline, DriftDetector, DriftPolicy, DriftSignal};
pub use manager::{FleetConfig, FleetManager, FleetStats, RefitRequest, Refitter};
pub use store::CheckpointStore;
