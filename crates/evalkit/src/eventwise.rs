//! Event-wise accuracy — the MERLIN++ evaluation protocol of Table IV.
//!
//! "Accuracy is determined by the count of anomalous events successfully
//! detected among the test set, and a prediction within a margin of 100 data
//! points surrounding the anomaly is deemed correct" (Sec. IV-B2).

use std::ops::Range;

/// Default margin from the MERLIN++ study.
pub const DEFAULT_MARGIN: usize = 100;

/// Does the predicted range land within `margin` points of the true event?
///
/// True when the prediction intersects `[event.start − margin,
/// event.end + margin)`.
pub fn event_detected(pred: &Range<usize>, event: &Range<usize>, margin: usize) -> bool {
    if pred.is_empty() {
        return false;
    }
    let lo = event.start.saturating_sub(margin);
    let hi = event.end + margin;
    pred.start < hi && pred.end > lo
}

/// Same test for a single predicted location (e.g. a discord start index).
pub fn point_detects_event(point: usize, event: &Range<usize>, margin: usize) -> bool {
    event_detected(&(point..point + 1), event, margin)
}

/// Fraction of (prediction, event) pairs that hit — Table IV's accuracy
/// column. `predictions[i]` is the detector's output region for dataset `i`
/// (`None` = no detection).
pub fn accuracy(
    predictions: &[Option<Range<usize>>],
    events: &[Range<usize>],
    margin: usize,
) -> f64 {
    assert_eq!(predictions.len(), events.len(), "length mismatch");
    if events.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(events)
        .filter(|(p, e)| p.as_ref().is_some_and(|p| event_detected(p, e, margin)))
        .count();
    hits as f64 / events.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_overlap_detects() {
        assert!(event_detected(&(100..150), &(120..130), 100));
    }

    #[test]
    fn within_margin_detects() {
        // Prediction ends 60 before event start: within 100.
        assert!(event_detected(&(0..40), &(100..120), 100));
        // Prediction starts 99 after event end.
        assert!(event_detected(&(219..230), &(100..120), 100));
    }

    #[test]
    fn beyond_margin_misses() {
        assert!(!event_detected(&(0..40), &(141..160), 100));
        assert!(!event_detected(&(261..280), &(100..160), 100));
    }

    #[test]
    fn empty_prediction_misses() {
        assert!(!event_detected(&(10..10), &(0..20), 100));
    }

    #[test]
    fn zero_margin_requires_intersection() {
        assert!(event_detected(&(10..20), &(19..25), 0));
        assert!(!event_detected(&(10..19), &(19..25), 0));
    }

    #[test]
    fn accuracy_counts_hits() {
        let preds = vec![Some(90..110), None, Some(500..510)];
        let events = vec![100..120, 50..60, 100..120];
        let acc = accuracy(&preds, &events, 100);
        assert!((acc - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_variant() {
        assert!(point_detects_event(95, &(100..120), 10));
        assert!(!point_detects_event(80, &(100..120), 10));
    }
}
