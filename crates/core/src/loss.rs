//! Tri-domain contrastive loss (Sec. III-C, Eqs. 5–7).
//!
//! Both terms share the positive-pair statistic
//! `sim(r_i, r_i⁺) = Σ_{j≠i} exp(r_i·r_j / τ)` — originals from the same
//! batch attract each other. They differ in their negatives:
//!
//! * **intra-domain** (Eq. 5): negatives are the *augmented* windows of the
//!   same domain — the encoder must tell synthetic anomalies apart;
//! * **inter-domain** (Eq. 6): negatives are the *same window's embeddings in
//!   the other domains* — the three views must stay mutually distinct so no
//!   domain collapses onto another.
//!
//! The blend `ℓ = α·ℓ_inter + (1−α)·ℓ_intra` (Eq. 7) defaults to `α = 0.4`.
//! Embeddings arrive L2-normalised, so `exp` never overflows; `τ` is the
//! documented temperature deviation.

use neuro::graph::{Graph, NodeId};
use neuro::Tensor;

/// Loss configuration (a projection of [`crate::TriadConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContrastiveLoss {
    pub alpha: f64,
    pub temperature: f64,
    pub use_intra: bool,
    pub use_inter: bool,
}

impl ContrastiveLoss {
    /// `Σ_{j≠i} exp(r_i·r_j/τ)` as a `[B,1]` node (the shared positive term).
    fn positive_term(&self, g: &mut Graph, r: NodeId) -> NodeId {
        let bsz = g.value(r).shape()[0];
        let rt = g.transpose(r);
        let sims = g.matmul(r, rt);
        let sims = g.scale(sims, 1.0 / self.temperature as f32);
        let e = g.exp(sims);
        // Zero the diagonal with a constant mask.
        let mut mask = Tensor::full(&[bsz, bsz], 1.0);
        for i in 0..bsz {
            mask.data_mut()[i * bsz + i] = 0.0;
        }
        let mask = g.input(mask);
        let masked = g.mul(e, mask);
        g.row_sum(masked)
    }

    /// Intra-domain loss (Eq. 5) for one domain, averaged over the batch.
    pub fn intra(&self, g: &mut Graph, r: NodeId, r_aug: NodeId) -> NodeId {
        let pos = self.positive_term(g, r);
        let rat = g.transpose(r_aug);
        let cross = g.matmul(r, rat);
        let cross = g.scale(cross, 1.0 / self.temperature as f32);
        let e = g.exp(cross);
        let neg = g.row_sum(e);
        // −log(pos/(pos+neg)) = log(pos+neg) − log(pos)
        let denom = g.add(pos, neg);
        let ld = g.ln(denom);
        let lp = g.ln(pos);
        let diff = g.sub(ld, lp);
        g.mean_all(diff)
    }

    /// Inter-domain loss (Eq. 6) for domain `d` against the other domains'
    /// embeddings of the same windows.
    pub fn inter(&self, g: &mut Graph, r: NodeId, others: &[NodeId]) -> NodeId {
        assert!(!others.is_empty(), "inter loss needs other domains");
        let pos = self.positive_term(g, r);
        let mut denom = pos;
        for &o in others {
            let prod = g.mul(r, o);
            let dots = g.row_sum(prod);
            let dots = g.scale(dots, 1.0 / self.temperature as f32);
            let e = g.exp(dots);
            denom = g.add(denom, e);
        }
        let ld = g.ln(denom);
        let lp = g.ln(pos);
        let diff = g.sub(ld, lp);
        g.mean_all(diff)
    }

    /// Total loss (Eq. 7) over all active domains.
    ///
    /// `rs[d]` / `rs_aug[d]` are the `[B, L]` embeddings of the original and
    /// augmented windows in each domain, in matching order.
    pub fn total(&self, g: &mut Graph, rs: &[NodeId], rs_aug: &[NodeId]) -> NodeId {
        assert_eq!(rs.len(), rs_aug.len());
        assert!(!rs.is_empty());
        let n_domains = rs.len();
        let mut terms: Vec<NodeId> = Vec::new();
        for d in 0..n_domains {
            if self.use_intra {
                let l = self.intra(g, rs[d], rs_aug[d]);
                let w = if self.use_inter && n_domains > 1 {
                    1.0 - self.alpha
                } else {
                    1.0
                };
                terms.push(g.scale(l, w as f32));
            }
            if self.use_inter && n_domains > 1 {
                let others: Vec<NodeId> =
                    (0..n_domains).filter(|&e| e != d).map(|e| rs[e]).collect();
                let l = self.inter(g, rs[d], &others);
                let w = if self.use_intra { self.alpha } else { 1.0 };
                terms.push(g.scale(l, w as f32));
            }
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = g.add(acc, t);
        }
        g.scale(acc, 1.0 / n_domains as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuro::graph::Param;
    use neuro::optim::Adam;

    fn unit_rows(t: &mut Tensor) {
        let f = t.shape()[1];
        for row in t.data_mut().chunks_mut(f) {
            let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
            for v in row {
                *v /= n;
            }
        }
    }

    fn loss_cfg() -> ContrastiveLoss {
        ContrastiveLoss {
            alpha: 0.4,
            temperature: 1.0,
            use_intra: true,
            use_inter: true,
        }
    }

    #[test]
    fn intra_prefers_separated_augmentations() {
        // Originals clustered; augmentations either identical (bad) or
        // orthogonal (good). Loss must be lower in the good case.
        let mut orig = Tensor::from_vec(&[2, 4], vec![1., 0.1, 0., 0., 1., -0.1, 0., 0.]);
        unit_rows(&mut orig);
        let mut bad_aug = orig.clone();
        unit_rows(&mut bad_aug);
        let mut good_aug = Tensor::from_vec(&[2, 4], vec![0., 0., 1., 0.1, 0., 0., -0.1, 1.]);
        unit_rows(&mut good_aug);

        let eval = |aug: Tensor| {
            let mut g = Graph::new();
            let r = g.input(orig.clone());
            let ra = g.input(aug);
            let l = loss_cfg().intra(&mut g, r, ra);
            g.value(l).item()
        };
        assert!(eval(good_aug) < eval(bad_aug));
    }

    #[test]
    fn inter_prefers_distinct_domains() {
        let mut r = Tensor::from_vec(&[2, 4], vec![1., 0.05, 0., 0., 1., -0.05, 0., 0.]);
        unit_rows(&mut r);
        let mut same = r.clone();
        unit_rows(&mut same);
        let mut distinct = Tensor::from_vec(&[2, 4], vec![0., 0., 1., 0., 0., 0., 0., 1.]);
        unit_rows(&mut distinct);

        let eval = |other: Tensor| {
            let mut g = Graph::new();
            let rr = g.input(r.clone());
            let oo = g.input(other);
            let l = loss_cfg().inter(&mut g, rr, &[oo]);
            g.value(l).item()
        };
        assert!(eval(distinct) < eval(same));
    }

    #[test]
    fn total_blends_and_is_finite() {
        let mk = |seed: u32| {
            let mut t = Tensor::from_vec(
                &[3, 5],
                (0..15)
                    .map(|i| {
                        ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 97) as f32 / 97.0
                            - 0.5
                    })
                    .collect(),
            );
            unit_rows(&mut t);
            t
        };
        let mut g = Graph::new();
        let rs: Vec<NodeId> = (0..3).map(|d| g.input(mk(d))).collect();
        let ras: Vec<NodeId> = (0..3).map(|d| g.input(mk(d + 10))).collect();
        let l = loss_cfg().total(&mut g, &rs, &ras);
        let v = g.value(l).item();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
    }

    #[test]
    fn loss_is_trainable_end_to_end() {
        // Two trainable embedding matrices (as params) should reduce the
        // total loss under Adam — a smoke test that gradients flow through
        // the full masked-exp-log composition.
        let p_r = Param::new(Tensor::from_vec(
            &[2, 4],
            vec![0.5, 0.1, 0.2, 0.3, 0.4, 0.5, 0.1, 0.2],
        ));
        let p_a = Param::new(Tensor::from_vec(
            &[2, 4],
            vec![0.5, 0.1, 0.2, 0.3, 0.45, 0.5, 0.1, 0.2],
        ));
        let mut opt = Adam::new(vec![p_r.clone(), p_a.clone()], 0.05);
        let cfg = ContrastiveLoss {
            alpha: 0.0,
            temperature: 1.0,
            use_intra: true,
            use_inter: false,
        };
        let run = || {
            let mut g = Graph::new();
            let r_raw = g.param(&p_r);
            let a_raw = g.param(&p_a);
            let r = g.l2_normalize_rows(r_raw);
            let a = g.l2_normalize_rows(a_raw);
            let l = cfg.intra(&mut g, r, a);
            let v = g.value(l).item();
            g.backward(l);
            v
        };
        let first = run();
        let mut last = first;
        for _ in 0..60 {
            opt.step();
            last = run();
        }
        assert!(last < first - 0.1, "no improvement: {first} -> {last}");
    }

    #[test]
    fn ablated_terms_change_the_value() {
        let mut r = Tensor::from_vec(&[2, 3], vec![1., 0., 0., 0., 1., 0.]);
        unit_rows(&mut r);
        let a = r.clone();
        let full = {
            let mut g = Graph::new();
            let rs = [g.input(r.clone()), g.input(a.clone())];
            let ras = [g.input(a.clone()), g.input(r.clone())];
            let l = loss_cfg().total(&mut g, &rs, &ras);
            g.value(l).item()
        };
        let intra_only = {
            let mut g = Graph::new();
            let cfg = ContrastiveLoss {
                use_inter: false,
                ..loss_cfg()
            };
            let rs = [g.input(r.clone()), g.input(a.clone())];
            let ras = [g.input(a.clone()), g.input(r.clone())];
            let l = cfg.total(&mut g, &rs, &ras);
            g.value(l).item()
        };
        assert!((full - intra_only).abs() > 1e-6);
    }
}
