//! The determinism rule family.
//!
//! The repo's core contract is bit-identical output at any thread count
//! (DESIGN.md "determinism contract"); these rules move its enforcement
//! from runtime test matrices to lint time. They are the first rules to
//! use the syntax-aware layer: the delimiter tree ([`crate::parser`]) for
//! call/closure extents and the symbol pass ([`crate::scope`]) for
//! receiver types.
//!
//! * **`nondet-iter`** — iterating a `HashMap`/`HashSet`, whose order is
//!   seeded per process. Sanctioned: `BTreeMap`/`BTreeSet` receivers,
//!   chains that sort (`…collect` then `sort*`), and order-insensitive
//!   terminals (`count`, `any`, `all`, …).
//! * **`float-reduce-order`** — `sum`/`fold`/`+=` float accumulation
//!   inside a `parallel::map_*` / `fill_rows` closure. Float addition is
//!   not associative, so the reduction order must not depend on work
//!   partitioning; route the arithmetic through `parallel::reduce::*`
//!   (exact serial order, and the helpers' spellings do not match the
//!   flagged patterns). Sanctioned: items under a `// numeric-mode(fast):
//!   reason` marker in kernel crates — the opt-in fast-numeric kernels,
//!   whose equivalence to the exact path is tolerance-tested and whose
//!   thread-count invariance is proved by its own bit-identity tests.
//! * **`ambient-entropy`** — `SystemTime::now`, `RandomState` (the seeded
//!   per-process hasher), `env::var` reads outside the sanctioned config
//!   layer (`parallel`, `obs`, `neuro` own the three TRIAD_* knobs), and —
//!   in the `bench` crate, which `raw-instant` exempts wholesale — raw
//!   `Instant::now` calls that would split harness timing off the shared
//!   `obs::now_instant`/`now_ns` trace clock.
//! * **`shadowed-threads`** — reading the thread count around the pool's
//!   plumbing: `available_parallelism`, `Parallelism::resolve`, or the
//!   `TRIAD_THREADS` variable outside `crates/parallel`. Regions must
//!   inherit their width via `Parallelism::with_ambient`/`ambient()` so a
//!   run's thread count has exactly one source of truth. (Raw spawns are
//!   `thread-unbounded`'s beat.)
//!
//! Every rule is an under-approximation: an unresolvable receiver or a
//! reduction with no float evidence stays silent. The remaining escape
//! hatch is the usual `// lint-allow(rule): reason`.

use crate::context::{FileClass, FileContext};
use crate::rules::{adjacent, diag, Diagnostic};
use crate::scope::{num_is_float, TypeTag};
use crate::tokenizer::TokKind;

/// Methods whose iteration order is the receiver's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

/// Methods that return (a guard/reference to) their receiver: walking back
/// through them reaches the collection that is actually iterated.
const PASSTHROUGH: &[&str] = &[
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "unwrap",
    "expect",
    "unwrap_or_else",
    "unwrap_or_default",
    "as_ref",
    "as_mut",
    "clone",
];

/// Chain terminals whose result is independent of visit order.
const ORDER_INSENSITIVE: &[&str] = &[
    "count",
    "len",
    "any",
    "all",
    "is_empty",
    "contains",
    "contains_key",
    "min",
    "max",
];

/// Sorting methods: a chain (or the collected binding) that sorts has
/// laundered the hash order away.
const SORTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// The deterministic-pool combinators whose closures are parallel regions.
const PARALLEL_ENTRY: &[&str] = &["map_indexed", "map_ranges", "fill_rows"];

/// Crates forming the sanctioned config layer: each owns exactly one
/// TRIAD_* environment knob (`parallel`: TRIAD_THREADS, `obs`: TRIAD_TRACE,
/// `neuro`: TRIAD_SANITIZE*).
const CONFIG_CRATES: &[&str] = &["parallel", "obs", "neuro"];

pub fn run_all(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    nondet_iter(cx, out);
    float_reduce_order(cx, out);
    ambient_entropy(cx, out);
    shadowed_threads(cx, out);
}

/// Does the path `NAME :: last` end at significant index `i` (pointing at
/// `last`)?
fn path_prefix(cx: &FileContext<'_>, i: usize, name: &str) -> bool {
    i >= 3
        && cx.stext(i - 1) == ":"
        && cx.stext(i - 2) == ":"
        && adjacent(cx, i - 2)
        && cx.stext(i - 3) == name
}

// ------------------------------------------------------------- nondet-iter

fn nondet_iter(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !matches!(cx.class, FileClass::Kernel | FileClass::Library) {
        return;
    }
    // Method-call form: `RECEIVER.iter()`, `RECEIVER.keys()`, ….
    for i in 2..cx.slen() {
        let m = cx.stext(i);
        if !ITER_METHODS.contains(&m.as_ref()) {
            continue;
        }
        if cx.stext(i - 1) != "." {
            continue;
        }
        if i + 1 >= cx.slen() || cx.stext(i + 1) != "(" {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        let Some(tag) = resolve_receiver(cx, i - 1) else {
            continue;
        };
        if !matches!(tag, TypeTag::HashMap | TypeTag::HashSet) {
            continue;
        }
        if chain_is_sanctioned(cx, i) {
            continue;
        }
        let what = if tag == TypeTag::HashMap {
            "HashMap"
        } else {
            "HashSet"
        };
        out.push(diag(
            cx,
            "nondet-iter",
            t.line,
            format!(
                ".{m}() visits a {what} in per-process hash order; use a BTree collection, \
                 sort a collected Vec, or end in an order-insensitive terminal"
            ),
        ));
    }
    // Bare-loop form: `for PAT in &RECEIVER {` with no method call.
    nondet_for_loops(cx, out);
}

/// Resolve the receiver expression ending at the `.` at significant index
/// `dot`: walk back through passthrough method calls, then classify the
/// name as a field access or a local. `None` = unresolvable (stay silent).
fn resolve_receiver(cx: &FileContext<'_>, dot: usize) -> Option<TypeTag> {
    let mut j = dot;
    for _hop in 0..8 {
        if j == 0 {
            return None;
        }
        let k = j - 1;
        match cx.stext(k).as_ref() {
            ")" => {
                // `….method(...).` — find the method name behind the call.
                let raw_close = cx.sig[k];
                let raw_open = cx.tree.matching_open(raw_close)?;
                let open = cx.sig.binary_search(&raw_open).ok()?;
                if open >= 2
                    && cx.stok(open - 1).kind == TokKind::Ident
                    && cx.stext(open - 2) == "."
                    && PASSTHROUGH.contains(&cx.stext(open - 1).as_ref())
                {
                    j = open - 2;
                    continue;
                }
                return None;
            }
            _ => {
                if cx.stok(k).kind != TokKind::Ident {
                    return None;
                }
                let name = cx.stext(k).into_owned();
                if k >= 2 && cx.stext(k - 1) == "." && cx.stok(k - 2).kind == TokKind::Ident {
                    // `owner.field.` — any owner: the field table is global
                    // to the file, which is the right granularity here.
                    return cx.symbols.resolve_field(&name);
                }
                return cx.symbols.resolve_local(&name, cx.stok(k).start);
            }
        }
    }
    None
}

/// Is the method chain starting at the iter method (significant index `i`)
/// sanctioned — sorted in-chain, ended in an order-insensitive terminal, or
/// collected into a binding that is sorted afterwards?
fn chain_is_sanctioned(cx: &FileContext<'_>, i: usize) -> bool {
    let mut names: Vec<String> = Vec::new();
    let mut j = i + 1; // at the iter method's `(`
    let mut stmt_end = j;
    loop {
        let Some(close) = cx.smatch_close(j) else {
            break;
        };
        stmt_end = close;
        let mut m = close + 1;
        if m >= cx.slen() || cx.stext(m) != "." {
            break;
        }
        m += 1;
        if m >= cx.slen() || cx.stok(m).kind != TokKind::Ident {
            break;
        }
        names.push(cx.stext(m).into_owned());
        m += 1;
        // Skip a turbofish: `collect :: < … >`.
        if m + 1 < cx.slen() && cx.stext(m) == ":" && cx.stext(m + 1) == ":" && adjacent(cx, m) {
            m += 2;
            if m < cx.slen() && cx.stext(m) == "<" {
                let mut depth = 0i32;
                let limit = (m + 40).min(cx.slen());
                while m < limit {
                    match cx.stext(m).as_ref() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                m += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
            }
        }
        if m < cx.slen() && cx.stext(m) == "(" {
            j = m;
            continue;
        }
        break; // `.len` without a call, field access, … — end of chain
    }
    if names.iter().any(|n| SORTS.contains(&n.as_str())) {
        return true;
    }
    if names
        .last()
        .is_some_and(|n| ORDER_INSENSITIVE.contains(&n.as_str()))
    {
        return true;
    }
    // `let [mut] NAME = ….collect…;` followed by `NAME.sort*` later in
    // the same function body.
    if names.iter().any(|n| n == "collect") {
        if let Some(bound) = let_binding_name(cx, i) {
            if sorted_later(cx, stmt_end, &bound) {
                return true;
            }
        }
    }
    false
}

/// If the statement containing significant index `i` is a `let` binding,
/// return the bound name.
fn let_binding_name(cx: &FileContext<'_>, i: usize) -> Option<String> {
    let mut start = 0usize;
    for j in (0..i).rev() {
        if matches!(cx.stext(j).as_ref(), ";" | "{" | "}") {
            start = j + 1;
            break;
        }
    }
    if cx.stext(start) != "let" {
        return None;
    }
    let mut k = start + 1;
    if k < cx.slen() && cx.stext(k) == "mut" {
        k += 1;
    }
    (k < cx.slen() && cx.stok(k).kind == TokKind::Ident).then(|| cx.stext(k).into_owned())
}

/// Does `NAME.sort*(` appear after significant index `from`?
fn sorted_later(cx: &FileContext<'_>, from: usize, name: &str) -> bool {
    let limit = (from + 500).min(cx.slen());
    for j in from..limit.saturating_sub(2) {
        if cx.stext(j) == name
            && cx.stok(j).kind == TokKind::Ident
            && cx.stext(j + 1) == "."
            && SORTS.contains(&cx.stext(j + 2).as_ref())
        {
            return true;
        }
    }
    false
}

/// `for PAT in [&][mut] RECEIVER {` where RECEIVER is a bare local or
/// field of hash type. Method-chain receivers are the method scan's beat.
fn nondet_for_loops(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.slen() {
        if cx.stext(i) != "for" || cx.stok(i).kind != TokKind::Ident {
            continue;
        }
        if i + 1 < cx.slen() && cx.stext(i + 1) == "<" {
            continue; // `for<'a>` HRTB
        }
        // Find `in` at pattern depth 0 before the loop body opens. An
        // `impl Trait for Type {` has no `in` and is skipped naturally.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut found_in = None;
        let limit = (i + 40).min(cx.slen());
        while j < limit {
            match cx.stext(j).as_ref() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                "in" if depth == 0 => {
                    found_in = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_at) = found_in else {
            continue;
        };
        let mut k = in_at + 1;
        while k < cx.slen() && matches!(cx.stext(k).as_ref(), "&" | "mut") {
            k += 1;
        }
        if k >= cx.slen() || cx.stok(k).kind != TokKind::Ident {
            continue;
        }
        let t = cx.stok(k);
        if cx.in_test_code(t.start) {
            continue;
        }
        let tag = if k + 3 < cx.slen()
            && cx.stext(k + 1) == "."
            && cx.stok(k + 2).kind == TokKind::Ident
            && cx.stext(k + 3) == "{"
        {
            cx.symbols.resolve_field(&cx.stext(k + 2))
        } else if k + 1 < cx.slen() && cx.stext(k + 1) == "{" {
            cx.symbols.resolve_local(&cx.stext(k), t.start)
        } else {
            None // a method chain or more complex expr; other scan's beat
        };
        if matches!(tag, Some(TypeTag::HashMap | TypeTag::HashSet)) {
            out.push(diag(
                cx,
                "nondet-iter",
                t.line,
                "for-loop visits a hash collection in per-process hash order; \
                 use a BTree collection or iterate a sorted Vec"
                    .to_string(),
            ));
        }
    }
}

// ------------------------------------------------------ float-reduce-order

fn float_reduce_order(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if cx.class == FileClass::TestSupport {
        return;
    }
    for i in 0..cx.slen().saturating_sub(1) {
        if !PARALLEL_ENTRY.contains(&cx.stext(i).as_ref()) {
            continue;
        }
        if cx.stext(i + 1) != "(" {
            continue;
        }
        if cx.in_test_code(cx.stok(i).start) {
            continue;
        }
        let Some(close) = cx.smatch_close(i + 1) else {
            continue;
        };
        let entry = cx.stext(i).into_owned();
        let mut j = i + 2;
        while j < close {
            // Items under a `// numeric-mode(fast): reason` marker are the
            // sanctioned fast-numeric kernels: their reductions are
            // tolerance-gated against the exact path by tests (and still
            // thread-count-invariant by construction), not bit-exact.
            if cx.in_fast_numeric(cx.stok(j).start) {
                j += 1;
                continue;
            }
            let s = cx.stext(j);
            if (s == "sum" || s == "fold") && j >= 1 && cx.stext(j - 1) == "." {
                if float_accumulation(cx, j, i + 2, close) {
                    out.push(diag(
                        cx,
                        "float-reduce-order",
                        cx.stok(j).line,
                        format!(
                            "float .{s}() inside a parallel::{entry} closure; float addition is \
                             not associative — route it through parallel::reduce::* so the \
                             reduction order is written down"
                        ),
                    ));
                }
                j += 1;
                continue;
            }
            if s == "+" && adjacent(cx, j) && j + 1 < close && cx.stext(j + 1) == "=" {
                if float_accumulation(cx, j, i + 2, close) {
                    out.push(diag(
                        cx,
                        "float-reduce-order",
                        cx.stok(j).line,
                        format!(
                            "float `+=` accumulation inside a parallel::{entry} closure; \
                             float addition is not associative — accumulate through \
                             parallel::reduce::* (exact serial order)"
                        ),
                    ));
                }
                j += 2;
                continue;
            }
            j += 1;
        }
    }
}

/// Is the accumulation at significant index `at` (a `sum`/`fold` ident or
/// the `+` of `+=`) operating on floats? Evidence, most to least precise:
/// a `::<f64>` turbofish (an integer turbofish is *dis*-proof), the `+=`
/// target's resolved type, then `f32`/`f64`/float-literal tokens in the
/// enclosing statement.
fn float_accumulation(cx: &FileContext<'_>, at: usize, lo: usize, hi: usize) -> bool {
    const INT_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    // Turbofish on the method itself.
    if cx.stok(at).kind == TokKind::Ident {
        let mut m = at + 1;
        if m + 2 < hi && cx.stext(m) == ":" && cx.stext(m + 1) == ":" && adjacent(cx, m) {
            m += 2;
            if cx.stext(m) == "<" && m + 1 < hi {
                let ty = cx.stext(m + 1);
                if ty == "f32" || ty == "f64" {
                    return true;
                }
                if INT_TYPES.contains(&ty.as_ref()) {
                    return false;
                }
            }
        }
    }
    // `acc += …`: the accumulator's binding decides.
    if cx.stext(at) == "+" && at >= 1 && cx.stok(at - 1).kind == TokKind::Ident {
        let name = cx.stext(at - 1);
        let tag = if at >= 3 && cx.stext(at - 2) == "." {
            cx.symbols.resolve_field(&name)
        } else {
            cx.symbols.resolve_local(&name, cx.stok(at - 1).start)
        };
        match tag {
            Some(TypeTag::Float) => return true,
            Some(TypeTag::Other) => {} // unknown — fall through to the statement scan
            Some(_) => return false,
            None => {}
        }
    }
    // Enclosing statement, clamped to the parallel call's group.
    let mut s = lo;
    for j in (lo..at).rev() {
        if matches!(cx.stext(j).as_ref(), ";" | "{" | "}") {
            s = j + 1;
            break;
        }
    }
    let mut e = hi;
    for j in at..hi {
        if matches!(cx.stext(j).as_ref(), ";" | "{" | "}") {
            e = j;
            break;
        }
    }
    for j in s..e {
        let tok = cx.stok(j);
        match tok.kind {
            TokKind::Ident => {
                let x = cx.stext(j);
                if x == "f32" || x == "f64" {
                    return true;
                }
            }
            TokKind::Num => {
                if num_is_float(&cx.stext(j)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

// -------------------------------------------------------- ambient-entropy

fn ambient_entropy(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if CONFIG_CRATES.contains(&cx.crate_name.as_str()) {
        return;
    }
    for i in 0..cx.slen() {
        let s = cx.stext(i);
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        if s == "now" && path_prefix(cx, i, "SystemTime") {
            out.push(diag(
                cx,
                "ambient-entropy",
                t.line,
                "SystemTime::now() injects wall-clock entropy; derive timestamps from \
                 obs::now_ns() (one epoch per process) or take the time as a parameter"
                    .to_string(),
            ));
            continue;
        }
        // `raw-instant` exempts the bench harness wholesale (it owns its
        // stopwatch discipline), but that discipline *is* the shared trace
        // clock: soak/bench wall-clock must align with the fleet obs spans
        // it brackets, so a raw Instant there is ambient entropy.
        if s == "now" && path_prefix(cx, i, "Instant") && cx.crate_name == "bench" {
            out.push(diag(
                cx,
                "ambient-entropy",
                t.line,
                "bench harness timing bypasses the shared trace clock; call \
                 obs::now_instant() (or obs::now_ns()) so soak/bench timings align \
                 with the fleet obs spans they bracket"
                    .to_string(),
            ));
            continue;
        }
        if s == "RandomState" && t.kind == TokKind::Ident {
            out.push(diag(
                cx,
                "ambient-entropy",
                t.line,
                "RandomState is seeded per process — anything iterating the map inherits \
                 that entropy; use a BTree collection or a fixed-seed hasher"
                    .to_string(),
            ));
            continue;
        }
        if (s == "var" || s == "var_os") && path_prefix(cx, i, "env") {
            // TRIAD_THREADS is the pool's knob: `shadowed-threads` owns it.
            if env_read_names(cx, i, "TRIAD_THREADS") {
                continue;
            }
            out.push(diag(
                cx,
                "ambient-entropy",
                t.line,
                "environment read outside the sanctioned config layer (parallel/obs/neuro \
                 own the TRIAD_* knobs); thread configuration through options structs"
                    .to_string(),
            ));
        }
    }
}

/// Does the `env::var`-style call at significant index `i` pass a string
/// literal containing `needle`?
fn env_read_names(cx: &FileContext<'_>, i: usize, needle: &str) -> bool {
    i + 2 < cx.slen()
        && cx.stext(i + 1) == "("
        && cx.stok(i + 2).kind == TokKind::Str
        && cx.stext(i + 2).contains(needle)
}

// ------------------------------------------------------- shadowed-threads

fn shadowed_threads(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if cx.crate_name == "parallel" {
        return;
    }
    for i in 0..cx.slen() {
        let s = cx.stext(i);
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        if s == "available_parallelism" && t.kind == TokKind::Ident {
            out.push(diag(
                cx,
                "shadowed-threads",
                t.line,
                "available_parallelism() shadows the pool's thread-count plumbing; use \
                 parallel::ambient() inside Parallelism::with_ambient"
                    .to_string(),
            ));
            continue;
        }
        if s == "resolve" && path_prefix(cx, i, "Parallelism") {
            out.push(diag(
                cx,
                "shadowed-threads",
                t.line,
                "Parallelism::resolve outside crates/parallel re-derives the thread count; \
                 inherit it with parallel::ambient() under with_ambient"
                    .to_string(),
            ));
            continue;
        }
        if (s == "var" || s == "var_os")
            && path_prefix(cx, i, "env")
            && env_read_names(cx, i, "TRIAD_THREADS")
        {
            out.push(diag(
                cx,
                "shadowed-threads",
                t.line,
                "reading TRIAD_THREADS directly bypasses Parallelism::with_ambient; only \
                 crates/parallel may read the pool's knob"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::context::FileContext;
    use crate::rules::Diagnostic;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let cx = FileContext::new(path, src.as_bytes());
        let mut out = Vec::new();
        super::run_all(&cx, &mut out);
        out
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = d.iter().map(|d| d.rule).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn nondet_iter_fires_on_hash_receivers() {
        let src = "use std::collections::HashMap;\nstruct S { pending: HashMap<String, u32> }\nimpl S {\n    fn dump(&self) -> Vec<String> {\n        self.pending.keys().cloned().collect()\n    }\n}\n";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", src)),
            vec!["nondet-iter"]
        );
    }

    #[test]
    fn nondet_iter_pierces_guards() {
        let src = "struct S { m: std::sync::Mutex<HashMap<String, u32>> }\nfn f(s: &S) -> Vec<u32> {\n    s.m.lock().unwrap_or_else(|e| e.into_inner()).values().copied().collect()\n}\n";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", src)),
            vec!["nondet-iter"]
        );
    }

    #[test]
    fn nondet_iter_quiet_on_btree_and_terminals() {
        let src = "struct S { a: BTreeMap<String, u32>, b: HashMap<String, u32> }\nimpl S {\n    fn ordered(&self) -> Vec<u32> { self.a.values().copied().collect() }\n    fn total(&self) -> usize { self.b.values().count() }\n    fn all_pos(&self) -> bool { self.b.values().all(|v| *v > 0) }\n}\n";
        assert!(check("crates/serve/src/f.rs", src).is_empty());
    }

    #[test]
    fn nondet_iter_quiet_on_sorted_collect() {
        let inline = "fn f(m: &HashMap<String, u32>) -> Vec<String> {\n    let mut v: Vec<String> = m.keys().cloned().collect();\n    v.sort();\n    v\n}\n";
        assert!(check("crates/serve/src/f.rs", inline).is_empty());
    }

    #[test]
    fn nondet_iter_fires_on_bare_for_loop() {
        let src = "fn f(m: &HashMap<String, u32>) {\n    for (k, v) in m {\n        println!(\"{k} {v}\");\n    }\n}\n";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", src)),
            vec!["nondet-iter"]
        );
    }

    #[test]
    fn float_reduce_order_fires_inside_parallel_closures() {
        let src = "fn f(par: Parallelism, rows: &[Vec<f32>]) -> Vec<f64> {\n    parallel::map_indexed(par, rows, |_, r| {\n        r.iter().map(|x| *x as f64).sum::<f64>()\n    })\n}\n";
        assert_eq!(
            rules_of(&check("crates/core/src/f.rs", src)),
            vec!["float-reduce-order"]
        );
    }

    #[test]
    fn float_reduce_order_respects_fast_numeric_sanction() {
        let src = "// numeric-mode(fast): FFT kernel, tolerance-gated against exact\nfn f(par: Parallelism, rows: &[Vec<f32>]) -> Vec<f64> {\n    parallel::map_indexed(par, rows, |_, r| {\n        r.iter().map(|x| *x as f64).sum::<f64>()\n    })\n}\n";
        // Sanctioned in a kernel crate…
        assert!(check("crates/tsops/src/f.rs", src).is_empty());
        // …inert everywhere else: the accumulation is still flagged.
        assert_eq!(
            rules_of(&check("crates/core/src/f.rs", src)),
            vec!["float-reduce-order"]
        );
    }

    #[test]
    fn float_reduce_order_quiet_outside_closures_and_on_ints() {
        let outside = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert!(check("crates/core/src/f.rs", outside).is_empty());
        let ints = "fn f(par: Parallelism, rows: &[Vec<u32>]) -> Vec<usize> {\n    parallel::map_indexed(par, rows, |_, r| r.iter().filter(|x| **x > 0).count())\n}\n";
        assert!(check("crates/core/src/f.rs", ints).is_empty());
        let int_sum = "fn f(par: Parallelism, rows: &[Vec<u32>]) -> Vec<u32> {\n    parallel::map_indexed(par, rows, |_, r| r.iter().copied().sum::<u32>())\n}\n";
        assert!(check("crates/core/src/f.rs", int_sum).is_empty());
    }

    #[test]
    fn float_reduce_order_fires_on_plus_eq() {
        let src = "fn f(par: Parallelism, rows: &[Vec<f64>]) -> Vec<f64> {\n    parallel::map_indexed(par, rows, |_, r| {\n        let mut acc = 0.0;\n        for x in r { acc += x; }\n        acc\n    })\n}\n";
        assert_eq!(
            rules_of(&check("crates/core/src/f.rs", src)),
            vec!["float-reduce-order"]
        );
    }

    #[test]
    fn float_reduce_order_sanctions_reduce_helpers() {
        let src = "fn f(par: Parallelism, rows: &[Vec<f32>], q: &[f32]) -> Vec<f64> {\n    parallel::map_indexed(par, rows, |_, r| parallel::reduce::dot_f32_in_order(r, q))\n}\n";
        assert!(check("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn ambient_entropy_catches_clock_hasher_env() {
        let src = "fn f() -> u64 {\n    let t = std::time::SystemTime::now();\n    let _h = std::collections::hash_map::RandomState::new();\n    let _e = std::env::var(\"MY_KNOB\");\n    0\n}\n";
        let d = check("crates/serve/src/f.rs", src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "ambient-entropy"));
    }

    #[test]
    fn ambient_entropy_exempts_config_layer_and_tests() {
        let src = "fn f() { let _ = std::env::var(\"TRIAD_TRACE\"); }\n";
        assert!(check("crates/obs/src/f.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let _ = std::env::var(\"X\"); }\n}\n";
        assert!(check("crates/serve/src/f.rs", test_src).is_empty());
    }

    #[test]
    fn shadowed_threads_catches_bypasses() {
        let src = "fn f() -> usize {\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\nfn g(n: usize) { let _ = Parallelism::resolve(n); }\nfn h() { let _ = std::env::var(\"TRIAD_THREADS\"); }\n";
        let d = check("crates/bench/src/f.rs", src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "shadowed-threads"));
    }

    #[test]
    fn shadowed_threads_exempts_the_pool_and_sanctions_ambient() {
        let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        assert!(check("crates/parallel/src/f.rs", src).is_empty());
        let ok = "fn f(items: &[u32]) -> Vec<u32> {\n    parallel::with_ambient(0, || parallel::map_indexed(parallel::ambient(), items, |_, x| *x))\n}\n";
        assert!(check("crates/bench/src/f.rs", ok).is_empty());
    }
}
