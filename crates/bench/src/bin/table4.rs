//! Table IV — comparison with the SOTA discord-discovery algorithm on the
//! shortest datasets: event-wise accuracy (±100-point margin) and inference
//! time.
//!
//! * **MERLIN++** scans the *whole* test split over a length sweep and
//!   nominates the region its per-length discords cover most often.
//! * **TriAD (tri-window)** counts a hit when any of the ≤3 candidate
//!   windows lands within the margin; **TriAD (single window)** uses the
//!   selected window only.
//!
//! Flags: `--datasets N` (cohort size, default 12; paper uses the 62
//! shortest of 250), `--epochs N`, `--archive N` (archive size to draw the
//! shortest from, default 40).

use bench::{f3, par_map, print_table, Args};
use discord::merlin::MerlinConfig;
use discord::merlin_pp::merlin_pp;
use evalkit::eventwise::{event_detected, DEFAULT_MARGIN};
use obs::now_instant;
use triad_core::TriadConfig;
use ucrgen::archive::{generate_archive, shortest, ArchiveConfig};
use ucrgen::UcrDataset;

/// MERLIN++'s event nomination: run the sweep over the whole test split and
/// return the hull of the most-voted point (vote = per-length coverage).
fn merlin_pp_region(test: &[f64], max_len: usize) -> Option<std::ops::Range<usize>> {
    let sweep = MerlinConfig::new(8, max_len.max(9)).with_step(8);
    let discords = merlin_pp(test, sweep);
    if discords.is_empty() {
        return None;
    }
    let mut votes = vec![0u32; test.len()];
    for d in &discords {
        for v in &mut votes[d.range().start.min(test.len())..d.range().end.min(test.len())] {
            *v += 1;
        }
    }
    let best = *votes.iter().max().unwrap();
    if best == 0 {
        return None;
    }
    let first = votes.iter().position(|&v| v == best)?;
    let last = votes.iter().rposition(|&v| v == best)?;
    Some(first..last + 1)
}

fn main() {
    let args = Args::parse();
    let archive_n: usize = args.get("archive", 40);
    let cohort_n: usize = args.get("datasets", 12);
    let epochs: usize = args.get("epochs", 5);

    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count: archive_n,
            ..Default::default()
        },
    );
    let cohort: Vec<UcrDataset> = shortest(&archive, cohort_n).into_iter().cloned().collect();
    eprintln!(
        "table4: {} shortest of {} datasets (paper: 62 of 250), epochs {epochs}",
        cohort.len(),
        archive_n
    );

    // --- MERLIN++ over the full test split ---
    let t0 = now_instant();
    let merlin_hits: Vec<bool> = par_map(&cohort, |ds| {
        let max_len = (ds.test().len() / 4).clamp(16, 300);
        let region = merlin_pp_region(ds.test(), max_len);
        region
            .map(|r| event_detected(&r, &ds.anomaly_in_test(), DEFAULT_MARGIN))
            .unwrap_or(false)
    });
    let merlin_time = t0.elapsed().as_secs_f64() / 60.0;
    let merlin_acc = merlin_hits.iter().filter(|&&h| h).count() as f64 / cohort.len() as f64;

    // --- TriAD windows ---
    let t0 = now_instant();
    let outcomes = par_map(&cohort, |ds| {
        let cfg = TriadConfig {
            epochs,
            merlin_step: 2,
            ..Default::default()
        };
        bench::run_triad(ds, &cfg).ok()
    });
    let triad_time = t0.elapsed().as_secs_f64() / 60.0;

    let margin_hit = |r: &std::ops::Range<usize>, ds: &UcrDataset| {
        event_detected(r, &ds.anomaly_in_test(), DEFAULT_MARGIN)
    };
    let tri_acc = outcomes
        .iter()
        .zip(&cohort)
        .filter(|(o, ds)| {
            o.as_ref()
                .map(|o| o.detection.candidates.iter().any(|c| margin_hit(c, ds)))
                .unwrap_or(false)
        })
        .count() as f64
        / cohort.len() as f64;
    let single_acc = outcomes
        .iter()
        .zip(&cohort)
        .filter(|(o, ds)| {
            o.as_ref()
                .map(|o| margin_hit(&o.detection.selected_window, ds))
                .unwrap_or(false)
        })
        .count() as f64
        / cohort.len() as f64;

    print_table(
        "Table IV — comparison with MERLIN++ on the shortest datasets",
        &["Model", "Accuracy", "Inference time (mins)"],
        &[
            vec!["Merlin++".into(), f3(merlin_acc), f3(merlin_time)],
            vec!["TriAD (tri-window)".into(), f3(tri_acc), f3(triad_time)],
            vec![
                "TriAD (single window)".into(),
                f3(single_acc),
                f3(triad_time),
            ],
        ],
    );
    println!("\nNote: TriAD time includes per-dataset training; the paper's timing is");
    println!("inference-only, where TriAD's restricted search gives its 10x advantage —");
    println!("see `cargo bench -p bench --bench inference` for the inference-only split.");
}
