//@ path: crates/stream/src/fixture.rs
//@ expect: thread-unbounded
// Seeded violation: a raw spawn next to a Builder spawn (sanctioned for
// named service threads) and a suppressed spawn with a recorded reason.

pub fn fire_and_forget(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}

pub fn service_thread(work: impl FnOnce() + Send + 'static) -> std::io::Result<()> {
    std::thread::Builder::new()
        .name("svc".into())
        .spawn(work)
        .map(|_| ())
}

pub fn justified(work: impl FnOnce() + Send + 'static) {
    // lint-allow(thread-unbounded): one-shot helper joined by the caller before shutdown
    std::thread::spawn(work);
}
