//! MASS — Mueen's Algorithm for Similarity Search.
//!
//! Computes the z-normalised Euclidean distance between a query and **every**
//! subsequence of a series in `O(n log n)` via FFT convolution, instead of
//! `O(n·w)` naive sliding. This is the standard building block under
//! matrix-profile methods; here it accelerates (a) TriAD's single-window
//! selection scan over the training split and (b) the exact matrix profile
//! for long series / long subsequence lengths.

use crate::fft::{fft, ifft, Complex};
use crate::stats::{mean, rolling_mean_std, std_dev};

/// Sliding dot products `⟨query, series[i..i+m]⟩` for all valid `i`,
/// computed with one FFT-sized convolution.
pub fn sliding_dot_products(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    assert!(m >= 1, "empty query");
    if n < m {
        return Vec::new();
    }
    // Correlation via convolution with the reversed query, zero-padded to a
    // power of two ≥ n + m.
    let size = (n + m).next_power_of_two();
    let mut a: Vec<Complex> = Vec::with_capacity(size);
    a.extend(series.iter().map(|&v| Complex::new(v, 0.0)));
    a.resize(size, Complex::ZERO);
    let mut b: Vec<Complex> = Vec::with_capacity(size);
    b.extend(query.iter().rev().map(|&v| Complex::new(v, 0.0)));
    b.resize(size, Complex::ZERO);

    let fa = fft(&a);
    let fb = fft(&b);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    let conv = ifft(&prod);
    // conv[m-1+i] = Σ_k query[k]·series[i+k]
    (0..=n - m).map(|i| conv[m - 1 + i].re).collect()
}

/// The MASS distance profile: z-normalised Euclidean distance from `query`
/// to every length-`m` subsequence of `series` (`m = query.len()`).
///
/// ```
/// let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.2).sin()).collect();
/// let query = series[40..72].to_vec();
/// let profile = tsops::mass::mass(&query, &series);
/// assert_eq!(profile.len(), series.len() - query.len() + 1);
/// assert!(profile[40] < 1e-6); // exact self-match
/// ```
///
/// Degenerate (constant) subsequences follow the same convention as
/// [`crate::distance::ZnormSeries`]: constant-vs-constant → 0,
/// constant-vs-varying → `√m`.
pub fn mass(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m >= 2, "query must have ≥ 2 samples");
    if series.len() < m {
        return Vec::new();
    }
    let mq = mean(query);
    let sq = std_dev(query);
    let query_degenerate = sq < 1e-12;

    let dots = sliding_dot_products(query, series);
    let (means, stds) = rolling_mean_std(series, m);
    let mf = m as f64;

    dots.iter()
        .zip(means.iter().zip(&stds))
        .map(|(&dot, (&mu, &sigma))| {
            let sub_degenerate = sigma < 1e-12;
            match (query_degenerate, sub_degenerate) {
                (true, true) => 0.0,
                (true, false) | (false, true) => mf.sqrt(),
                (false, false) => {
                    let corr = ((dot - mf * mq * mu) / (mf * sq * sigma)).clamp(-1.0, 1.0);
                    (2.0 * mf * (1.0 - corr)).max(0.0).sqrt()
                }
            }
        })
        .collect()
}

/// A reusable FFT plan for repeated sliding-dot-product scans against one
/// fixed series (the self-join pattern of MERLIN's length sweep).
///
/// [`sliding_dot_products`] spends two of its three FFTs on the series, which
/// never changes across the sweep. The plan pads the series once to a power of
/// two large enough for the longest query and caches its spectrum, so each
/// subsequent query costs one forward FFT plus one inverse FFT.
///
/// The padded transform size differs from what [`sliding_dot_products`] picks
/// for short queries, so results agree to FFT round-off (~1e-9 relative), not
/// bit-for-bit — which is why the plan only backs `fast`-mode kernels.
pub struct SelfJoinPlan {
    series_fft: Vec<Complex>,
    series_len: usize,
    max_query: usize,
    size: usize,
}

impl SelfJoinPlan {
    /// Build a plan for `series`, valid for any query of length `1..=max_query`.
    pub fn new(series: &[f64], max_query: usize) -> Self {
        assert!(max_query >= 1, "max_query must be >= 1");
        assert!(!series.is_empty(), "empty series");
        let size = (series.len() + max_query).next_power_of_two();
        let mut a: Vec<Complex> = Vec::with_capacity(size);
        a.extend(series.iter().map(|&v| Complex::new(v, 0.0)));
        a.resize(size, Complex::ZERO);
        SelfJoinPlan {
            series_fft: fft(&a),
            series_len: series.len(),
            max_query,
            size,
        }
    }

    /// Length of the series the plan was built over.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Longest query length the plan supports.
    pub fn max_query(&self) -> usize {
        self.max_query
    }

    /// Sliding dot products `⟨query, series[i..i+m]⟩` for all valid `i`,
    /// reusing the cached series spectrum. Same output shape as
    /// [`sliding_dot_products`]; values agree to FFT round-off.
    pub fn sliding_dots(&self, query: &[f64]) -> Vec<f64> {
        let m = query.len();
        assert!(m >= 1, "empty query");
        assert!(
            m <= self.max_query,
            "query length {m} exceeds plan max {}",
            self.max_query
        );
        if self.series_len < m {
            return Vec::new();
        }
        let mut b: Vec<Complex> = Vec::with_capacity(self.size);
        b.extend(query.iter().rev().map(|&v| Complex::new(v, 0.0)));
        b.resize(self.size, Complex::ZERO);
        let fb = fft(&b);
        let prod: Vec<Complex> = self
            .series_fft
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| x * y)
            .collect();
        let conv = ifft(&prod);
        (0..=self.series_len - m)
            .map(|i| conv[m - 1 + i].re)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{euclidean, ZnormSeries};
    use crate::stats::znormalize;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * ((i * i) as f64 * 0.011).cos())
            .collect()
    }

    #[test]
    fn sliding_dots_match_naive() {
        let series = signal(200);
        let query = &series[40..72];
        let fast = sliding_dot_products(query, &series);
        assert_eq!(fast.len(), 200 - 32 + 1);
        for i in [0usize, 7, 100, 168] {
            let naive: f64 = query
                .iter()
                .zip(&series[i..i + 32])
                .map(|(a, b)| a * b)
                .sum();
            assert!((fast[i] - naive).abs() < 1e-8, "offset {i}");
        }
    }

    #[test]
    fn mass_matches_explicit_distances() {
        let series = signal(300);
        let query = &series[120..160].to_vec();
        let profile = mass(query, &series);
        let zq = znormalize(query);
        for i in [0usize, 33, 120, 200, 260] {
            let zs = znormalize(&series[i..i + 40]);
            let direct = euclidean(&zq, &zs);
            assert!(
                (profile[i] - direct).abs() < 1e-6,
                "offset {i}: {} vs {direct}",
                profile[i]
            );
        }
        // Exact self-match at the query's own offset.
        assert!(profile[120] < 1e-6);
    }

    #[test]
    fn mass_agrees_with_znorm_series() {
        let series = signal(150);
        let w = 25;
        let zs = ZnormSeries::new(&series, w);
        let query = &series[60..60 + w].to_vec();
        let profile = mass(query, &series);
        for j in 0..zs.count() {
            assert!(
                (profile[j] - zs.dist(60, j)).abs() < 1e-6,
                "j={j}: {} vs {}",
                profile[j],
                zs.dist(60, j)
            );
        }
    }

    #[test]
    fn mass_degenerate_conventions() {
        let mut series = vec![2.0; 60];
        for (i, v) in series[30..60].iter_mut().enumerate() {
            *v = (i as f64 * 0.9).sin();
        }
        let flat_query = vec![5.0; 10];
        let profile = mass(&flat_query, &series);
        assert!(profile[0].abs() < 1e-9); // constant vs constant
        assert!((profile[40] - (10.0f64).sqrt()).abs() < 1e-9); // constant vs varying
    }

    #[test]
    fn mass_short_series_is_empty() {
        assert!(mass(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_empty());
    }

    #[test]
    fn self_join_plan_matches_one_shot_dots_across_lengths() {
        let series = signal(257);
        let plan = SelfJoinPlan::new(&series, 64);
        assert_eq!(plan.series_len(), 257);
        assert_eq!(plan.max_query(), 64);
        for m in [2usize, 8, 31, 64] {
            let query = &series[10..10 + m];
            let planned = plan.sliding_dots(query);
            let one_shot = sliding_dot_products(query, &series);
            assert_eq!(planned.len(), one_shot.len());
            for (i, (&p, &o)) in planned.iter().zip(&one_shot).enumerate() {
                assert!(
                    (p - o).abs() < 1e-7 * (1.0 + o.abs()),
                    "m={m} i={i}: planned {p} vs one-shot {o}"
                );
            }
        }
    }

    #[test]
    fn self_join_plan_handles_short_series_and_rejects_long_queries() {
        let series = signal(20);
        let plan = SelfJoinPlan::new(&series, 30);
        assert!(plan.sliding_dots(&signal(25)).is_empty());
        let res = std::panic::catch_unwind(|| plan.sliding_dots(&signal(31)));
        assert!(res.is_err(), "query beyond max_query must panic");
    }
}
