//! Fixed-capacity ring buffer with absolute sequence numbers.
//!
//! The stream engine must run for unbounded time in bounded memory: the ring
//! retains the most recent `capacity` samples and silently evicts the
//! oldest. Every sample keeps its *absolute* position in the stream (its
//! sequence number), so window starts, events, and checkpoints all speak
//! stream coordinates, not buffer offsets.

use std::collections::VecDeque;

/// The most recent `capacity` samples of a stream, addressed by absolute
/// sequence number.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    capacity: usize,
    /// Absolute sequence number of `data[0]` (== number of evicted samples).
    base: u64,
    data: VecDeque<f64>,
}

impl RingBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be ≥ 1");
        RingBuffer {
            capacity,
            base: 0,
            data: VecDeque::with_capacity(capacity.min(1 << 16)),
        }
    }

    /// Append one sample, evicting the oldest when full. Returns the
    /// sequence number assigned to the sample.
    pub fn push(&mut self, x: f64) -> u64 {
        if self.data.len() == self.capacity {
            self.data.pop_front();
            self.base += 1;
        }
        self.data.push_back(x);
        self.base + self.data.len() as u64 - 1
    }

    /// Total samples ever pushed (the next sequence number to be assigned).
    pub fn end_seq(&self) -> u64 {
        self.base + self.data.len() as u64
    }

    /// Sequence number of the oldest retained sample.
    pub fn base_seq(&self) -> u64 {
        self.base
    }

    /// How many samples have been evicted to honour the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.base
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sample at absolute sequence `seq`, if still retained.
    pub fn get(&self, seq: u64) -> Option<f64> {
        if seq < self.base {
            return None;
        }
        let off = usize::try_from(seq - self.base).ok()?;
        self.data.get(off).copied()
    }

    /// Copy `len` samples starting at absolute sequence `start` into a
    /// fresh vector; `None` if any of them is evicted or not yet pushed.
    pub fn slice_to_vec(&self, start: u64, len: usize) -> Option<Vec<f64>> {
        if start < self.base {
            return None;
        }
        let off = usize::try_from(start - self.base).ok()?;
        let end = off.checked_add(len)?;
        if end > self.data.len() {
            return None;
        }
        Some(self.data.iter().skip(off).take(len).copied().collect())
    }

    /// All retained samples, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.iter().copied().collect()
    }

    /// Rebuild from checkpointed parts (`data[0]` has sequence `base`).
    pub fn from_parts(capacity: usize, base: u64, data: Vec<f64>) -> Self {
        assert!(capacity >= 1, "ring capacity must be ≥ 1");
        assert!(data.len() <= capacity, "ring data exceeds capacity");
        RingBuffer {
            capacity,
            base,
            data: VecDeque::from(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_monotone_sequences() {
        let mut r = RingBuffer::new(4);
        for i in 0..6u64 {
            assert_eq!(r.push(i as f64), i);
        }
        assert_eq!(r.end_seq(), 6);
        assert_eq!(r.base_seq(), 2);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.len(), 4);
        assert_eq!(r.to_vec(), vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn get_and_slice_respect_eviction() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(i as f64);
        }
        assert_eq!(r.get(1), None); // evicted
        assert_eq!(r.get(2), Some(2.0));
        assert_eq!(r.get(4), Some(4.0));
        assert_eq!(r.get(5), None); // not pushed yet
        assert_eq!(r.slice_to_vec(2, 3), Some(vec![2.0, 3.0, 4.0]));
        assert_eq!(r.slice_to_vec(1, 2), None);
        assert_eq!(r.slice_to_vec(3, 3), None);
        assert_eq!(r.slice_to_vec(4, 0), Some(Vec::new()));
    }

    #[test]
    fn from_parts_round_trips() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(i as f64 * 1.5);
        }
        let rebuilt = RingBuffer::from_parts(r.capacity(), r.base_seq(), r.to_vec());
        assert_eq!(rebuilt.end_seq(), r.end_seq());
        assert_eq!(rebuilt.to_vec(), r.to_vec());
        assert_eq!(rebuilt.get(3), r.get(3));
    }
}
