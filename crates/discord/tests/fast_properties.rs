//! Property tests: the MASS-backed fast kernels agree with the exact
//! brute-force oracles at randomized series, lengths, and sweep configs —
//! the randomized extension of the fixed-fixture
//! `merlin_matches_brute_force_at_every_length` test in `merlin.rs`.
//!
//! Tolerances mirror the fast kernel's contract: the FFT-seeded diagonal
//! recurrences reassociate float sums, so distances agree with the exact
//! kernels to ~1e-6 relative (with a small absolute floor where near-zero
//! profile entries amplify round-off through the final square root). Where a
//! set/argmax boundary sits within that tolerance of two candidates the two
//! modes may legitimately pick different representatives, so the properties
//! compare positions *through* the brute-force profile rather than demanding
//! bit-equal index sets at knife-edge ties.

use discord::fast::{drag_fast, merlin_fast, self_join_profile};
use discord::matrix_profile::matrix_profile;
use discord::merlin::{merlin, MerlinConfig};
use proptest::prelude::*;
use tsops::mass::SelfJoinPlan;
use tsops::stats::rolling_mean_std;

/// Profile-level tolerance: absolute floor for √ε amplification near zero,
/// relative term for the bulk.
fn tol(reference: f64) -> f64 {
    1e-5 + 1e-6 * reference.abs()
}

/// A periodic signal with deterministic jitter and a frequency-shift anomaly
/// — the same family the unit fixtures use, but with every parameter drawn
/// by proptest.
fn anomalous(n: usize, period: usize, phase: u64, at: usize, len: usize) -> Vec<f64> {
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let t = 2.0 * std::f64::consts::PI * i as f64 / period as f64;
            t.sin() + 0.05 * (((i as u64 * 37 + phase * 13) % 97) as f64 / 97.0 - 0.5)
        })
        .collect();
    for i in at..(at + len).min(n) {
        x[i] = (4.0 * std::f64::consts::PI * i as f64 / period as f64).sin();
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fast MERLIN sweeps the identical length sequence as the exact ladder
    /// and reports the same top-1 distance at every length.
    #[test]
    fn merlin_fast_matches_exact_at_random_sweeps(
        n in 80usize..240,
        period in 8usize..40,
        phase in 0u64..1000,
        frac in 0.2f64..0.7,
        min_len in 4usize..12,
        span in 0usize..24,
        step in 1usize..6,
    ) {
        let alen = period.clamp(4, n / 6);
        let at = (frac * (n - alen) as f64) as usize;
        let x = anomalous(n, period, phase, at, alen);
        let cfg = MerlinConfig::new(min_len, min_len + span).with_step(step);
        let fast = merlin_fast(&x, cfg);
        let exact = merlin(&x, cfg);
        prop_assert_eq!(fast.len(), exact.len());
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert_eq!(f.length, e.length);
            prop_assert!(
                (f.distance - e.distance).abs() <= tol(e.distance),
                "length {}: fast {} vs exact {}", e.length, f.distance, e.distance
            );
            // Positions agree outright except at knife-edge argmax ties,
            // where both candidates must carry the same distance anyway —
            // checked against the brute-force profile so a wrong *position*
            // can't hide behind a matching distance.
            let truth = matrix_profile(&x, e.length);
            prop_assert!(
                (truth.profile[f.index] - e.distance).abs() <= tol(e.distance),
                "length {}: fast picked index {} off the profile max", e.length, f.index
            );
        }
    }

    /// Fast DRAG reports exactly the subsequences the brute-force profile
    /// puts at or above `r` (modulo the FFT tolerance band around `r`),
    /// sorted by descending distance.
    #[test]
    fn drag_fast_matches_brute_force_profile_at_random_r(
        n in 80usize..240,
        period in 8usize..40,
        phase in 0u64..1000,
        frac in 0.2f64..0.7,
        w in 4usize..16,
        r in 1.0f64..6.0,
    ) {
        let alen = period.clamp(4, n / 6);
        let at = (frac * (n - alen) as f64) as usize;
        let x = anomalous(n, period, phase, at, alen);
        let plan = SelfJoinPlan::new(&x, w);
        let fast = drag_fast(&x, w, r, &plan);
        let truth = matrix_profile(&x, w);
        // Every reported discord sits (within tolerance) on the profile and
        // above the range; the list is sorted by descending distance.
        for d in &fast {
            prop_assert!((d.distance - truth.profile[d.index]).abs() <= tol(d.distance));
            prop_assert!(truth.profile[d.index] >= r - tol(r));
        }
        for pair in fast.windows(2) {
            prop_assert!(pair[0].distance >= pair[1].distance);
        }
        // Every profile entry clearly above the range is reported.
        let reported: Vec<usize> = fast.iter().map(|d| d.index).collect();
        for (i, &t) in truth.profile.iter().enumerate() {
            if t >= r + tol(t) {
                prop_assert!(reported.contains(&i), "index {i} (dist {t}) missing at r={r}");
            }
        }
    }

    /// With a constant head spliced in, the fast profile still matches the
    /// brute-force oracle elementwise, and every degenerate (σ = 0) window
    /// lands on the `tsops::mass` conventions: 0 with an admissible
    /// degenerate partner, √w without one.
    ///
    /// The flat run starts at index 0 and sits on a dyadic level (a multiple
    /// of 1/8) so the shared `rolling_mean_std` computes its variance as
    /// *exactly* zero: dyadic constants sum without rounding, and sliding
    /// within the run adds `c − c = 0` exactly. A flat run spliced
    /// mid-series (or on a non-dyadic level) instead inherits ~1e-16 of
    /// rolling-sum residue, landing σ in (1e-12, 1e-8) — past the degenerate
    /// threshold but so ill-conditioned that *neither* kernel's correlation
    /// is meaningful there, which is outside the equivalence contract.
    #[test]
    fn profile_honours_degenerate_conventions_at_random_flat_heads(
        n in 80usize..220,
        period in 8usize..30,
        phase in 0u64..1000,
        flat_len in 12usize..40,
        flat_eighths in -24i64..25,
        w in 4usize..12,
    ) {
        let mut x = anomalous(n, period, phase, 0, 0);
        let flen = flat_len.min(n / 2);
        for v in &mut x[..flen] {
            *v = flat_eighths as f64 * 0.125;
        }
        let plan = SelfJoinPlan::new(&x, w);
        let fast = self_join_profile(&x, w, &plan);
        let truth = matrix_profile(&x, w);
        prop_assert_eq!(fast.len(), truth.profile.len());
        for (i, (&f, &t)) in fast.iter().zip(&truth.profile).enumerate() {
            prop_assert!((f - t).abs() <= tol(t), "i={}: fast {} vs brute {}", i, f, t);
        }
        let (_, stds) = rolling_mean_std(&x, w);
        let sqrt_w = (w as f64).sqrt();
        for (i, &s) in stds.iter().enumerate() {
            if s < 1e-12 {
                prop_assert!(
                    fast[i].abs() <= 1e-9 || (fast[i] - sqrt_w).abs() <= 1e-9,
                    "degenerate window {} reported {} (want 0 or √w={})", i, fast[i], sqrt_w
                );
            }
        }
    }
}
