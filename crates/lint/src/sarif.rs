//! Minimal SARIF 2.1.0 exporter.
//!
//! Emits the subset CI annotators actually read — one run, the rule
//! catalog under `tool.driver.rules`, and one `result` per diagnostic with
//! a `ruleId`, message, physical location, and the baseline fingerprint
//! under `fingerprints` (`triadLint/v1`, same hash `--baseline` uses, so a
//! SARIF consumer and the baseline gate agree on finding identity).
//! Hand-rolled JSON, like the rest of the crate: the workspace builds
//! offline without serde.

use crate::engine::{json_escape, FileReport};
use crate::rules::RULES;

pub fn render(reports: &[FileReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\n");
    out.push_str("      \"name\": \"triad-lint\",\n");
    out.push_str("      \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("      \"rules\": [");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            json_escape(id),
            json_escape(desc)
        ));
    }
    out.push_str("\n      ]\n");
    out.push_str("    }},\n");
    out.push_str("    \"results\": [");
    let mut first = true;
    for r in reports {
        for d in &r.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n      {{\"ruleId\":\"{}\",\"level\":\"warning\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}],\
                 \"fingerprints\":{{\"triadLint/v1\":\"{:016x}\"}}}}",
                json_escape(d.rule),
                json_escape(&d.message),
                json_escape(&r.rel_path),
                d.line,
                d.fingerprint
            ));
        }
    }
    out.push_str(if first { "]\n" } else { "\n    ]\n" });
    out.push_str("  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn sarif_shape_contains_rules_and_results() {
        let reports = vec![FileReport {
            rel_path: "crates/x/src/f.rs".into(),
            diagnostics: vec![Diagnostic {
                rule: "nondet-iter",
                path: "crates/x/src/f.rs".into(),
                line: 7,
                message: "hash order escapes".into(),
                fingerprint: 0xdead_beef_0102_0304,
            }],
            expected: Vec::new(),
        }];
        let s = render(&reports);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"nondet-iter\""));
        assert!(s.contains("\"startLine\":7"));
        assert!(s.contains("deadbeef01020304"));
        // Every catalog rule is declared in the driver.
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\":\"{id}\"")), "{id} missing");
        }
        // No stray raw quotes from messages.
        assert!(!render(&[]).is_empty());
    }
}
