//@ path: crates/tsops/src/fixture.rs
//@ expect: lossy-cast
// Seeded violations: narrowing casts in a kernel crate.
pub fn quantize(x: f64) -> f32 {
    x as f32
}

pub fn bucket(x: f64) -> u32 {
    (x * 1024.0) as u32
}
