//! Industrial-sensor monitoring — the paper's motivating IIoT scenario.
//!
//! A plant sensor cycles periodically; one day a valve starts sticking and
//! the duty cycle flattens for a few hundred samples. This example compares
//! three tools on the same incident:
//!
//! 1. the naive |z| > 4σ "one-liner" (works on flawed benchmarks, fails here),
//! 2. a trained LSTM-AE with best-F1 thresholding,
//! 3. TriAD's full pipeline.
//!
//! ```sh
//! cargo run --release --example industrial_monitoring
//! ```

use baselines::lstm_ae::{LstmAe, LstmAeConfig};
use baselines::Detector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use triad_core::{TriAd, TriadConfig};
use ucrgen::oneliner::{oneliner_predict, LabelledSeries};

fn plant_signal(n: usize, period: f64, rng: &mut StdRng) -> Vec<f64> {
    use rand::Rng;
    (0..n)
        .map(|i| {
            let t = i as f64;
            // Smoothed duty cycle with slow load drift.
            ((2.0 * std::f64::consts::PI * t / period).sin() * 3.0).tanh()
                + 0.0001 * t
                + 0.03 * (rng.random::<f64>() - 0.5)
        })
        .collect()
}

fn main() {
    let period = 48.0;
    let mut rng = StdRng::seed_from_u64(11);
    let mut series = plant_signal(2600, period, &mut rng);
    // The sticking valve: output freezes near its current level.
    let anomaly = 2100..2300;
    let level = series[anomaly.start];
    for v in &mut series[anomaly.clone()] {
        *v = level + 0.01 * (*v - level);
    }

    let data = LabelledSeries {
        name: "sticking_valve".into(),
        series,
        train_end: 1600,
        events: vec![anomaly.clone()],
    };
    let labels = data.test_labels();
    println!(
        "incident: valve sticks at t={}..{} (test coords {:?})",
        anomaly.start,
        anomaly.end,
        anomaly.start - data.train_end..anomaly.end - data.train_end
    );

    // 1. One-liner.
    let pred = oneliner_predict(&data, 4.0);
    let m = evalkit::pointwise::prf(&pred, &labels);
    println!(
        "one-liner |z|>4σ : P {:.3} R {:.3} F1 {:.3}  (stuck output is *within* normal range)",
        m.precision, m.recall, m.f1
    );

    // 2. LSTM-AE.
    let scores = LstmAe::trained(LstmAeConfig {
        epochs: 6,
        ..Default::default()
    })
    .score(data.train(), data.test());
    let (_, m) = evalkit::threshold::best_f1(&scores, &labels);
    println!(
        "LSTM-AE (trained): P {:.3} R {:.3} F1 {:.3}  (best-threshold protocol)",
        m.precision, m.recall, m.f1
    );

    // 3. TriAD.
    let cfg = TriadConfig {
        epochs: 6,
        merlin_step: 2,
        ..Default::default()
    };
    let fitted = TriAd::new(cfg).fit(data.train()).expect("fit");
    let det = fitted.detect(data.test());
    let m = evalkit::pointwise::prf(&det.prediction, &labels);
    let aff = evalkit::affiliation::affiliation_prf(&det.prediction, &labels);
    println!(
        "TriAD            : P {:.3} R {:.3} F1 {:.3}  affiliation F1 {:.3}  window {:?} fallback={}",
        m.precision,
        m.recall,
        m.f1,
        aff.f1,
        det.selected_window,
        det.used_fallback
    );
    println!("\nThe duration anomaly never leaves the signal's amplitude envelope, so the");
    println!("threshold detector is blind; TriAD's residual/frequency views flag the window.");
}
