//! End-to-end test of the serving subsystem: a real `triad-serve` TCP server
//! on an ephemeral port, driven only through sockets.
//!
//! Covers the full acceptance surface: fit over the wire on an archive
//! dataset, eight concurrent detects that the batching layer must group
//! (asserted via the `stats` counters), detection correctness within ±100
//! points of the ground-truth event, bit-for-bit identical responses across
//! evict/reload, and a graceful shutdown that drains an in-flight request.

mod common;

use common::{easy_dataset, spawn_server, stat_counter, wait_until, CLIENT_TIMEOUT};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use triad_serve::{Client, ServeConfig, Value};

fn range_of(v: &Value, key: &str) -> (usize, usize) {
    let arr = v.get(key).and_then(Value::as_arr).unwrap_or_else(|| {
        panic!("response missing range {key}: {v}");
    });
    (
        arr[0].as_u64().expect("range start") as usize,
        arr[1].as_u64().expect("range end") as usize,
    )
}

#[test]
fn serve_fit_batch_detect_evict_shutdown() {
    let models_dir = common::tmp_dir("serve_e2e");
    let (handle, addr) = spawn_server(ServeConfig {
        workers: 10,
        // One executor makes the batching assertion deterministic: requests
        // arriving while it runs the first batch must coalesce.
        executors: 1,
        max_batch: 16,
        max_delay_ms: 150,
        request_timeout_ms: 120_000,
        idle_timeout_ms: 120_000,
        cache_capacity: 4,
        ..common::ephemeral_serve_cfg(&models_dir)
    });

    let ds = easy_dataset();
    let anomaly = ds.anomaly_in_test();
    let test: Vec<f64> = ds.test().to_vec();

    // --- fit over the wire -------------------------------------------------
    let mut ctl = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
    let health = ctl.health().expect("health");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    let fit = ctl
        .fit(
            "ucr-level-shift",
            ds.train(),
            vec![
                ("epochs", Value::Num(5.0)),
                ("depth", Value::Num(3.0)),
                ("hidden", Value::Num(12.0)),
                ("merlin_step", Value::Num(4.0)),
                ("seed", Value::Num(0.0)),
            ],
        )
        .expect("fit");
    assert!(fit.get("bytes").and_then(Value::as_u64).unwrap() > 0);
    let listed = ctl.list().expect("list");
    assert_eq!(
        listed.get("models").and_then(Value::as_arr).unwrap().len(),
        1
    );

    // --- 8 concurrent detects must batch -----------------------------------
    let n_clients = 8;
    let barrier = Arc::new(Barrier::new(n_clients));
    let mut joins = Vec::new();
    for _ in 0..n_clients {
        let addr = addr.clone();
        let test = test.clone();
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
            barrier.wait();
            c.detect("ucr-level-shift", &test).expect("detect")
        }));
    }
    let responses: Vec<Value> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert_eq!(responses.len(), n_clients);
    // Identical requests ⇒ byte-identical responses (deterministic JSON).
    let first = responses[0].to_string();
    for r in &responses[1..] {
        assert_eq!(r.to_string(), first, "concurrent responses diverged");
    }

    let stats = ctl.stats().expect("stats");
    let counter = |k: &str| stat_counter(&stats, k);
    assert_eq!(counter("detect_total"), n_clients as u64);
    assert!(
        counter("batches_multi") >= 1,
        "no batch grouped ≥2 of the {n_clients} concurrent detects: {stats}"
    );
    assert!(
        counter("batched_requests") >= n_clients as u64,
        "batching layer missed requests: {stats}"
    );
    assert!(
        counter("batch_dedup_hits") >= 1,
        "identical payloads not deduped"
    );
    assert_eq!(counter("timeouts_total"), 0);

    // --- detection is correct within ±100 points ---------------------------
    let det = &responses[0];
    let (sel_start, sel_end) = range_of(det, "selected");
    let lo = anomaly.start.saturating_sub(100);
    let hi = anomaly.end + 100;
    assert!(
        sel_start < hi && sel_end > lo,
        "selected window {sel_start}..{sel_end} misses anomaly {anomaly:?} (±100)"
    );
    let (reg_start, reg_end) = range_of(det, "region");
    assert!(
        reg_start < hi && reg_end > lo,
        "flagged region {reg_start}..{reg_end} misses anomaly {anomaly:?} (±100)"
    );

    // --- evict, reload from disk, bit-for-bit identical ---------------------
    let evicted = ctl.evict("ucr-level-shift").expect("evict");
    assert_eq!(
        evicted.get("was_loaded").and_then(Value::as_bool),
        Some(true)
    );
    let misses_before = counter("cache_misses");
    let reloaded = ctl
        .detect("ucr-level-shift", &test)
        .expect("detect after evict");
    assert_eq!(
        reloaded.to_string(),
        first,
        "detection after evict/reload is not bit-identical"
    );
    let stats2 = ctl.stats().expect("stats");
    let misses_after = stats2.get("cache_misses").and_then(Value::as_u64).unwrap();
    assert!(
        misses_after > misses_before,
        "reload did not go through the disk-load path"
    );

    // --- graceful shutdown drains an in-flight detect -----------------------
    let base_requests = stat_counter(&ctl.stats().expect("stats"), "requests_total");
    let inflight = {
        let addr = addr.clone();
        let test = test.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
            c.detect("ucr-level-shift", &test)
        })
    };
    // Wait until the in-flight detect's request line has actually been read
    // by the server — requests_total must move past the baseline plus our
    // own stats polls — then ask for shutdown on a separate connection.
    let mut polls = 0u64;
    wait_until(
        "in-flight detect to reach the server",
        Duration::from_secs(30),
        || {
            polls += 1;
            stat_counter(&ctl.stats().expect("stats"), "requests_total") > base_requests + polls
        },
    );
    let bye = ctl.shutdown().expect("shutdown verb");
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    let drained = inflight
        .join()
        .unwrap()
        .expect("in-flight detect was dropped");
    assert_eq!(
        drained.to_string(),
        first,
        "drained in-flight response differs"
    );
    // All threads must exit; new connections must be refused afterwards.
    handle.wait();
    assert!(
        Client::connect(&addr, Duration::from_millis(500)).is_err(),
        "server still accepting after shutdown"
    );
    let _ = std::fs::remove_dir_all(&models_dir);
}
