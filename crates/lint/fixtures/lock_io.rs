//@ path: crates/serve/src/fixture.rs
//@ expect: lock-across-io
// Seeded violation: the slot mutex stays locked across a filesystem read.
use std::sync::Mutex;

pub fn reload(slot: &Mutex<Vec<u8>>, path: &str) -> std::io::Result<()> {
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    let bytes = std::fs::read_to_string(path)?;
    guard.clear();
    guard.extend_from_slice(bytes.as_bytes());
    Ok(())
}
