//@ path: crates/bench/src/fleet_clock.rs
//@ expect: ambient-entropy
// Seeded violation: fleet-soak harness timing off a raw Instant. The bench
// crate is exempt from `raw-instant`, but its stopwatch must still be the
// shared trace clock (obs::now_instant) so the soak wall-clock aligns with
// the fleet-ingest/fleet-score spans it brackets.
pub fn soak_wall_ms(streams: usize) -> f64 {
    let t0 = std::time::Instant::now();
    let mut pushed = 0usize;
    for _ in 0..streams {
        pushed += 64;
    }
    let _ = pushed;
    t0.elapsed().as_secs_f64() * 1e3
}
