//! Save / load a trained TriAD model.
//!
//! Per-dataset training is cheap but not free; a monitoring deployment wants
//! to train once and re-run detection on fresh test windows. The format is
//! a small header (config fields the pipeline needs at inference, training
//! metadata, the training series for the window-selection stage) followed by
//! the `neuro` parameter block.
//!
//! ```text
//! magic   b"TRIAD1\n"
//! u32     header length
//! header  UTF-8 "key=value" lines (config + metadata)
//! u64     training-series length, then f64×len little-endian samples
//! block   neuro::serialize parameter file (all encoder + head params)
//! ```

use crate::config::TriadConfig;
use crate::features::FeatureExtractor;
use crate::pipeline::FittedTriad;
use crate::train::{Model, TrainReport};
use crate::Domain;
use neuro::serialize::{load_params, write_params};
use std::io::{self, Read, Write};
use std::path::Path;
use tsops::window::Segmenter;

const MAGIC: &[u8; 7] = b"TRIAD1\n";

fn header_string(fitted: &FittedTriad) -> String {
    let cfg = fitted.config();
    let rep = fitted.report();
    let fx = fitted.extractor();
    let domains: Vec<&str> = cfg.domains().iter().map(|d| d.name()).collect();
    [
        format!("alpha={}", cfg.alpha),
        format!("depth={}", cfg.depth),
        format!("hidden={}", cfg.hidden),
        format!("kernel={}", cfg.kernel),
        format!("temperature={}", cfg.temperature),
        format!("top_z={}", cfg.top_z),
        format!("weighted_voting={}", cfg.weighted_voting),
        format!("triad_vote_weight={}", cfg.triad_vote_weight),
        format!("merlin_pad_windows={}", cfg.merlin_pad_windows),
        format!("merlin_min_len={}", cfg.merlin_min_len),
        format!("merlin_max_len={}", cfg.merlin_max_len),
        format!("merlin_step={}", cfg.merlin_step),
        format!("seed={}", cfg.seed),
        format!("domains={}", domains.join(",")),
        format!("period={}", rep.period),
        format!("window={}", rep.window),
        format!("stride={}", rep.stride),
        format!("residual_scale={}", fx.residual_scale),
    ]
    .join("\n")
}

fn parse_header(text: &str) -> io::Result<std::collections::HashMap<String, String>> {
    let mut map = std::collections::HashMap::new();
    for line in text.lines() {
        let (k, v) = line.split_once('=').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad header line: {line}"))
        })?;
        map.insert(k.to_string(), v.to_string());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    map: &std::collections::HashMap<String, String>,
    key: &str,
) -> io::Result<T> {
    map.get(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("missing/bad {key}")))
}

/// Serialize a fitted model.
pub fn save<W: Write>(mut w: W, fitted: &FittedTriad) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let header = header_string(fitted);
    w.write_all(&(header.len() as u32).to_le_bytes())?;
    w.write_all(header.as_bytes())?;
    let train = fitted.train_series();
    w.write_all(&(train.len() as u64).to_le_bytes())?;
    for &v in train {
        w.write_all(&v.to_le_bytes())?;
    }
    write_params(w, &fitted.model().params())
}

/// Save to a file path.
pub fn save_file(path: &Path, fitted: &FittedTriad) -> io::Result<()> {
    save(std::io::BufWriter::new(std::fs::File::create(path)?), fitted)
}

/// Deserialize a fitted model.
pub fn load<R: Read>(mut r: R) -> io::Result<FittedTriad> {
    let mut magic = [0u8; 7];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a TRIAD1 file"));
    }
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let hlen = u32::from_le_bytes(len4) as usize;
    if hlen > 1 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized header"));
    }
    let mut hbuf = vec![0u8; hlen];
    r.read_exact(&mut hbuf)?;
    let header = String::from_utf8(hbuf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 header"))?;
    let map = parse_header(&header)?;

    let mut cfg = TriadConfig {
        alpha: get(&map, "alpha")?,
        depth: get(&map, "depth")?,
        hidden: get(&map, "hidden")?,
        kernel: get(&map, "kernel")?,
        temperature: get(&map, "temperature")?,
        top_z: get(&map, "top_z")?,
        weighted_voting: get(&map, "weighted_voting")?,
        triad_vote_weight: get(&map, "triad_vote_weight")?,
        merlin_pad_windows: get(&map, "merlin_pad_windows")?,
        merlin_min_len: get(&map, "merlin_min_len")?,
        merlin_max_len: get(&map, "merlin_max_len")?,
        merlin_step: get(&map, "merlin_step")?,
        seed: get(&map, "seed")?,
        ..TriadConfig::default()
    };
    let domain_names: String = get(&map, "domains")?;
    cfg.use_temporal = domain_names.split(',').any(|d| d == "temporal");
    cfg.use_frequency = domain_names.split(',').any(|d| d == "frequency");
    cfg.use_residual = domain_names.split(',').any(|d| d == "residual");

    let period: usize = get(&map, "period")?;
    let window: usize = get(&map, "window")?;
    let stride: usize = get(&map, "stride")?;
    let residual_scale: f64 = get(&map, "residual_scale")?;

    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let n_train = u64::from_le_bytes(len8) as usize;
    if n_train > 1 << 28 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible train length"));
    }
    let mut train = Vec::with_capacity(n_train);
    let mut b8 = [0u8; 8];
    for _ in 0..n_train {
        r.read_exact(&mut b8)?;
        train.push(f64::from_le_bytes(b8));
    }

    // Rebuild the model skeleton exactly as `train::fit` does (same seed,
    // same construction order), then overwrite its parameters.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let encoders: Vec<(Domain, crate::encoder::DomainEncoder)> = cfg
        .domains()
        .iter()
        .map(|&d| {
            (
                d,
                crate::encoder::DomainEncoder::new(
                    &mut rng,
                    d.channels(),
                    cfg.hidden,
                    cfg.depth,
                    cfg.kernel,
                ),
            )
        })
        .collect();
    let head = crate::encoder::ProjectionHead::new(&mut rng, cfg.hidden);
    let model = Model { encoders, head };
    load_params(r, &model.params())?;

    let extractor = FeatureExtractor {
        period,
        residual_scale,
    };
    let segmenter = Segmenter::new(window, stride);
    let report = TrainReport {
        epoch_losses: Vec::new(),
        val_losses: Vec::new(),
        period,
        window,
        stride,
        n_windows: 0,
    };
    Ok(FittedTriad::from_parts(cfg, model, extractor, segmenter, report, train))
}

/// Load from a file path.
pub fn load_file(path: &Path) -> io::Result<FittedTriad> {
    load(std::io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TriAd;
    use std::f64::consts::PI;

    fn series() -> (Vec<f64>, Vec<f64>) {
        let mut full: Vec<f64> = (0..1000)
            .map(|i| (2.0 * PI * i as f64 / 40.0).sin() + 0.25 * (4.0 * PI * i as f64 / 40.0).sin())
            .collect();
        for i in 800..860 {
            full[i] = (8.0 * PI * i as f64 / 40.0).sin();
        }
        (full[..600].to_vec(), full[600..].to_vec())
    }

    fn quick_cfg() -> TriadConfig {
        TriadConfig {
            epochs: 3,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        }
    }

    #[test]
    fn save_load_round_trip_reproduces_detection() {
        let (train, test) = series();
        let fitted = TriAd::new(quick_cfg()).fit(&train).expect("fit");
        let before = fitted.detect(&test);

        let mut buf = Vec::new();
        save(&mut buf, &fitted).expect("save");
        let restored = load(buf.as_slice()).expect("load");

        assert_eq!(restored.period(), fitted.period());
        assert_eq!(restored.window_len(), fitted.window_len());
        let after = restored.detect(&test);
        assert_eq!(before.prediction, after.prediction);
        assert_eq!(before.votes, after.votes);
        assert_eq!(before.selected_window, after.selected_window);
        assert_eq!(before.discords, after.discords);
    }

    #[test]
    fn ablated_models_round_trip() {
        let (train, test) = series();
        let mut cfg = quick_cfg();
        cfg.use_residual = false;
        let fitted = TriAd::new(cfg).fit(&train).expect("fit");
        let mut buf = Vec::new();
        save(&mut buf, &fitted).unwrap();
        let restored = load(buf.as_slice()).unwrap();
        assert_eq!(restored.model().encoders.len(), 2);
        assert_eq!(
            fitted.detect(&test).prediction,
            restored.detect(&test).prediction
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(&b"not a model"[..]).is_err());
        let mut bad = MAGIC.to_vec();
        bad.extend_from_slice(&(5u32).to_le_bytes());
        bad.extend_from_slice(b"x=y\nz"); // malformed header line
        assert!(load(bad.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let (train, _) = series();
        let fitted = TriAd::new(quick_cfg()).fit(&train).expect("fit");
        let path = std::env::temp_dir().join("triad_persist_test.bin");
        save_file(&path, &fitted).unwrap();
        let restored = load_file(&path).unwrap();
        assert_eq!(restored.window_len(), fitted.window_len());
        std::fs::remove_file(&path).ok();
    }
}
