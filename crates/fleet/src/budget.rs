//! Per-shard byte accounting with logical-clock LRU ordering.
//!
//! The ledger tracks the estimated resident bytes of every engine on one
//! shard (`StreamEngine::estimated_bytes`, a pure function of collection
//! lengths) and which stream was touched least recently. "Recency" is a
//! monotonically increasing **logical tick** bumped on every touch — never
//! a wall clock — so the eviction order for a given command sequence is
//! identical on every run and at every thread count.

use std::collections::BTreeMap;

/// Byte ledger + LRU index for one shard. See the module docs.
#[derive(Debug, Default)]
pub struct BudgetLedger {
    /// Byte cap for this shard (0 = unlimited).
    cap: usize,
    /// Estimated bytes per *resident* stream.
    resident: BTreeMap<String, usize>,
    /// Logical touch tick per resident stream (ticks are unique).
    last_touch: BTreeMap<String, u64>,
    tick: u64,
    total: usize,
}

impl BudgetLedger {
    pub fn new(cap: usize) -> BudgetLedger {
        BudgetLedger {
            cap,
            ..BudgetLedger::default()
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total estimated resident bytes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Resident stream count.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    pub fn is_resident(&self, stream: &str) -> bool {
        self.resident.contains_key(stream)
    }

    /// Mark `stream` most-recently used (it must be resident to matter for
    /// victim selection; touching also registers a new stream at 0 bytes).
    pub fn touch(&mut self, stream: &str) {
        self.tick += 1;
        self.resident.entry(stream.to_string()).or_insert(0);
        self.last_touch.insert(stream.to_string(), self.tick);
    }

    /// Record the current byte estimate of a resident stream.
    pub fn set_bytes(&mut self, stream: &str, bytes: usize) {
        let slot = self.resident.entry(stream.to_string()).or_insert(0);
        self.total = self.total - *slot + bytes;
        *slot = bytes;
    }

    /// Drop a stream from the ledger (evicted or closed); returns the bytes
    /// it was holding.
    pub fn remove(&mut self, stream: &str) -> usize {
        self.last_touch.remove(stream);
        match self.resident.remove(stream) {
            Some(bytes) => {
                self.total -= bytes;
                bytes
            }
            None => 0,
        }
    }

    /// Whether the shard currently exceeds its cap (0 = never).
    pub fn over_budget(&self) -> bool {
        self.cap > 0 && self.total > self.cap
    }

    /// Least-recently touched resident stream other than `protect` (the
    /// stream being served right now must never be evicted under itself).
    /// Ticks are unique, so the choice is deterministic.
    pub fn victim(&self, protect: Option<&str>) -> Option<String> {
        self.last_touch
            .iter()
            .filter(|(name, _)| Some(name.as_str()) != protect)
            .min_by_key(|(_, tick)| **tick)
            .map(|(name, _)| name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_follows_touch_order_not_insertion_order() {
        let mut b = BudgetLedger::new(100);
        for name in ["a", "b", "c"] {
            b.touch(name);
            b.set_bytes(name, 50);
        }
        assert_eq!(b.total(), 150);
        assert!(b.over_budget());
        // "a" is oldest… until touched again.
        assert_eq!(b.victim(None).as_deref(), Some("a"));
        b.touch("a");
        assert_eq!(b.victim(None).as_deref(), Some("b"));
        // The protected stream is never chosen.
        assert_eq!(b.victim(Some("b")).as_deref(), Some("c"));
    }

    #[test]
    fn remove_releases_bytes_and_victims_shrink_to_none() {
        let mut b = BudgetLedger::new(60);
        b.touch("x");
        b.set_bytes("x", 40);
        b.touch("y");
        b.set_bytes("y", 40);
        assert!(b.over_budget());
        assert_eq!(b.remove("x"), 40);
        assert!(!b.over_budget());
        assert_eq!(b.victim(Some("y")), None);
        assert_eq!(b.resident(), 1);
        // Re-sizing an existing entry adjusts, not accumulates.
        b.set_bytes("y", 10);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let mut b = BudgetLedger::new(0);
        b.touch("x");
        b.set_bytes("x", usize::MAX / 2);
        assert!(!b.over_budget());
    }
}
