//! Threshold-free score evaluation: ROC-AUC and average precision (PR-AUC).
//!
//! The paper binarises every model before scoring; these additions let the
//! bench harness also compare the *raw score quality* of the baselines,
//! independent of threshold choice.

/// ROC-AUC via the Mann–Whitney rank statistic (ties get midranks).
/// Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank all scores ascending with midranks for ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        // lint-allow(index-stampede): tie-block scan — `j + 1` is bounds-
        // checked by the `&&` short-circuit and `idx` is a permutation of
        // `0..scores.len()`, so every subscript is in range.
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Average precision (area under the precision–recall curve, step-wise).
/// Returns 0.0 when there are no positive labels.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a])); // descending
    let mut tp = 0usize;
    let mut ap = 0.0;
    let mut seen = 0usize;
    let mut k = 0;
    while k < idx.len() {
        // Process tied blocks together so ties don't depend on sort order.
        let mut j = k;
        // lint-allow(index-stampede): same tie-block scan as `roc_auc` —
        // bounds-checked by the short-circuit, `idx` is a permutation.
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[k]] {
            j += 1;
        }
        let block_pos = idx[k..=j].iter().filter(|&&i| labels[i]).count();
        tp += block_pos;
        seen += j - k + 1;
        if block_pos > 0 {
            let precision = tp as f64 / seen as f64;
            ap += precision * block_pos as f64 / n_pos as f64;
        }
        k = j + 1;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_give_zero_auc() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_like_ties_give_half() {
        let scores = [0.5; 10];
        let labels = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
        // AP for all-tied scores = prevalence.
        assert!((average_precision(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(average_precision(&[1.0], &[false]), 0.0);
    }

    #[test]
    fn ap_known_value() {
        // ranked: pos, neg, pos → AP = (1/1 + 2/3)/2 = 0.8333…
        let scores = [0.9, 0.8, 0.7];
        let labels = [true, false, true];
        assert!((average_precision(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn auc_is_threshold_free_monotone_invariant() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, true, false, true];
        let a = roc_auc(&scores, &labels);
        let squashed: Vec<f64> = scores.iter().map(|s| s.powi(3)).collect();
        let b = roc_auc(&squashed, &labels);
        assert!((a - b).abs() < 1e-12);
    }
}
