//! Seeded random-number helpers shared by augmentations and generators.
//!
//! `rand` 0.9 ships only uniform primitives; the Gaussian sampler here is a
//! plain Box–Muller transform so we avoid pulling in `rand_distr`.

use rand::Rng;

/// One standard-normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a vector with `n` standard-normal samples.
pub fn gaussian_vec<R: Rng>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng)).collect()
}

/// Uniform sample in `[lo, hi)`.
pub fn uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(99);
        let xs = gaussian_vec(&mut rng, 50_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn gaussian_is_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(gaussian(&mut rng).is_finite());
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
