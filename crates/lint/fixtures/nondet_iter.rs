//@ path: crates/serve/src/fixture.rs
//@ expect: nondet-iter
// Seeded violation: hash-order iteration escapes into a reply list (method
// chain on a struct field) and a bare for-loop over a parameter.
use std::collections::HashMap;

pub struct Registry {
    slots: HashMap<String, u64>,
}

impl Registry {
    pub fn names(&self) -> Vec<String> {
        self.slots.keys().cloned().collect()
    }
}

pub fn dump(metrics: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for v in metrics {
        total += v.1;
    }
    total
}
