//! Micro-benchmarks of the signal-processing substrates: FFT scaling,
//! Butterworth filtering, z-normalised distance, rolling statistics.
//! Supports the Sec. III-E complexity discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 64.0).sin() + 0.1 * ((i % 13) as f64))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[128usize, 350, 1024, 4096] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("rfft", n), &x, |b, x| {
            b.iter(|| tsops::fft::rfft(black_box(x)))
        });
    }
    g.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("butterworth");
    let filt = tsops::filter::Butterworth::lowpass(4, 0.1);
    for &n in &[350usize, 4096] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("filtfilt", n), &x, |b, x| {
            b.iter(|| tsops::filter::filtfilt(black_box(&filt), black_box(x)))
        });
    }
    g.finish();
}

fn bench_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("znorm_distance");
    let x = signal(4096);
    for &w in &[64usize, 256] {
        let zs = tsops::distance::ZnormSeries::new(&x, w);
        g.bench_with_input(BenchmarkId::new("dist", w), &zs, |b, zs| {
            b.iter(|| zs.dist(black_box(10), black_box(2000)))
        });
        g.bench_with_input(BenchmarkId::new("nn_dist", w), &zs, |b, zs| {
            b.iter(|| zs.nn_dist(black_box(100)))
        });
    }
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let x = signal(2048);
    c.bench_function("decompose_2048_p64", |b| {
        b.iter(|| tsops::decompose::decompose(black_box(&x), 64))
    });
    c.bench_function("estimate_period_2048", |b| {
        b.iter(|| tsops::decompose::estimate_period(black_box(&x), 1024))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fft, bench_filter, bench_distance, bench_decompose
}
criterion_main!(benches);
