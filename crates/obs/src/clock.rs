//! The shared monotonic clock.
//!
//! All span timestamps are nanoseconds since a process-wide epoch pinned on
//! first use, so spans recorded on different threads share one timeline.
//! This module is the single sanctioned caller of `std::time::Instant::now`
//! in the workspace (enforced by the `raw-instant` lint rule): code that
//! needs an `Instant` for deadline arithmetic calls [`now_instant`], code
//! that needs a span-comparable stamp calls [`now_ns`].

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide trace epoch, pinned on first use.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch. Monotonic and shared across threads.
pub fn now_ns() -> u64 {
    // A u128→u64 narrowing: wraps after ~584 years of uptime.
    epoch().elapsed().as_nanos() as u64
}

/// A raw `Instant` from the shared clock, for `Duration`-based deadline
/// arithmetic (condvar timeouts, uptime). Pins the epoch so later `now_ns`
/// stamps are comparable.
pub fn now_instant() -> Instant {
    let _ = epoch();
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn instant_and_ns_share_the_epoch() {
        let i = now_instant();
        let ns = now_ns();
        // The Instant was taken before the ns stamp, so converting it back
        // against the epoch can only be earlier.
        let i_ns = i.duration_since(epoch()).as_nanos() as u64;
        assert!(i_ns <= ns);
    }
}
