//! Cross-crate integration: trace a real detect workload, export it in
//! both formats, and check the invariants the exporters promise — spans
//! round-trip exactly, parent links resolve, timestamps are monotone per
//! thread, and all five pipeline stages are individually attributable.
//!
//! This file runs as its own process (root `tests/`), so enabling tracing
//! globally here cannot leak into other test binaries.

use std::collections::HashSet;
use std::f64::consts::PI;
use triad_core::{TriAd, TriadConfig};

const STAGES: &[&str] = &["featurize", "rank", "narrow", "discord", "vote"];

fn series() -> (Vec<f64>, Vec<f64>) {
    let p = 32.0;
    let (n_train, n_test) = (640usize, 480usize);
    let mut full: Vec<f64> = (0..n_train + n_test)
        .map(|i| {
            (2.0 * PI * i as f64 / p).sin()
                + 0.3 * (4.0 * PI * i as f64 / p).sin()
                + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
        })
        .collect();
    for i in n_train + 220..n_train + 280 {
        full[i] = (8.0 * PI * i as f64 / p).sin();
    }
    let test = full.split_off(n_train);
    (full, test)
}

/// One traced fit+detect at 4 threads; returns the drained records.
fn traced_workload() -> Vec<obs::SpanRecord> {
    obs::set_enabled(true);
    let cfg = TriadConfig {
        epochs: 3,
        depth: 3,
        hidden: 12,
        batch: 4,
        merlin_step: 4,
        threads: 4,
        trace: true,
        ..TriadConfig::default()
    };
    let (train, test) = series();
    let fitted = TriAd::new(cfg).fit(&train).expect("fit");
    let _ = fitted.detect(&test);
    obs::flush_thread();
    let records = obs::take_records();
    obs::set_enabled(false);
    records
}

#[test]
fn exports_round_trip_validate_and_cover_all_stages() {
    let records = traced_workload();
    assert!(!records.is_empty(), "traced workload recorded nothing");

    // JSONL round-trip: parse back to exactly the recorded spans.
    let jsonl = obs::to_jsonl(&records);
    let parsed = obs::parse_jsonl(&jsonl).expect("parse TRACE.jsonl");
    assert_eq!(parsed.len(), records.len());
    for (r, p) in records.iter().zip(&parsed) {
        assert_eq!((r.id, r.parent, r.tid), (p.id, p.parent, p.tid));
        assert_eq!(r.name, p.name);
        assert_eq!((r.start_ns, r.end_ns), (p.start_ns, p.end_ns));
    }

    // Chrome round-trip: same span set at nanosecond resolution.
    let chrome = obs::to_chrome(&records);
    let chrome_parsed = obs::parse_chrome(&chrome).expect("parse Chrome trace");
    assert_eq!(chrome_parsed.len(), records.len());
    for (r, p) in records.iter().zip(&chrome_parsed) {
        assert_eq!(r.id, p.id, "span {} lost identity", r.id);
        assert_eq!((r.start_ns, r.end_ns), (p.start_ns, p.end_ns));
    }

    // Structural invariants: unique ids, resolvable parents, nesting, and
    // per-thread monotone completion times.
    obs::validate(&parsed, 0).expect("JSONL trace validates");
    obs::validate(&chrome_parsed, 0).expect("Chrome trace validates");

    // Parent links resolve (validate checks this too; assert it directly so
    // a future validate() relaxation cannot silently drop the guarantee).
    let ids: HashSet<u64> = parsed.iter().map(|s| s.id).collect();
    for s in &parsed {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} has orphan parent {}",
            s.id,
            s.parent
        );
    }

    // Timestamps monotone per thread, in file order.
    let mut last_end: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for s in &parsed {
        let prev = last_end.entry(s.tid).or_insert(0);
        assert!(
            s.end_ns >= *prev,
            "thread {} went backwards: {} after {}",
            s.tid,
            s.end_ns,
            prev
        );
        *prev = s.end_ns;
    }

    // All five pipeline stages individually attributable.
    for stage in STAGES {
        assert!(
            parsed.iter().any(|s| s.name == *stage),
            "missing pipeline stage {stage:?}"
        );
    }

    // The summary sees them too, and the detect root dominates its stages.
    let summary = obs::summarize(&parsed);
    for stage in STAGES {
        assert!(summary.stages.iter().any(|s| &s.name == stage));
    }
    assert!(summary.wall_ns > 0);
    assert!(summary.coverage > 0.0);
}
