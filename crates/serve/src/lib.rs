//! triad-serve: the concurrent model-serving subsystem.
//!
//! Four layers, bottom to top:
//!
//! - [`registry`] — named model slots over `triad-core::persist`: atomic
//!   save/reload of fitted models in a directory, an LRU cache of
//!   deserialized instances, and the threading story for the non-`Send`
//!   pipeline (`SendModel` + per-slot mutex).
//! - [`batch`] — groups concurrent `detect` requests per model under a
//!   `max_batch`/`max_delay` policy so the pipeline is locked once per batch
//!   and duplicate payloads run once.
//! - [`server`] — a `TcpListener` accept loop feeding a thread pool over a
//!   bounded channel; workers speak the [`proto`] line-delimited JSON
//!   protocol (`fit`, `detect`, `list`, `evict`, `stats`, `health`,
//!   `shutdown`) and graceful shutdown drains every in-flight request.
//! - [`metrics`] — lock-free counters/histograms behind the `stats` verb;
//!   the histogram type is shared with `triad-stream` and reports
//!   bucket-derived p50/p95/p99 quantiles.
//!
//! The server also hosts the online streaming layer: `stream.open`,
//! `stream.push`, `stream.poll`, `stream.close`, `stream.checkpoint`, and
//! `stream.list` route to a [`triad_stream::StreamManager`] whose shard
//! workers load models from the same directory as the registry; per-shard
//! streaming counters ride along in the `stats` verb.
//!
//! [`client`] is the matching blocking client used by `triad client` and the
//! integration tests; [`json`] is the dependency-free JSON layer whose
//! deterministic output makes bit-for-bit response comparison valid.

// `deny` rather than `forbid`: the one sanctioned exception is the
// `unsafe impl Send for SendModel` in `registry` (see its safety comment),
// which opts back in with a scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]

pub mod batch;
pub mod client;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod server;

pub use batch::{BatchPolicy, Batcher};
pub use client::Client;
pub use json::Value;
pub use metrics::{Histogram, HistogramSnapshot, Metrics};
pub use registry::{ModelInfo, ModelRegistry, SendModel};
pub use server::{start, ServeConfig, ServerHandle};
