//! LSTM autoencoder — the benchmark model of Kim et al. (AAAI 2022) that the
//! paper adopts for Table II and Table III, in both its **randomly
//! initialised** and **trained** variants.
//!
//! Architecture (faithful to the "simple architecture … single-layer LSTM"
//! description): a single-layer LSTM encoder reads the z-normalised window;
//! its final hidden state, repeated at every step, drives a single-layer LSTM
//! decoder; a linear head maps each decoder state back to one sample. The
//! anomaly score of a point is its squared reconstruction error, averaged
//! over the windows covering it.

use crate::common::{make_segmenter, scatter_pointwise, znorm_windows};
use crate::Detector;
use neuro::graph::{Graph, NodeId};
use neuro::layers::{Linear, Lstm};
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the LSTM-AE baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmAeConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub batch: usize,
    pub lr: f64,
    pub seed: u64,
}

impl Default for LstmAeConfig {
    fn default() -> Self {
        LstmAeConfig {
            hidden: 32,
            epochs: 10,
            batch: 8,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// The LSTM-AE detector. `trained = false` reproduces the randomly
/// initialised benchmark.
pub struct LstmAe {
    pub cfg: LstmAeConfig,
    pub trained: bool,
}

impl LstmAe {
    pub fn random(cfg: LstmAeConfig) -> Self {
        LstmAe {
            cfg,
            trained: false,
        }
    }

    pub fn trained(cfg: LstmAeConfig) -> Self {
        LstmAe { cfg, trained: true }
    }
}

struct Net {
    encoder: Lstm,
    decoder: Lstm,
    head: Linear,
}

impl Net {
    fn new(rng: &mut StdRng, hidden: usize) -> Self {
        Net {
            encoder: Lstm::new(rng, 1, hidden),
            decoder: Lstm::new(rng, hidden, hidden),
            head: Linear::new(rng, hidden, 1),
        }
    }

    fn params(&self) -> Vec<neuro::graph::Param> {
        let mut p = self.encoder.params();
        p.extend(self.decoder.params());
        p.extend(self.head.params());
        p
    }

    /// Reconstruct a `[B, L]` batch; returns the reconstruction node `[B, L]`.
    fn reconstruct(&self, g: &mut Graph, batch: &Tensor) -> NodeId {
        let (bsz, l) = (batch.shape()[0], batch.shape()[1]);
        let x = g.input(batch.clone());
        // Per-step inputs [B,1].
        let steps: Vec<NodeId> = (0..l).map(|t| g.slice_cols(x, t, t + 1)).collect();
        let enc_states = self.encoder.forward_seq(g, &steps);
        // lint-allow(no-unwrap): batches come from the segmenter, which never
        // yields a zero-length window, so the encoder always has ≥ 1 step.
        let code = *enc_states.last().expect("non-empty window");
        // Decoder consumes the code at every step (repeat-vector decoding).
        let dec_inputs = vec![code; l];
        let dec_states = self.decoder.forward_seq(g, &dec_inputs);
        let outs: Vec<NodeId> = dec_states
            .iter()
            .map(|&h| self.head.forward(g, h))
            .collect();
        let recon = g.concat_cols(&outs);
        debug_assert_eq!(g.value(recon).shape(), &[bsz, l]);
        recon
    }
}

impl Detector for LstmAe {
    fn name(&self) -> String {
        if self.trained {
            "LSTM-AE (Trained)".into()
        } else {
            "LSTM-AE (Random)".into()
        }
    }

    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let seg = make_segmenter(train);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let net = Net::new(&mut rng, self.cfg.hidden);

        if self.trained {
            let (_, slices) = znorm_windows(train, &seg);
            let mut opt = Adam::new(net.params(), self.cfg.lr as f32);
            let mut idxs: Vec<usize> = (0..slices.len()).collect();
            for _ in 0..self.cfg.epochs {
                idxs.shuffle(&mut rng);
                for chunk in idxs.chunks(self.cfg.batch) {
                    let batch = stack(&slices, chunk);
                    let mut g = Graph::new();
                    let recon = net.reconstruct(&mut g, &batch);
                    let target = g.input(batch);
                    let d = g.sub(recon, target);
                    let sq = g.square(d);
                    let loss = g.mean_all(sq);
                    if g.value(loss).item().is_finite() {
                        g.backward(loss);
                        opt.step();
                    } else {
                        opt.zero_grad();
                    }
                }
            }
        }

        // Score the test split.
        let (windows, slices) = znorm_windows(test, &seg);
        let mut per_window: Vec<Vec<f64>> = Vec::with_capacity(slices.len());
        for chunk_idx in (0..slices.len()).collect::<Vec<_>>().chunks(16) {
            let batch = stack(&slices, chunk_idx);
            let mut g = Graph::new();
            let recon = net.reconstruct(&mut g, &batch);
            let rv = g.value(recon);
            for (row, &wi) in chunk_idx.iter().enumerate() {
                let errs: Vec<f64> = slices[wi]
                    .iter()
                    .enumerate()
                    .map(|(t, &x)| {
                        let r = rv.at2(row, t) as f64;
                        (x - r) * (x - r)
                    })
                    .collect();
                per_window.push(errs);
            }
        }
        scatter_pointwise(&windows, &per_window, test.len())
    }
}

fn stack(slices: &[Vec<f64>], idxs: &[usize]) -> Tensor {
    let l = slices[idxs[0]].len();
    let mut data = Vec::with_capacity(idxs.len() * l);
    for &i in idxs {
        data.extend(slices[i].iter().map(|&v| v as f32));
    }
    Tensor::from_vec(&[idxs.len(), l], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn quick() -> LstmAeConfig {
        LstmAeConfig {
            hidden: 12,
            epochs: 6,
            batch: 4,
            ..Default::default()
        }
    }

    fn dataset() -> (Vec<f64>, Vec<f64>, std::ops::Range<usize>) {
        let p = 25.0;
        let full: Vec<f64> = (0..900)
            .map(|i| (2.0 * PI * i as f64 / p).sin() + 0.02 * ((i % 7) as f64))
            .collect();
        let mut test = full[500..].to_vec();
        for i in 200..240 {
            test[i] = (8.0 * PI * i as f64 / p).sin() * 1.2;
        }
        (full[..500].to_vec(), test, 200..240)
    }

    #[test]
    fn scores_have_test_length_and_are_finite() {
        let (train, test, _) = dataset();
        for mut det in [LstmAe::random(quick()), LstmAe::trained(quick())] {
            let s = det.score(&train, &test);
            assert_eq!(s.len(), test.len());
            assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn trained_model_scores_anomaly_above_normal() {
        let (train, test, anom) = dataset();
        let s = LstmAe::trained(quick()).score(&train, &test);
        let in_mean: f64 = s[anom.clone()].iter().sum::<f64>() / anom.len() as f64;
        let out: Vec<f64> = s
            .iter()
            .enumerate()
            .filter(|(i, _)| !anom.contains(i))
            .map(|(_, &v)| v)
            .collect();
        let out_mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!(
            in_mean > out_mean * 1.2,
            "anomaly {in_mean} vs normal {out_mean}"
        );
    }

    #[test]
    fn random_variant_is_deterministic_and_untrained() {
        let (train, test, _) = dataset();
        let a = LstmAe::random(quick()).score(&train, &test);
        let b = LstmAe::random(quick()).score(&train, &test);
        assert_eq!(a, b);
    }

    #[test]
    fn names() {
        assert_eq!(LstmAe::random(quick()).name(), "LSTM-AE (Random)");
        assert_eq!(LstmAe::trained(quick()).name(), "LSTM-AE (Trained)");
    }
}
