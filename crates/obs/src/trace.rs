//! Span recording: the enabled gate, id allocation, per-thread buffers and
//! the global collector.
//!
//! The writer path is lock-free: a finished span goes into a bounded
//! `thread_local!` buffer. The buffer drains into the global collector
//! (one short `Mutex` push) only when the thread's span stack empties —
//! i.e. between top-level units of work — so no lock is ever taken while a
//! span is open. If one unit of work overflows the buffer, the newest
//! records are dropped and counted; [`take_records`] re-roots any span
//! whose ancestor was dropped so exported traces never contain orphan
//! parent links.

use crate::clock;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// One finished span. `parent == 0` means a root span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    /// Logical thread id (allocated per thread on first use, dense from 1).
    pub tid: u64,
    pub name: &'static str,
    /// Nanoseconds since the shared clock epoch ([`crate::clock::now_ns`]).
    pub start_ns: u64,
    pub end_ns: u64,
    pub fields: Vec<(&'static str, String)>,
}

// ------------------------------------------------------------- enabled gate

/// Tri-state so the steady-state check is a single relaxed load:
/// 0 = uninitialised, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Is tracing on? The disabled path is exactly this one relaxed load
/// (after a one-time lazy read of `TRIAD_TRACE`).
#[inline]
pub fn enabled() -> bool {
    // relaxed-ok: the gate is an independent flag; span correctness never
    // depends on ordering against other memory, only on whether we record.
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("TRIAD_TRACE")
        .map(|v| !matches!(v.as_str(), "" | "0" | "false" | "off"))
        .unwrap_or(false);
    // relaxed-ok: idempotent lazy init; racing threads store the same value.
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Force tracing on or off, overriding `TRIAD_TRACE`.
pub fn set_enabled(on: bool) {
    // relaxed-ok: independent flag, see `enabled`.
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Apply `TriadConfig::trace`: `true` force-enables; `false` defers to the
/// environment (so `TRIAD_TRACE=1` still works with a default config).
pub fn enable_from_config(trace: bool) {
    if trace {
        set_enabled(true);
    }
}

// ---------------------------------------------------------------- counters

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn alloc_id() -> u64 {
    // relaxed-ok: unique-id allocation; only uniqueness matters, not order.
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Total spans recorded into thread buffers since process start.
pub fn spans_recorded() -> u64 {
    // relaxed-ok: monitoring read; staleness is fine.
    RECORDED.load(Ordering::Relaxed)
}

/// Total spans dropped (buffer full or reentrant recording) since start.
pub fn spans_dropped() -> u64 {
    // relaxed-ok: monitoring read; staleness is fine.
    DROPPED.load(Ordering::Relaxed)
}

// ------------------------------------------------------ per-thread buffers

/// Per-thread buffer capacity; beyond this, new records are dropped (and
/// counted) until the next drain at quiescence. Bounds memory at roughly
/// 100 bytes × this per live thread.
const RING_CAPACITY: usize = 16_384;

struct ThreadBuf {
    tid: u64,
    records: Vec<SpanRecord>,
    /// Open-span stack; `last()` is the implicit parent for new spans.
    stack: Vec<u64>,
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        // relaxed-ok: unique-id allocation; only uniqueness matters.
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        records: Vec::new(),
        stack: Vec::new(),
    });
}

/// The global collector. Only ever locked for short, I/O-free pushes and
/// the final drain in [`take_records`].
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

fn push_record(buf: &mut ThreadBuf, rec: SpanRecord) {
    if buf.records.len() >= RING_CAPACITY {
        // relaxed-ok: monotone drop tally; monitoring only.
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.records.push(rec);
    // relaxed-ok: monotone tally; monitoring only.
    RECORDED.fetch_add(1, Ordering::Relaxed);
}

/// Drain this thread's buffer into the global collector. Called
/// automatically when the span stack empties; long-lived threads that
/// never close a top-level span may call it explicitly.
pub fn flush_thread() {
    let pending = TLS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => std::mem::take(&mut buf.records),
        Err(_) => Vec::new(),
    });
    if pending.is_empty() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.extend(pending);
}

/// Drain everything flushed so far, across all threads, and re-root spans
/// whose ancestors were dropped (so parent links always resolve). Spans
/// still open, and records buffered on threads that have not flushed, are
/// not included — call after the traced workload has fully quiesced.
pub fn take_records() -> Vec<SpanRecord> {
    flush_thread();
    let mut recs = {
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *sink)
    };
    let ids: HashSet<u64> = recs.iter().map(|r| r.id).collect();
    for r in &mut recs {
        if r.parent != 0 && !ids.contains(&r.parent) {
            r.parent = 0;
        }
    }
    recs
}

// -------------------------------------------------------------- span guard

/// RAII handle for an open span; records on drop. `id == 0` marks the
/// disabled no-op variant.
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// This span's id, or 0 when tracing is disabled.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a key/value field. No-op (and no allocation) when disabled.
    pub fn add_field(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if self.id != 0 {
            self.fields.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            tid: 0, // filled from the thread buffer below
            name: self.name,
            start_ns: self.start_ns,
            end_ns: clock::now_ns(),
            fields: std::mem::take(&mut self.fields),
        };
        finish_span(self.id, rec);
    }
}

fn finish_span(id: u64, mut rec: SpanRecord) {
    let flush_now = TLS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            rec.tid = buf.tid;
            // Robust against out-of-order drops: remove our own entry
            // wherever it sits, not just the top.
            if let Some(pos) = buf.stack.iter().rposition(|&x| x == id) {
                buf.stack.remove(pos);
            }
            push_record(&mut buf, rec);
            buf.stack.is_empty()
        }
        Err(_) => {
            // relaxed-ok: monotone drop tally; monitoring only.
            DROPPED.fetch_add(1, Ordering::Relaxed);
            false
        }
    });
    if flush_now {
        flush_thread();
    }
}

/// Open a span parented to the current thread's innermost open span.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            parent: 0,
            name,
            start_ns: 0,
            fields: Vec::new(),
        };
    }
    let start_ns = clock::now_ns();
    let id = alloc_id();
    let parent = TLS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            let p = buf.stack.last().copied().unwrap_or(0);
            buf.stack.push(id);
            p
        }
        Err(_) => 0,
    });
    SpanGuard {
        id,
        parent,
        name,
        start_ns,
        fields: Vec::new(),
    }
}

/// Open a span with an explicit parent id — for work handed to another
/// thread (parallel workers, batch executors), where the thread-local stack
/// cannot see the logical parent. The span still joins this thread's stack
/// so its own children nest under it.
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            parent: 0,
            name,
            start_ns: 0,
            fields: Vec::new(),
        };
    }
    let start_ns = clock::now_ns();
    let id = alloc_id();
    TLS.with(|cell| {
        if let Ok(mut buf) = cell.try_borrow_mut() {
            buf.stack.push(id);
        }
    });
    SpanGuard {
        id,
        parent,
        name,
        start_ns,
        fields: Vec::new(),
    }
}

/// The innermost open span on this thread (0 if none) — pass this across
/// threads to [`span_with_parent`].
pub fn current_span_id() -> u64 {
    TLS.with(|cell| match cell.try_borrow() {
        Ok(buf) => buf.stack.last().copied().unwrap_or(0),
        Err(_) => 0,
    })
}

/// Record an already-measured interval as a span (parented to the current
/// open span). For code that measured `start_ns`/`end_ns` itself — e.g.
/// per-window scoring where a guard per window would be wasteful unless a
/// window actually completed. Returns the span id (0 when disabled).
pub fn record_span(
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    fields: Vec<(&'static str, String)>,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let id = alloc_id();
    let flush_now = TLS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            let rec = SpanRecord {
                id,
                parent: buf.stack.last().copied().unwrap_or(0),
                tid: buf.tid,
                name,
                start_ns,
                end_ns,
                fields,
            };
            push_record(&mut buf, rec);
            buf.stack.is_empty()
        }
        Err(_) => {
            // relaxed-ok: monotone drop tally; monitoring only.
            DROPPED.fetch_add(1, Ordering::Relaxed);
            false
        }
    });
    if flush_now {
        flush_thread();
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recording tests share global state (the gate, the sink); serialise
    /// them and drain the sink at entry so parallel test threads cannot
    /// interleave records.
    fn lock_and_reset() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let _ = take_records();
        g
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _g = lock_and_reset();
        set_enabled(false);
        let before = spans_recorded();
        {
            let mut s = span("quiet");
            s.add_field("k", 1);
            assert_eq!(s.id(), 0);
        }
        assert_eq!(record_span("manual", 1, 2, Vec::new()), 0);
        assert_eq!(spans_recorded(), before);
        assert!(take_records().is_empty());
        set_enabled(true);
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let _g = lock_and_reset();
        {
            let outer = span("outer");
            let outer_id = outer.id();
            {
                let inner = span("inner");
                assert_eq!(current_span_id(), inner.id());
            }
            assert_eq!(current_span_id(), outer_id);
        }
        let recs = take_records();
        let outer = recs.iter().find(|r| r.name == "outer").expect("outer");
        let inner = recs.iter().find(|r| r.name == "inner").expect("inner");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _g = lock_and_reset();
        let region_id = {
            let region = span("region");
            let rid = region.id();
            let t = std::thread::Builder::new()
                .name("obs-test-worker".into())
                .spawn(move || {
                    let w = span_with_parent("worker", rid);
                    drop(w);
                    flush_thread();
                })
                .expect("spawn");
            t.join().expect("join");
            rid
        };
        let recs = take_records();
        let worker = recs.iter().find(|r| r.name == "worker").expect("worker");
        let region = recs.iter().find(|r| r.name == "region").expect("region");
        assert_eq!(worker.parent, region_id);
        assert_ne!(worker.tid, region.tid);
    }

    #[test]
    fn manual_record_parents_to_open_span_and_keeps_fields() {
        let _g = lock_and_reset();
        let parent_id = {
            let p = span("ingest");
            let id = record_span("score", 10, 20, vec![("stream", "s1".to_string())]);
            assert_ne!(id, 0);
            p.id()
        };
        let recs = take_records();
        let score = recs.iter().find(|r| r.name == "score").expect("score");
        assert_eq!(score.parent, parent_id);
        assert_eq!(score.start_ns, 10);
        assert_eq!(score.end_ns, 20);
        assert_eq!(score.fields, vec![("stream", "s1".to_string())]);
    }

    #[test]
    fn overflow_drops_newest_and_take_reroots_orphans() {
        let _g = lock_and_reset();
        {
            let _outer = span("outer-of-flood");
            // Flood the buffer past capacity while the stack is non-empty so
            // nothing drains early; the tail (including, eventually, the
            // outer span itself) is dropped and counted.
            let dropped_before = spans_dropped();
            for _ in 0..(RING_CAPACITY + 10) {
                let _ = record_span("flood", 0, 1, Vec::new());
            }
            assert!(spans_dropped() > dropped_before);
        }
        let recs = take_records();
        assert!(recs.len() <= RING_CAPACITY);
        // Every parent link in the drained set resolves (orphans re-rooted).
        let ids: HashSet<u64> = recs.iter().map(|r| r.id).collect();
        assert!(recs
            .iter()
            .all(|r| r.parent == 0 || ids.contains(&r.parent)));
    }
}
