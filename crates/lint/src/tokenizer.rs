//! A hand-rolled Rust tokenizer.
//!
//! `syn` is not available offline, and the lint rules only need a faithful
//! token stream — not a parse tree. The lexer works directly on bytes so it
//! is total: *any* input (including invalid UTF-8) tokenizes without
//! panicking, and the concatenation of all token spans reproduces the input
//! byte-for-byte (the proptest in this module pins both properties).
//!
//! What it gets right, because the rules depend on it:
//! * line `//` and nested block `/* /* */ */` comments;
//! * string literals with escapes, byte strings `b"…"`, raw strings
//!   `r"…"` / `r#"…"#` (any hash count), raw byte strings `br#"…"#`;
//! * char literals (`'a'`, `'\n'`, `'\''`) vs. lifetimes (`'static`);
//! * identifiers, numbers (including `1.5e-3` and `0xFF`, without eating
//!   `..` in `0..10` or the method call in `1.max(2)`).
//!
//! Anything unrecognized becomes a one-byte [`TokKind::Other`] token, which
//! keeps the lexer total without hiding bytes from the round-trip.

/// Token classification. Rules generally work on "significant" tokens
/// (everything except whitespace and comments); suppression scanning works
/// on the comment tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Run of whitespace bytes.
    Ws,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting honoured; unterminated runs to EOF.
    BlockComment,
    /// Any string literal: `"…"`, `b"…"`, `r#"…"#`, `br"…"`; unterminated
    /// runs to EOF.
    Str,
    /// Char literal `'x'` (including escapes).
    Char,
    /// Lifetime such as `'a` (no closing quote).
    Lifetime,
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Num,
    /// Single punctuation byte (`.` `(` `::` arrives as two `:`).
    Punct,
    /// Any byte the lexer has no rule for (e.g. raw UTF-8 continuation
    /// bytes outside literals).
    Other,
}

/// One token: classification plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's bytes within `src`.
    pub fn bytes<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        &src[self.start..self.end]
    }

    /// The token's text, lossily decoded (token spans can hold any bytes).
    pub fn text<'a>(&self, src: &'a [u8]) -> std::borrow::Cow<'a, str> {
        String::from_utf8_lossy(self.bytes(src))
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize `src` completely. Total: never panics, and the returned tokens
/// tile `0..src.len()` contiguously in order.
pub fn tokenize(src: &[u8]) -> Vec<Tok> {
    Lexer {
        src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            out.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    fn next_kind(&mut self) -> TokKind {
        let b = self.src[self.pos];

        if b.is_ascii_whitespace() {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.bump();
            }
            return TokKind::Ws;
        }

        if b == b'/' {
            match self.peek(1) {
                Some(b'/') => return self.line_comment(),
                Some(b'*') => return self.block_comment(),
                _ => {
                    self.bump();
                    return TokKind::Punct;
                }
            }
        }

        // Raw / byte string prefixes. Checked before plain identifiers so
        // that `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and `b'…'` lex as
        // literals rather than an ident followed by a string.
        if b == b'r' {
            if let Some(n) = self.raw_string_lookahead(1) {
                self.bump_n(n);
                return TokKind::Str;
            }
        }
        if b == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.bump(); // b
                    return self.quoted_string();
                }
                Some(b'\'') => {
                    self.bump(); // b
                    return self.char_or_lifetime();
                }
                Some(b'r') => {
                    if let Some(n) = self.raw_string_lookahead(2) {
                        self.bump_n(n);
                        return TokKind::Str;
                    }
                }
                _ => {}
            }
        }

        if is_ident_start(b) {
            while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                self.bump();
            }
            return TokKind::Ident;
        }

        if b.is_ascii_digit() {
            return self.number();
        }

        if b == b'"' {
            return self.quoted_string();
        }

        if b == b'\'' {
            return self.char_or_lifetime();
        }

        if b.is_ascii_punctuation() {
            self.bump();
            return TokKind::Punct;
        }

        // Unknown byte (UTF-8 continuation outside a literal, control
        // characters, …): one-byte token keeps the lexer total.
        self.bump();
        TokKind::Other
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.bump();
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.bump_n(2); // consume /*
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    /// From `self.pos`, does `offset` hashes-then-quote start a raw string
    /// (`r`/`br` already at positions before `offset`)? Returns the total
    /// byte length of the raw string token if so.
    fn raw_string_lookahead(&self, offset: usize) -> Option<usize> {
        let mut i = offset;
        let mut hashes = 0usize;
        while self.peek(i) == Some(b'#') {
            hashes += 1;
            i += 1;
        }
        if self.peek(i) != Some(b'"') {
            return None;
        }
        i += 1;
        // Scan for the closing quote followed by `hashes` hashes.
        while let Some(b) = self.peek(i) {
            if b == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(i + 1 + h) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    return Some(i + 1 + hashes);
                }
            }
            i += 1;
        }
        // Unterminated raw string: the whole tail is the token.
        Some(self.src.len() - self.pos)
    }

    /// A `"`-delimited string starting at `self.pos`; handles `\` escapes
    /// and runs to EOF when unterminated.
    fn quoted_string(&mut self) -> TokKind {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokKind::Str
    }

    /// Disambiguate `'a'` / `'\n'` (char) from `'static` (lifetime),
    /// starting at the `'`.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.bump(); // '
        match self.src.get(self.pos).copied() {
            Some(b'\\') => {
                // Escaped char: consume up to the closing quote.
                self.bump_n(2);
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.bump();
                }
                if self.pos < self.src.len() {
                    self.bump();
                }
                TokKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                if self.peek(1) == Some(b'\'') {
                    self.bump_n(2); // char like 'a'
                    TokKind::Char
                } else {
                    // Lifetime: consume the identifier, no closing quote.
                    while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                        self.bump();
                    }
                    TokKind::Lifetime
                }
            }
            Some(_) => {
                // Punctuation or a multi-byte UTF-8 char: scan a short
                // window for a closing quote, else treat the `'` alone.
                for w in 1..=4usize {
                    if self.peek(w) == Some(b'\'') {
                        self.bump_n(w + 1);
                        return TokKind::Char;
                    }
                }
                TokKind::Punct
            }
            None => TokKind::Punct,
        }
    }

    fn number(&mut self) -> TokKind {
        self.bump(); // leading digit
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if is_ident_continue(b) {
                // Exponent sign: `1e-5` / `2.5E+10`.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump_n(2);
                    continue;
                }
                self.bump();
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Decimal point, but not the `..` of a range and not the
                // `.method()` of a call.
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Num
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind != TokKind::Ws)
            .map(|t| (t.kind, t.text(src.as_bytes()).into_owned()))
            .collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let ks = kinds("let x = 42 + y_2;");
        assert_eq!(
            ks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Num, "42".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Ident, "y_2".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let ks = kinds("0..10");
        assert_eq!(ks[0], (TokKind::Num, "0".into()));
        assert_eq!(ks[1], (TokKind::Punct, ".".into()));
        assert_eq!(ks[2], (TokKind::Punct, ".".into()));
        assert_eq!(ks[3], (TokKind::Num, "10".into()));

        let ks = kinds("1.5e-3 1.max(2) 0xFF_u32");
        assert_eq!(ks[0], (TokKind::Num, "1.5e-3".into()));
        assert_eq!(ks[1], (TokKind::Num, "1".into()));
        assert_eq!(ks[2], (TokKind::Punct, ".".into()));
        assert_eq!(ks[3], (TokKind::Ident, "max".into()));
        assert_eq!(ks.last().map(|k| k.1.clone()), Some("0xFF_u32".into()));
    }

    #[test]
    fn comments_line_and_nested_block() {
        let src = "a // trailing\nb /* x /* nested */ y */ c";
        let ks = kinds(src);
        assert_eq!(ks[0], (TokKind::Ident, "a".into()));
        assert_eq!(ks[1], (TokKind::LineComment, "// trailing".into()));
        assert_eq!(ks[2], (TokKind::Ident, "b".into()));
        assert_eq!(
            ks[3],
            (TokKind::BlockComment, "/* x /* nested */ y */".into())
        );
        assert_eq!(ks[4], (TokKind::Ident, "c".into()));
    }

    #[test]
    fn strings_plain_raw_byte() {
        let src = r####"let a = "x \" y"; let b = r#"raw "inner" "#; let c = b"bytes"; let d = br##"rb"##;"####;
        let strs: Vec<String> = tokenize(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text(src.as_bytes()).into_owned())
            .collect();
        assert_eq!(
            strs,
            vec![
                "\"x \\\" y\"".to_string(),
                "r#\"raw \"inner\" \"#".to_string(),
                "b\"bytes\"".to_string(),
                "br##\"rb\"##".to_string(),
            ]
        );
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        // `unwrap()` inside a string or comment must not surface as idents.
        let src = r#"let msg = "call .unwrap() now"; // or .unwrap() here"#;
        let ids: Vec<String> = tokenize(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src.as_bytes()).into_owned())
            .collect();
        assert_eq!(ids, vec!["let", "msg"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let ks = kinds(r"'a' '\n' '\'' 'static <'a, 'b>");
        let pairs: Vec<(TokKind, String)> = ks
            .into_iter()
            .filter(|(k, _)| matches!(k, TokKind::Char | TokKind::Lifetime))
            .collect();
        assert_eq!(
            pairs,
            vec![
                (TokKind::Char, "'a'".into()),
                (TokKind::Char, "'\\n'".into()),
                (TokKind::Char, "'\\''".into()),
                (TokKind::Lifetime, "'static".into()),
                (TokKind::Lifetime, "'a".into()),
                (TokKind::Lifetime, "'b".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "a\nbb\n\nccc";
        let toks: Vec<(String, u32)> = tokenize(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text(src.as_bytes()).into_owned(), t.line))
            .collect();
        assert_eq!(
            toks,
            vec![("a".into(), 1), ("bb".into(), 2), ("ccc".into(), 4)]
        );
    }

    #[test]
    fn multiline_string_advances_line_counter() {
        let src = "let s = \"one\ntwo\";\nnext";
        let next = tokenize(src.as_bytes())
            .into_iter()
            .find(|t| t.text(src.as_bytes()) == "next")
            .expect("token");
        assert_eq!(next.line, 3);
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "b\"never",
            "'x",
        ] {
            let toks = tokenize(src.as_bytes());
            assert_eq!(toks.last().expect("tokens").end, src.len(), "{src:?}");
        }
    }

    fn round_trips(bytes: &[u8]) {
        let toks = tokenize(bytes);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "gap or overlap at byte {pos}");
            assert!(t.end > t.start, "empty token at byte {pos}");
            pos = t.end;
        }
        assert_eq!(pos, bytes.len(), "tokens do not cover the input");
    }

    #[test]
    fn round_trip_on_this_source_file() {
        round_trips(include_bytes!("tokenizer.rs"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        // The tokenizer is total: arbitrary byte input never panics, and
        // the token spans tile the input exactly.
        #[test]
        fn tokenizer_never_panics_and_round_trips(bytes in prop::collection::vec(0u8..=255, 0..512)) {
            round_trips(&bytes);
        }

        // Skewing the distribution toward Rust-ish punctuation exercises
        // the literal/comment state machines far harder than uniform bytes.
        #[test]
        fn tokenizer_total_on_quote_heavy_input(raw in prop::collection::vec(0u8..=255, 0..256)) {
            const ALPHABET: &[u8] = b"\"'#r/b*\\\n a0_!";
            let bytes: Vec<u8> = raw.iter().map(|&b| ALPHABET[b as usize % ALPHABET.len()]).collect();
            round_trips(&bytes);
        }
    }
}
