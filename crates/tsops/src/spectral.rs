//! Handcrafted frequency-domain features (paper Table I).
//!
//! For each harmonic `X[k]` of a window the paper uses three features:
//!
//! | feature | definition |
//! |---|---|
//! | spectral amplitude | `A(X[k]) = √(Re² + Im²)` |
//! | spectral phase     | `φ(X[k]) = atan2(Im, Re)` |
//! | spectral power     | `P(X[k]) = Re² + Im²` |
//!
//! TriAD feeds the three series as a 3-channel input to the frequency encoder,
//! length-matched to the temporal window (`L` bins: the full two-sided
//! spectrum, which for real input carries the mirrored upper half — keeping it
//! preserves the `L × C` shape contract of Sec. III-B).

use crate::fft::{rfft, Complex};

/// The three Table-I feature series of one window, each of the same length as
/// the input window.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralFeatures {
    pub amplitude: Vec<f64>,
    pub phase: Vec<f64>,
    pub power: Vec<f64>,
}

impl SpectralFeatures {
    /// Number of frequency bins (equals the input window length).
    pub fn len(&self) -> usize {
        self.amplitude.len()
    }

    pub fn is_empty(&self) -> bool {
        self.amplitude.is_empty()
    }

    /// Stack into a `3 × L` channel-major matrix (the layout the frequency
    /// encoder consumes).
    pub fn to_channels(&self) -> [&[f64]; 3] {
        [&self.amplitude, &self.phase, &self.power]
    }
}

/// Compute amplitude/phase/power for every bin of the window's DFT.
pub fn spectral_features(window: &[f64]) -> SpectralFeatures {
    let spec = rfft(window);
    features_of_spectrum(&spec)
}

/// Same as [`spectral_features`] but over an already-computed spectrum
/// (lets callers share one FFT across feature sets).
pub fn features_of_spectrum(spec: &[Complex]) -> SpectralFeatures {
    let n = spec.len();
    let mut amplitude = Vec::with_capacity(n);
    let mut phase = Vec::with_capacity(n);
    let mut power = Vec::with_capacity(n);
    for z in spec {
        let p = z.norm_sqr();
        amplitude.push(p.sqrt());
        phase.push(z.arg());
        power.push(p);
    }
    SpectralFeatures {
        amplitude,
        phase,
        power,
    }
}

/// Index of the dominant non-DC harmonic in the lower half-spectrum.
///
/// Used for period estimation: a pure periodic signal of period `p` sampled
/// over `n` points concentrates energy at bin `k ≈ n/p`.
pub fn dominant_harmonic(window: &[f64]) -> Option<usize> {
    let n = window.len();
    if n < 4 {
        return None;
    }
    let spec = rfft(window);
    let half = n / 2;
    (1..=half)
        .max_by(|&a, &b| spec[a].norm_sqr().total_cmp(&spec[b].norm_sqr()))
        .filter(|&k| spec[k].norm_sqr() > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn amplitude_is_sqrt_power() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
        let f = spectral_features(&x);
        for k in 0..f.len() {
            assert!((f.amplitude[k] * f.amplitude[k] - f.power[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_lengths_match_window() {
        let x = vec![1.0; 33];
        let f = spectral_features(&x);
        assert_eq!(f.len(), 33);
        assert_eq!(f.phase.len(), 33);
        assert_eq!(f.power.len(), 33);
    }

    #[test]
    fn dominant_harmonic_of_sine() {
        let n = 200;
        let k0 = 8;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        assert_eq!(dominant_harmonic(&x), Some(k0));
    }

    #[test]
    fn dominant_harmonic_ignores_dc() {
        // Big DC offset must not win.
        let n = 64;
        let k0 = 3;
        let x: Vec<f64> = (0..n)
            .map(|i| 100.0 + (2.0 * PI * k0 as f64 * i as f64 / n as f64).sin())
            .collect();
        assert_eq!(dominant_harmonic(&x), Some(k0));
    }

    #[test]
    fn dominant_harmonic_none_for_tiny_or_flat() {
        assert_eq!(dominant_harmonic(&[1.0, 2.0]), None);
        assert_eq!(dominant_harmonic(&vec![5.0; 32]), None);
    }

    #[test]
    fn phase_of_cosine_is_zero_at_peak_bin() {
        let n = 128;
        let k0 = 4;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let f = spectral_features(&x);
        assert!(f.phase[k0].abs() < 1e-6, "phase {}", f.phase[k0]);
    }
}
