//! Stress generator: series that *violate* the UCR contract.
//!
//! TriAD's design assumes exactly one anomalous event per test split
//! (Sec. III-D: "Given that each test set contains a single anomalous
//! event"). Robustness work needs data outside that assumption: multiple
//! events, events of mixed kinds, or no event at all. This module produces
//! such series for the integration tests and for users evaluating how the
//! pipeline degrades off-contract.

use crate::anomaly::{inject, AnomalyKind};
use crate::oneliner::LabelledSeries;
use crate::signal::{SignalFamily, SignalSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a multi-event stress series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressConfig {
    /// Number of anomalous events in the test split (0 = clean test data).
    pub events: usize,
    /// Event length range (samples).
    pub event_len: (usize, usize),
    /// Training length in periods.
    pub train_periods: usize,
    /// Test length in periods.
    pub test_periods: usize,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            events: 3,
            event_len: (20, 80),
            train_periods: 30,
            test_periods: 40,
        }
    }
}

/// Generate a multi-event series. Events cycle through the anomaly families
/// and are spaced at least one period apart.
pub fn generate_stress(seed: u64, cfg: &StressConfig) -> LabelledSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let family = SignalFamily::ALL[(seed as usize) % SignalFamily::ALL.len()];
    let spec = SignalSpec::random(&mut rng, family);
    let p = spec.period;
    let train_len = p * cfg.train_periods;
    let test_len = p * cfg.test_periods;
    let total = train_len + test_len;
    let mut series = spec.generate(&mut rng, total);
    let local_std = tsops::stats::std_dev(&series[..train_len]);

    let mut events = Vec::with_capacity(cfg.events);
    if cfg.events > 0 {
        let slot = test_len / cfg.events;
        for k in 0..cfg.events {
            let kind = AnomalyKind::ALL[k % AnomalyKind::ALL.len()];
            let (lo, hi) = cfg.event_len;
            let len = rng
                .random_range(lo..=hi.max(lo))
                .min(slot.saturating_sub(p).max(4));
            let base = train_len + k * slot + p / 2;
            let give = slot.saturating_sub(len + p).max(1);
            let start = base + rng.random_range(0..give);
            let range = start..(start + len).min(total);
            if range.is_empty() {
                continue;
            }
            inject(&mut rng, &mut series, range.clone(), kind, local_std, p);
            events.push(range);
        }
    }
    LabelledSeries {
        name: format!("stress_{seed}_{}ev", cfg.events),
        series,
        train_end: train_len,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_event_count() {
        let s = generate_stress(3, &StressConfig::default());
        assert_eq!(s.events.len(), 3);
        // Events are disjoint and inside the test split.
        for (i, e) in s.events.iter().enumerate() {
            assert!(e.start >= s.train_end);
            assert!(e.end <= s.series.len());
            for other in &s.events[i + 1..] {
                assert!(e.end <= other.start || other.end <= e.start, "overlap");
            }
        }
    }

    #[test]
    fn zero_events_is_clean() {
        let cfg = StressConfig {
            events: 0,
            ..Default::default()
        };
        let s = generate_stress(1, &cfg);
        assert!(s.events.is_empty());
        assert!(s.test_labels().iter().all(|&b| !b));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = StressConfig::default();
        assert_eq!(generate_stress(9, &cfg), generate_stress(9, &cfg));
        assert_ne!(
            generate_stress(9, &cfg).series,
            generate_stress(10, &cfg).series
        );
    }

    #[test]
    fn labels_cover_all_events() {
        let s = generate_stress(5, &StressConfig::default());
        let labels = s.test_labels();
        let expected: usize = s.events.iter().map(|e| e.len()).sum();
        assert_eq!(labels.iter().filter(|&&b| b).count(), expected);
    }
}
