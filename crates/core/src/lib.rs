//! # TriAD — self-supervised tri-domain time-series anomaly detection
//!
//! Reproduction of *"Unraveling the 'Anomaly' in Time Series Anomaly
//! Detection: A Self-supervised Tri-domain Solution"* (Sun et al., ICDE 2024).
//!
//! TriAD detects the single anomalous event in a univariate periodic series
//! without any anomaly labels:
//!
//! 1. **Features** ([`features`]) — each window is viewed in three domains:
//!    the raw *temporal* shape, the *frequency* spectrum (amplitude / phase /
//!    power, Table I), and the *residual* left after removing the periodic
//!    component.
//! 2. **Encoders** ([`encoder`]) — one dilated-convolution residual stack per
//!    domain (6 blocks, dilation doubling, Sec. III-B) followed by a shared
//!    two-layer projection head producing one embedding `r ∈ ℝ^L` per window.
//! 3. **Contrastive training** ([`loss`], [`train`]) — windows are paired
//!    with anomaly-simulating augmentations; the intra-domain loss (Eq. 5)
//!    pulls originals together and pushes augmentations away, the
//!    inter-domain loss (Eq. 6) keeps the three domains' views distinct;
//!    total loss is their `α`-blend (Eq. 7).
//! 4. **Detection** ([`detect`]) — per-domain window-similarity ranking
//!    nominates up to three suspicious windows (`Z = 1` each); comparison
//!    against the all-normal training split narrows to one; MERLIN probes a
//!    padded neighbourhood for variable-length discords; point-wise votes
//!    (Eq. 8) thresholded at the positive-vote mean give the final labels,
//!    with the Sec. IV-G fallback when the discord search disagrees with the
//!    selected window.
//!
//! The end-to-end API lives in [`pipeline`]:
//!
//! ```
//! use triad_core::pipeline::TriAd;
//! use triad_core::config::TriadConfig;
//!
//! // A toy periodic series with a frequency-shift anomaly in the test half.
//! let n = 1200usize;
//! let mut series: Vec<f64> = (0..n)
//!     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 40.0).sin())
//!     .collect();
//! for i in 900..960 {
//!     series[i] = (4.0 * std::f64::consts::PI * i as f64 / 40.0).sin();
//! }
//! let (train, test) = series.split_at(600);
//!
//! let mut cfg = TriadConfig::default();
//! cfg.epochs = 2; // doc-test budget; use the default 20 in experiments
//! let fitted = TriAd::new(cfg).fit(train).expect("trainable series");
//! let det = fitted.detect(test);
//! assert_eq!(det.votes.len(), test.len());
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod detect;
pub mod encoder;
pub mod error;
pub mod features;
pub mod loss;
pub mod persist;
pub mod pipeline;
pub mod train;

pub use config::TriadConfig;
pub use detect::{detect_from_rankings, DomainRanking, OnlineRanker, TriadDetection};
pub use error::{DetectError, PersistError};
pub use pipeline::{FittedTriad, TriAd};
pub use tsops::NumericMode;

/// The three feature domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    Temporal,
    Frequency,
    Residual,
}

impl Domain {
    pub const ALL: [Domain; 3] = [Domain::Temporal, Domain::Frequency, Domain::Residual];

    pub fn name(&self) -> &'static str {
        match self {
            Domain::Temporal => "temporal",
            Domain::Frequency => "frequency",
            Domain::Residual => "residual",
        }
    }

    /// Input channel count of this domain's encoder (Sec. III-B: one channel
    /// for temporal and residual, three for frequency).
    pub fn channels(&self) -> usize {
        match self {
            Domain::Frequency => 3,
            _ => 1,
        }
    }
}
