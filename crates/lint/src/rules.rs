//! The rule catalog.
//!
//! The original rules are token-stream pattern matchers — written to keep
//! false positives low enough that a `lint-allow` on the remainder is a
//! reasonable ask. Four families:
//!
//! * **numeric safety** — `float-cmp`, `lossy-cast`, `float-div-acc`
//! * **panic hygiene** — `no-unwrap`, `no-panic`, `index-stampede`
//! * **concurrency** — `relaxed-ok`, `no-static-mut`, `lock-across-io`
//! * **determinism** (syntax-aware, in [`crate::determinism`]) —
//!   `nondet-iter`, `float-reduce-order`, `ambient-entropy`,
//!   `shadowed-threads`
//!
//! plus `suppress-reason`, which audits the suppression comments
//! themselves (a `lint-allow` without a reason, or naming an unknown rule,
//! is itself a diagnostic), and `stale-suppression`, emitted by the engine
//! when a reasoned `lint-allow` names a rule that no longer fires at that
//! site (so the suppression inventory stays honest).

use crate::context::{FileClass, FileContext};

/// One finding, addressed `path:line`. The `fingerprint` is filled in by
/// the engine (it needs the source text): a line-shift-tolerant hash used
/// by `--baseline` and the SARIF exporter.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub fingerprint: u64,
}

/// (id, one-line description) for every shipped rule, in catalog order.
pub const RULES: &[(&str, &str)] = &[
    (
        "float-cmp",
        "partial_cmp(..).unwrap()/expect() on floats; use total_cmp for a NaN-total order",
    ),
    (
        "lossy-cast",
        "lossy `as` cast (to f32 or a sub-64-bit integer) in a numeric-kernel crate",
    ),
    (
        "float-div-acc",
        "float division with a non-literal divisor feeding an accumulator (`+=`/`/=`); one zero divisor poisons the whole reduction",
    ),
    (
        "no-unwrap",
        ".unwrap()/.expect() in non-test library code; return a typed error instead",
    ),
    (
        "no-panic",
        "panic!/unreachable!/todo!/unimplemented! in non-test library code",
    ),
    (
        "index-stampede",
        "3+ slice indexings on one line in non-test library code; a single off-by-one aborts the process",
    ),
    (
        "relaxed-ok",
        "Ordering::Relaxed without a `// relaxed-ok:` justification on the same or previous line",
    ),
    ("no-static-mut", "`static mut` item (data race by construction)"),
    (
        "lock-across-io",
        "lock guard held across a filesystem/network call; drop the guard first",
    ),
    (
        "thread-unbounded",
        "raw std::thread::spawn outside crates/parallel; route work through the deterministic pool (or std::thread::Builder for named service threads)",
    ),
    (
        "raw-instant",
        "direct std::time::Instant::now() outside crates/obs and crates/bench; use obs::now_instant()/now_ns() so timestamps share the trace clock",
    ),
    (
        "nondet-iter",
        "iteration over a HashMap/HashSet whose per-process order can escape; use a BTree collection, sort a collected Vec, or an order-insensitive terminal",
    ),
    (
        "float-reduce-order",
        "f32/f64 sum/fold/+= accumulation inside a parallel::map_*/fill_rows closure; route it through parallel::reduce::* (exact serial order)",
    ),
    (
        "ambient-entropy",
        "SystemTime::now, RandomState, an env read outside the sanctioned config layer (parallel/obs/neuro), or bench-harness Instant::now bypassing obs::now_instant",
    ),
    (
        "shadowed-threads",
        "thread-count read (available_parallelism, Parallelism::resolve, TRIAD_THREADS) bypassing Parallelism::with_ambient",
    ),
    (
        "suppress-reason",
        "lint-allow annotation without a reason, or naming a rule that does not exist",
    ),
    (
        "stale-suppression",
        "reasoned lint-allow whose rule no longer fires at that site; remove the suppression (this rule cannot be suppressed)",
    ),
];

pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|(id, _)| *id).collect()
}

/// Indexing lines with at least this many subscript operations are flagged.
const INDEX_THRESHOLD: usize = 3;

/// Identifiers that mark a filesystem / network call for `lock-across-io`.
const IO_IDENTS: &[&str] = &[
    "load_file",
    "save_file",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "read_dir",
    "create_dir_all",
    "remove_file",
    "rename",
    "copy",
    "open",
    "create",
    "File",
    "TcpListener",
    "TcpStream",
    "accept",
    "stdin",
    "stdout",
    "stderr",
];

/// Cast targets that can silently drop bits or precision.
const LOSSY_TARGETS: &[&str] = &["f32", "u8", "u16", "u32", "i8", "i16", "i32"];

/// Run every rule over one file. Suppressions are applied by the engine,
/// not here, so the engine can also report what a suppression hid.
pub fn run_all(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    float_cmp(cx, out);
    lossy_cast(cx, out);
    float_div_acc(cx, out);
    no_unwrap(cx, out);
    no_panic(cx, out);
    index_stampede(cx, out);
    relaxed_ok(cx, out);
    no_static_mut(cx, out);
    lock_across_io(cx, out);
    thread_unbounded(cx, out);
    raw_instant(cx, out);
    crate::determinism::run_all(cx, out);
    suppress_reason(cx, out);
}

pub(crate) fn diag(
    cx: &FileContext<'_>,
    rule: &'static str,
    line: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        path: cx.rel_path.clone(),
        line,
        message,
        fingerprint: 0,
    }
}

/// True when significant tokens `i` and `i+1` touch with no gap — used to
/// recognise multi-byte operators (`::`, `+=`, `/=`) that the tokenizer
/// emits as single-byte `Punct`s.
pub(crate) fn adjacent(cx: &FileContext<'_>, i: usize) -> bool {
    i + 1 < cx.slen() && cx.stok(i).end == cx.stok(i + 1).start
}

// ---------------------------------------------------------------- numeric

/// `partial_cmp(..)` whose result is force-unwrapped within the statement.
fn float_cmp(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.slen() {
        if cx.stext(i) != "partial_cmp" {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        let mut j = i + 1;
        let limit = (i + 60).min(cx.slen());
        while j < limit {
            let s = cx.stext(j);
            if s == ";" {
                break;
            }
            if s == "unwrap" || s == "expect" {
                out.push(diag(
                    cx,
                    "float-cmp",
                    t.line,
                    format!(
                        "partial_cmp(..).{}() panics (or lies) on NaN; use total_cmp",
                        s
                    ),
                ));
                break;
            }
            j += 1;
        }
    }
}

/// `as f32` / `as u8..u32,i8..i32` in kernel crates.
fn lossy_cast(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if cx.class != FileClass::Kernel {
        return;
    }
    for i in 0..cx.slen().saturating_sub(1) {
        if cx.stext(i) != "as" {
            continue;
        }
        let target = cx.stext(i + 1);
        if !LOSSY_TARGETS.contains(&target.as_ref()) {
            continue;
        }
        // `use foo as f32` cannot occur; `as` here is always a cast.
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        out.push(diag(
            cx,
            "lossy-cast",
            t.line,
            format!(
                "`as {}` can drop bits/precision in a kernel crate; prove the range or use try_from/round-trip checks",
                target
            ),
        ));
    }
}

/// `acc += x / n` (or `acc /= n`) with a non-literal divisor in a kernel
/// crate: one zero/NaN divisor poisons the whole accumulator.
fn float_div_acc(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if cx.class != FileClass::Kernel {
        return;
    }
    let mut i = 0;
    while i + 1 < cx.slen() {
        let a = cx.stext(i);
        let b = cx.stext(i + 1);
        let compound = adjacent(cx, i) && b == "=";
        if a == "/" && compound {
            // `lhs /= rhs`: flag when rhs is not a literal.
            if let Some(d) = div_nonliteral(cx, i + 2) {
                let t = cx.stok(i);
                if !cx.in_test_code(t.start) {
                    out.push(diag(cx, "float-div-acc", t.line, d));
                }
            }
            i += 2;
            continue;
        }
        if a == "+" && compound {
            // `acc += …`: scan the rhs (to `;`) for `x / nonliteral`.
            let mut j = i + 2;
            let limit = (i + 60).min(cx.slen());
            while j < limit {
                let s = cx.stext(j);
                if s == ";" {
                    break;
                }
                if s == "/" && !(adjacent(cx, j) && cx.stext(j + 1) == "=") {
                    if let Some(d) = div_nonliteral(cx, j + 1) {
                        let t = cx.stok(i);
                        if !cx.in_test_code(t.start) {
                            out.push(diag(cx, "float-div-acc", t.line, d));
                        }
                        break;
                    }
                }
                j += 1;
            }
            i += 2;
            continue;
        }
        i += 1;
    }
}

/// If the divisor starting at significant index `i` is not a numeric
/// literal, return the rule message.
fn div_nonliteral(cx: &FileContext<'_>, i: usize) -> Option<String> {
    if i >= cx.slen() {
        return None;
    }
    if matches!(cx.stok(i).kind, crate::tokenizer::TokKind::Num) {
        return None;
    }
    Some(
        "division feeding an accumulator has a non-literal divisor; guard against zero (max(eps), early-return) or justify with lint-allow"
            .to_string(),
    )
}

// ---------------------------------------------------------------- panics

/// `.unwrap()` / `.expect(` in non-test library code.
fn no_unwrap(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !cx.panic_rules_apply() {
        return;
    }
    for i in 1..cx.slen() {
        let s = cx.stext(i);
        if s != "unwrap" && s != "expect" {
            continue;
        }
        if cx.stext(i - 1) != "." {
            continue;
        }
        if i + 1 >= cx.slen() || cx.stext(i + 1) != "(" {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        out.push(diag(
            cx,
            "no-unwrap",
            t.line,
            format!(
                ".{}() in library code; propagate a typed error (`?`) or handle the None/Err arm",
                s
            ),
        ));
    }
}

/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test
/// library code.
fn no_panic(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !cx.panic_rules_apply() {
        return;
    }
    for i in 0..cx.slen().saturating_sub(1) {
        let s = cx.stext(i);
        if !matches!(
            s.as_ref(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) {
            continue;
        }
        if cx.stext(i + 1) != "!" {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        out.push(diag(
            cx,
            "no-panic",
            t.line,
            format!(
                "{}! aborts the process from library code; return an error",
                s
            ),
        ));
    }
}

/// Lines with `INDEX_THRESHOLD`+ subscript operations in non-test library
/// code.
fn index_stampede(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !cx.panic_rules_apply() {
        return;
    }
    let mut current_line = 0u32;
    let mut count = 0usize;
    let mut line_start_byte = 0usize;
    let flush =
        |cx: &FileContext<'_>, line: u32, count: usize, byte: usize, out: &mut Vec<Diagnostic>| {
            if count >= INDEX_THRESHOLD && !cx.in_test_code(byte) {
                out.push(diag(
                    cx,
                    "index-stampede",
                    line,
                    format!(
                    "{} slice indexings on one line; each can panic — use get/iterators or split()",
                    count
                ),
                ));
            }
        };
    for i in 1..cx.slen() {
        let t = cx.stok(i);
        if t.line != current_line {
            flush(cx, current_line, count, line_start_byte, out);
            current_line = t.line;
            count = 0;
            line_start_byte = t.start;
        }
        if cx.stext(i) == "[" {
            let prev = cx.stext(i - 1);
            let is_index = matches!(cx.stok(i - 1).kind, crate::tokenizer::TokKind::Ident)
                || prev == "]"
                || prev == ")";
            // Exclude attribute heads and keywords that precede array types.
            let kw = matches!(
                prev.as_ref(),
                "as" | "in" | "mut" | "ref" | "return" | "else" | "match" | "dyn" | "impl"
            );
            if is_index && !kw {
                count += 1;
            }
        }
    }
    flush(cx, current_line, count, line_start_byte, out);
}

// ------------------------------------------------------------ concurrency

/// `Ordering::Relaxed` must carry a `// relaxed-ok:` justification on the
/// same or previous line.
fn relaxed_ok(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    use crate::tokenizer::TokKind;
    // Lines that carry a relaxed-ok justification comment. A multi-line
    // justification also blesses the first code line after the comment block.
    let mut ok_lines: Vec<u32> = Vec::new();
    for (ti, t) in cx.tokens.iter().enumerate() {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            && t.text(cx.src).contains("relaxed-ok:")
        {
            ok_lines.push(t.line);
            if let Some(n) = cx.tokens[ti + 1..].iter().find(|n| {
                !matches!(
                    n.kind,
                    TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
                )
            }) {
                ok_lines.push(n.line);
            }
        }
    }
    for i in 3..cx.slen() {
        if cx.stext(i) != "Relaxed" {
            continue;
        }
        // Match the `Ordering :: Relaxed` path (two adjacent `:` puncts).
        if !(cx.stext(i - 1) == ":"
            && cx.stext(i - 2) == ":"
            && adjacent(cx, i - 2)
            && cx.stext(i - 3) == "Ordering")
        {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        let justified = ok_lines
            .iter()
            .any(|&l| l == t.line || l + 1 == t.line || l == t.line + 1);
        if !justified {
            out.push(diag(
                cx,
                "relaxed-ok",
                t.line,
                "Ordering::Relaxed without a `// relaxed-ok:` justification; explain why no ordering is needed or upgrade"
                    .to_string(),
            ));
        }
    }
}

/// `static mut` anywhere (tests included).
fn no_static_mut(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..cx.slen().saturating_sub(1) {
        if cx.stext(i) == "static" && cx.stext(i + 1) == "mut" {
            out.push(diag(
                cx,
                "no-static-mut",
                cx.stok(i).line,
                "static mut is a data race by construction; use an atomic, Mutex or OnceLock"
                    .to_string(),
            ));
        }
    }
}

/// `.lock()` whose guard is still live when a filesystem/network call runs.
fn lock_across_io(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !matches!(cx.class, FileClass::Kernel | FileClass::Library) {
        return;
    }
    for i in 1..cx.slen() {
        if cx.stext(i) != "lock" || cx.stext(i - 1) != "." {
            continue;
        }
        if i + 1 >= cx.slen() || cx.stext(i + 1) != "(" {
            continue;
        }
        let lock_tok_start = cx.stok(i).start;
        if cx.in_test_code(lock_tok_start) {
            continue;
        }
        // Is the guard `let`-bound (lives to end of block) or a temporary
        // (lives to end of statement)?
        let mut stmt_start = None;
        for j in (0..i).rev() {
            let s = cx.stext(j);
            if s == ";" || s == "{" || s == "}" {
                stmt_start = Some(j + 1);
                break;
            }
        }
        let stmt_start = stmt_start.unwrap_or(0);
        let let_bound = cx.stext(stmt_start) == "let";
        // Guard variable name, for drop() detection: `let [mut] NAME = …`.
        let guard_name: Option<String> = if let_bound {
            let mut k = stmt_start + 1;
            if k < cx.slen() && cx.stext(k) == "mut" {
                k += 1;
            }
            if k < cx.slen() && matches!(cx.stok(k).kind, crate::tokenizer::TokKind::Ident) {
                Some(cx.stext(k).into_owned())
            } else {
                None
            }
        } else {
            None
        };
        // Scan forward over the guard's live range for I/O identifiers.
        let mut depth = 0i32;
        let mut j = i + 1;
        let limit = (i + 600).min(cx.slen());
        while j < limit {
            let s = cx.stext(j);
            match s.as_ref() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if !let_bound && depth == 0 => break,
                "drop" => {
                    if let Some(name) = &guard_name {
                        if j + 2 < cx.slen() && cx.stext(j + 1) == "(" && cx.stext(j + 2) == *name {
                            break;
                        }
                    }
                }
                _ => {
                    if IO_IDENTS.contains(&s.as_ref())
                        && matches!(cx.stok(j).kind, crate::tokenizer::TokKind::Ident)
                    {
                        out.push(diag(
                            cx,
                            "lock-across-io",
                            cx.stok(i).line,
                            format!(
                                "lock guard held across I/O (`{}` at line {}); drop the guard before the call",
                                s,
                                cx.stok(j).line
                            ),
                        ));
                        break; // one diagnostic per lock site
                    }
                }
            }
            j += 1;
        }
    }
}

/// Raw `thread::spawn` in non-test code outside `crates/parallel`.
///
/// Unbounded ad-hoc threads bypass the deterministic worker pool (and its
/// nested-region serialisation), so every production spawn should go through
/// `crates/parallel` — the one crate allowed to own OS threads. The pattern
/// deliberately does *not* match `std::thread::Builder::new().spawn(..)`:
/// a Builder spawn names its thread and handles spawn failure, which is the
/// sanctioned escape hatch for long-lived service threads (server accept
/// loops, shard workers).
fn thread_unbounded(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if cx.crate_name == "parallel" {
        return;
    }
    for i in 3..cx.slen() {
        if cx.stext(i) != "spawn" {
            continue;
        }
        // Match the `thread :: spawn` path (two adjacent `:` puncts).
        if !(cx.stext(i - 1) == ":"
            && cx.stext(i - 2) == ":"
            && adjacent(cx, i - 2)
            && cx.stext(i - 3) == "thread")
        {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        out.push(diag(
            cx,
            "thread-unbounded",
            t.line,
            "raw thread::spawn bypasses the deterministic pool; use crates/parallel \
             (or a named std::thread::Builder for a service thread)"
                .to_string(),
        ));
    }
}

/// Raw `Instant::now()` in non-test code outside the observability layer.
///
/// The tracing subsystem derives every timestamp from one process-wide
/// monotonic epoch (`obs::clock`); an ad-hoc `Instant::now()` produces
/// times that cannot be aligned with trace spans. Production code should
/// call `obs::now_instant()` (for deadline math on `Instant`s) or
/// `obs::now_ns()` (for durations destined for metrics/spans). `crates/obs`
/// owns the one sanctioned call; `crates/bench` is a measurement harness
/// with its own stopwatch discipline and is exempt.
fn raw_instant(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if cx.crate_name == "obs" || cx.crate_name == "bench" {
        return;
    }
    for i in 3..cx.slen() {
        if cx.stext(i) != "now" {
            continue;
        }
        // Match the `Instant :: now` path (two adjacent `:` puncts).
        if !(cx.stext(i - 1) == ":"
            && cx.stext(i - 2) == ":"
            && adjacent(cx, i - 2)
            && cx.stext(i - 3) == "Instant")
        {
            continue;
        }
        let t = cx.stok(i);
        if cx.in_test_code(t.start) {
            continue;
        }
        out.push(diag(
            cx,
            "raw-instant",
            t.line,
            "Instant::now() bypasses the shared trace clock; use obs::now_instant() \
             or obs::now_ns()"
                .to_string(),
        ));
    }
}

// ------------------------------------------------------------ suppression

/// Audit the `lint-allow` comments themselves.
fn suppress_reason(cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let ids = rule_ids();
    for s in &cx.suppressions {
        if !s.has_reason {
            out.push(diag(
                cx,
                "suppress-reason",
                s.line,
                "lint-allow without a reason; write `// lint-allow(rule): why it is safe`"
                    .to_string(),
            ));
        }
        for r in &s.rules {
            if !ids.contains(&r.as_str()) {
                out.push(diag(
                    cx,
                    "suppress-reason",
                    s.line,
                    format!("lint-allow names unknown rule `{}`", r),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let cx = FileContext::new(path, src.as_bytes());
        let mut out = Vec::new();
        run_all(&cx, &mut out);
        out
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = d.iter().map(|d| d.rule).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn float_cmp_fires_on_partial_cmp_unwrap() {
        let d = check(
            "crates/cli/src/main.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );
        assert_eq!(rules_of(&d), vec!["float-cmp"]);
    }

    #[test]
    fn float_cmp_quiet_on_total_cmp_and_handled_partial_cmp() {
        let d = check(
            "crates/cli/src/main.rs",
            "fn f(v: &mut Vec<f64>, a: f64, b: f64) -> std::cmp::Ordering {\n    v.sort_by(|a, b| a.total_cmp(b));\n    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)\n}",
        );
        assert!(d.is_empty(), "{:?}", d);
    }

    #[test]
    fn lossy_cast_fires_only_in_kernel_crates() {
        let src = "pub fn f(x: f64) -> f32 { x as f32 }";
        assert_eq!(
            rules_of(&check("crates/tsops/src/f.rs", src)),
            vec!["lossy-cast"]
        );
        assert!(check("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_quiet_on_widening() {
        let d = check(
            "crates/tsops/src/f.rs",
            "pub fn f(x: u32) -> f64 { x as f64 }",
        );
        assert!(d.is_empty(), "{:?}", d);
    }

    #[test]
    fn float_div_acc_fires_on_nonliteral_divisor() {
        let d = check(
            "crates/discord/src/f.rs",
            "pub fn f(xs: &[f64], n: f64) -> f64 {\n    let mut acc = 0.0;\n    for &x in xs { acc += x / n; }\n    acc\n}",
        );
        assert_eq!(rules_of(&d), vec!["float-div-acc"]);
    }

    #[test]
    fn float_div_acc_quiet_on_literal_divisor() {
        let d = check(
            "crates/discord/src/f.rs",
            "pub fn f(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for &x in xs { acc += x / 2.0; }\n    acc\n}",
        );
        assert!(d.is_empty(), "{:?}", d);
    }

    #[test]
    fn no_unwrap_fires_in_library_not_tests_or_bins() {
        let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(
            rules_of(&check("crates/core/src/f.rs", src)),
            vec!["no-unwrap"]
        );
        assert!(check("crates/cli/src/main.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(o: Option<u32>) -> u32 { o.unwrap() }\n}";
        assert!(check("crates/core/src/f.rs", test_src).is_empty());
    }

    #[test]
    fn no_unwrap_quiet_on_unwrap_or_variants() {
        let d = check(
            "crates/core/src/f.rs",
            "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0).max(o.unwrap_or_default()) }",
        );
        assert!(d.is_empty(), "{:?}", d);
    }

    #[test]
    fn no_panic_fires_on_macros() {
        let d = check(
            "crates/serve/src/f.rs",
            "pub fn f() { panic!(\"boom\"); }\npub fn g() { unreachable!(); }",
        );
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "no-panic"));
    }

    #[test]
    fn index_stampede_thresholds() {
        let hot =
            "pub fn f(a: &mut [f64], b: &[f64], c: &[f64], i: usize) {\n    a[i] = b[i] + c[i];\n}";
        assert_eq!(
            rules_of(&check("crates/neuro/src/f.rs", hot)),
            vec!["index-stampede"]
        );
        let cool = "pub fn f(a: &mut [f64], b: &[f64], i: usize) {\n    a[i] = b[i];\n}";
        assert!(check("crates/neuro/src/f.rs", cool).is_empty());
    }

    #[test]
    fn relaxed_requires_justification() {
        let bare = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", bare)),
            vec!["relaxed-ok"]
        );
        let ok = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(c: &AtomicU64) {\n    // relaxed-ok: monotonic counter, read only for reporting\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        assert!(check("crates/serve/src/f.rs", ok).is_empty());
        let trailing = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: counter\n}";
        assert!(check("crates/serve/src/f.rs", trailing).is_empty());
    }

    #[test]
    fn static_mut_fires_everywhere() {
        let d = check("crates/core/src/f.rs", "static mut X: u64 = 0;");
        assert_eq!(rules_of(&d), vec!["no-static-mut"]);
    }

    #[test]
    fn lock_across_io_fires_for_let_bound_guard() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>, p: &str) -> std::io::Result<String> {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    let s = std::fs::read_to_string(p)?;\n    let _ = *g;\n    Ok(s)\n}";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", src)),
            vec!["lock-across-io"]
        );
    }

    #[test]
    fn lock_across_io_respects_drop() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>, p: &str) -> std::io::Result<String> {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    drop(g);\n    std::fs::read_to_string(p)\n}";
        assert!(check("crates/serve/src/f.rs", src).is_empty());
    }

    #[test]
    fn lock_across_io_temporary_guard_scoped_to_statement() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>, p: &str) -> std::io::Result<String> {\n    *m.lock().unwrap_or_else(|e| e.into_inner()) += 1;\n    std::fs::read_to_string(p)\n}";
        assert!(check("crates/serve/src/f.rs", src).is_empty());
    }

    #[test]
    fn thread_unbounded_fires_on_raw_spawn_outside_parallel() {
        let src = "pub fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", src)),
            vec!["thread-unbounded"]
        );
        // The pool crate itself is the sanctioned owner of OS threads.
        assert!(check("crates/parallel/src/lib.rs", src).is_empty());
        // Test code is exempt, like the other hygiene rules.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}";
        assert!(check("crates/serve/src/f.rs", test_src).is_empty());
    }

    #[test]
    fn thread_unbounded_quiet_on_builder_and_scoped_spawns() {
        let builder = "pub fn f() {\n    let _ = std::thread::Builder::new().name(\"svc\".into()).spawn(|| {});\n}";
        assert!(check("crates/serve/src/f.rs", builder).is_empty());
        let scoped = "pub fn f(s: &crossbeam::thread::Scope<'_>) { s.spawn(|_| {}); }";
        assert!(check("crates/serve/src/f.rs", scoped).is_empty());
    }

    #[test]
    fn raw_instant_fires_outside_obs_and_bench() {
        let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }";
        assert_eq!(
            rules_of(&check("crates/serve/src/f.rs", src)),
            vec!["raw-instant"]
        );
        // Bare-path spelling is the same token sequence.
        let bare = "use std::time::Instant;\npub fn f() -> Instant { Instant::now() }";
        assert_eq!(
            rules_of(&check("crates/stream/src/f.rs", bare)),
            vec!["raw-instant"]
        );
    }

    #[test]
    fn raw_instant_exempts_clock_owner_harness_and_tests() {
        let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }";
        // The obs clock owns the one sanctioned call site.
        assert!(check("crates/obs/src/clock.rs", src).is_empty());
        // The bench harness is exempt from *this* rule, but its stopwatch
        // must still be the shared trace clock: `ambient-entropy` takes
        // over there (so the finding carries the obs::now_instant hint).
        assert_eq!(
            rules_of(&check("crates/bench/src/perf.rs", src)),
            vec!["ambient-entropy"]
        );
        // Test code is exempt, like the other hygiene rules.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let _ = std::time::Instant::now(); }\n}";
        assert!(check("crates/serve/src/f.rs", test_src).is_empty());
    }

    #[test]
    fn raw_instant_quiet_on_sanctioned_wrappers() {
        let src = "pub fn f() -> u64 {\n    let _t = obs::now_instant();\n    obs::now_ns()\n}";
        assert!(check("crates/serve/src/f.rs", src).is_empty());
    }

    #[test]
    fn suppress_reason_audits_annotations() {
        let d = check(
            "crates/core/src/f.rs",
            "// lint-allow(no-unwrap)\nfn a() {}\n// lint-allow(imaginary-rule): because\nfn b() {}\n",
        );
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "suppress-reason"));
    }
}
