//! End-to-end public API: `TriAd::new(cfg).fit(train)?.detect(test)`.

use crate::config::TriadConfig;
use crate::detect::OnlineRanker;
use crate::detect::{detect, detect_from_rankings, try_detect, DomainRanking, TriadDetection};
use crate::error::DetectError;
use crate::features::FeatureExtractor;
use crate::train::{fit, Model, TrainReport};
use tsops::window::Segmenter;

/// The TriAD detector, parameterised by a [`TriadConfig`].
pub struct TriAd {
    cfg: TriadConfig,
}

impl TriAd {
    pub fn new(cfg: TriadConfig) -> Self {
        TriAd { cfg }
    }

    /// The paper's default configuration.
    pub fn with_defaults() -> Self {
        TriAd {
            cfg: TriadConfig::default(),
        }
    }

    pub fn config(&self) -> &TriadConfig {
        &self.cfg
    }

    /// Train on an anomaly-free series; keeps a copy of the training split
    /// for the single-window-selection stage.
    pub fn fit(self, train: &[f64]) -> Result<FittedTriad, String> {
        obs::enable_from_config(self.cfg.trace);
        let mut span = obs::span("fit");
        span.add_field("n_train", train.len());
        span.add_field("epochs", self.cfg.epochs);
        let trained = fit(&self.cfg, train)?;
        Ok(FittedTriad {
            cfg: self.cfg,
            model: trained.model,
            extractor: trained.extractor,
            segmenter: trained.segmenter,
            report: trained.report,
            train: train.to_vec(),
        })
    }
}

/// A trained TriAD model bound to its training series.
pub struct FittedTriad {
    cfg: TriadConfig,
    model: Model,
    extractor: FeatureExtractor,
    segmenter: Segmenter,
    report: TrainReport,
    train: Vec<f64>,
}

impl FittedTriad {
    /// Reassemble from persisted parts (see [`crate::persist`]).
    pub(crate) fn from_parts(
        cfg: TriadConfig,
        model: Model,
        extractor: FeatureExtractor,
        segmenter: Segmenter,
        report: TrainReport,
        train: Vec<f64>,
    ) -> Self {
        FittedTriad {
            cfg,
            model,
            extractor,
            segmenter,
            report,
            train,
        }
    }

    /// The training series kept for the window-selection stage.
    pub fn train_series(&self) -> &[f64] {
        &self.train
    }

    /// Run the full inference pipeline on a test split.
    ///
    /// Panics on degenerate input (empty / non-finite test split) — fine
    /// for experiment code that built the series itself; long-running
    /// callers handling untrusted input should use [`try_detect`].
    ///
    /// [`try_detect`]: FittedTriad::try_detect
    pub fn detect(&self, test: &[f64]) -> TriadDetection {
        detect(
            &self.cfg,
            &self.model,
            &self.extractor,
            &self.segmenter,
            &self.train,
            test,
        )
    }

    /// Fallible variant of [`detect`](FittedTriad::detect): degenerate input
    /// comes back as a typed [`DetectError`] instead of a panic, so a serve
    /// worker thread survives a hostile request payload.
    pub fn try_detect(&self, test: &[f64]) -> Result<TriadDetection, DetectError> {
        try_detect(
            &self.cfg,
            &self.model,
            &self.extractor,
            &self.segmenter,
            &self.train,
            test,
        )
    }

    /// An empty incremental stage-1 ranker over this model's domains: the
    /// window-scoring entry point that does *not* require the full series.
    /// Push completed windows as they stream in, then close with
    /// [`detect_from_rankings`](FittedTriad::detect_from_rankings).
    pub fn online_ranker(&self) -> OnlineRanker {
        OnlineRanker::new(&self.model)
    }

    /// Embed one window and fold it into `ranker`; returns the window's mean
    /// similarity to everything seen before, per domain.
    pub fn push_window(
        &self,
        ranker: &mut OnlineRanker,
        window: &[f64],
    ) -> Vec<(crate::Domain, f64)> {
        parallel::with_ambient(self.cfg.threads, || {
            ranker.push_window(&self.model, &self.extractor, window)
        })
    }

    /// Set the worker-thread count for this model's train/detect/stream hot
    /// paths (0 = auto). Purely a performance knob: results are bit-identical
    /// at any value, and the setting is not persisted with the model — which
    /// is why a loaded model can be retuned here (e.g. from a server's
    /// `--threads` flag) without invalidating anything.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    /// Select the numeric kernel family for this model's detect hot path.
    /// Like [`set_threads`](FittedTriad::set_threads) this is not persisted:
    /// `Exact` keeps the bit-identical reference kernels, `Fast` swaps the
    /// discord stage onto the tolerance-equivalent MASS profile kernels
    /// (same discord indices, distances within 1e-6 relative).
    pub fn set_numeric_mode(&mut self, mode: tsops::NumericMode) {
        self.cfg.numeric_mode = mode;
    }

    /// Run stages 2–4 (selection, MERLIN, voting) from externally produced
    /// stage-1 rankings. With rankings from an [`OnlineRanker`] fed the same
    /// windows, the result equals [`detect`](FittedTriad::detect) exactly.
    pub fn detect_from_rankings(
        &self,
        test: &[f64],
        windows: &tsops::window::Windows,
        rankings: Vec<DomainRanking>,
    ) -> TriadDetection {
        detect_from_rankings(&self.cfg, &self.train, test, windows, rankings)
    }

    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    pub fn config(&self) -> &TriadConfig {
        &self.cfg
    }

    /// Estimated (or overridden) period.
    pub fn period(&self) -> usize {
        self.report.period
    }

    /// Window length `L` used for segmentation.
    pub fn window_len(&self) -> usize {
        self.report.window
    }

    /// Access to the trained model (ablation studies, custom pipelines).
    pub fn model(&self) -> &Model {
        &self.model
    }

    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    pub fn segmenter(&self) -> &Segmenter {
        &self.segmenter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn series_with_anomaly() -> (Vec<f64>, Vec<f64>, std::ops::Range<usize>) {
        let p = 32.0;
        let n_train = 640usize;
        let n_test = 480usize;
        let mut full: Vec<f64> = (0..n_train + n_test)
            .map(|i| {
                (2.0 * PI * i as f64 / p).sin()
                    + 0.3 * (4.0 * PI * i as f64 / p).sin()
                    + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
            })
            .collect();
        // Frequency-shift anomaly inside the test split.
        let a = n_train + 220..n_train + 280;
        for i in a.clone() {
            full[i] = (8.0 * PI * i as f64 / p).sin();
        }
        let train = full[..n_train].to_vec();
        let test = full[n_train..].to_vec();
        (train, test, 220..280)
    }

    fn quick_cfg() -> TriadConfig {
        TriadConfig {
            epochs: 4,
            depth: 3,
            hidden: 12,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_finds_the_anomalous_window() {
        let (train, test, anomaly) = series_with_anomaly();
        let fitted = TriAd::new(quick_cfg()).fit(&train).expect("fit");
        let det = fitted.detect(&test);

        assert_eq!(det.votes.len(), test.len());
        assert_eq!(det.prediction.len(), test.len());
        assert!(!det.candidates.is_empty() && det.candidates.len() <= 3);
        assert!(det.rankings.len() == 3);

        // The selected window should land within one window length of the
        // anomaly (tri-window accuracy, the Fig. 9 metric).
        let w = fitted.window_len();
        let sel = &det.selected_window;
        let near = sel.start < anomaly.end + w && sel.end + w > anomaly.start;
        assert!(near, "selected {sel:?} vs anomaly {anomaly:?} (w={w})");

        // Votes exist and the prediction flags something.
        assert!(det.votes.iter().any(|&v| v > 0.0));
        assert!(det.prediction.iter().any(|&b| b));
        assert!(det.predicted_region().is_some());
    }

    #[test]
    fn detection_is_deterministic() {
        let (train, test, _) = series_with_anomaly();
        let d1 = TriAd::new(quick_cfg()).fit(&train).unwrap().detect(&test);
        let d2 = TriAd::new(quick_cfg()).fit(&train).unwrap().detect(&test);
        assert_eq!(d1.prediction, d2.prediction);
        assert_eq!(d1.votes, d2.votes);
        assert_eq!(d1.selected_window, d2.selected_window);
    }

    #[test]
    fn accessors_are_consistent() {
        let (train, _, _) = series_with_anomaly();
        let fitted = TriAd::new(quick_cfg()).fit(&train).unwrap();
        assert_eq!(fitted.window_len(), fitted.report().window);
        assert_eq!(fitted.period(), fitted.report().period);
        assert_eq!(fitted.segmenter().window, fitted.window_len());
        assert_eq!(fitted.config().epochs, 4);
        assert_eq!(fitted.model().encoders.len(), 3);
    }

    #[test]
    fn top_z_widens_the_candidate_set() {
        let (train, test, _) = series_with_anomaly();
        let mut cfg = quick_cfg();
        cfg.top_z = 2;
        let fitted = TriAd::new(cfg).fit(&train).unwrap();
        let det = fitted.detect(&test);
        // Up to 3 domains × Z = 2 candidates, deduplicated.
        assert!(det.candidates.len() <= 6);
        for r in &det.rankings {
            assert_eq!(r.tops.len(), 2);
            assert_eq!(r.tops[0], r.top);
            // tops sorted by deviance: first has the lowest similarity.
            assert!(r.scores[r.tops[0]] <= r.scores[r.tops[1]]);
        }
    }

    #[test]
    fn weighted_voting_changes_votes_not_candidates() {
        let (train, test, _) = series_with_anomaly();
        let plain = TriAd::new(quick_cfg()).fit(&train).unwrap().detect(&test);
        let mut cfg = quick_cfg();
        cfg.weighted_voting = true;
        cfg.triad_vote_weight = 2.0;
        let weighted = TriAd::new(cfg).fit(&train).unwrap().detect(&test);
        assert_eq!(plain.selected_window, weighted.selected_window);
        assert_eq!(plain.candidates, weighted.candidates);
        // Vote magnitudes differ (window vote now 2.0, discords normalised).
        assert_ne!(plain.votes, weighted.votes);
        let max_w = weighted.votes.iter().cloned().fold(0.0f64, f64::max);
        // 2.0 window weight + at most 1.0 of normalised discord mass.
        assert!(max_w <= 3.0 + 1e-9, "max vote {max_w}");
    }

    #[test]
    fn try_detect_matches_detect_and_rejects_bad_input() {
        let (train, test, _) = series_with_anomaly();
        let fitted = TriAd::new(quick_cfg()).fit(&train).unwrap();
        let ok = fitted.try_detect(&test).expect("finite input");
        assert_eq!(ok, fitted.detect(&test));
        assert_eq!(fitted.try_detect(&[]), Err(DetectError::EmptyTest));
        let mut bad = test.clone();
        bad[3] = f64::NAN;
        assert_eq!(
            fitted.try_detect(&bad),
            Err(DetectError::NonFiniteTest { index: 3 })
        );
    }

    #[test]
    fn online_ranker_reproduces_offline_detection_exactly() {
        let (train, test, _) = series_with_anomaly();
        let fitted = TriAd::new(quick_cfg()).fit(&train).unwrap();
        let offline = fitted.detect(&test);

        // Feed the same windows one at a time through the incremental path.
        let windows = fitted.segmenter().segment_clamped(test.len());
        let mut ranker = fitted.online_ranker();
        for i in 0..windows.count() {
            fitted.push_window(&mut ranker, windows.slice(&test, i));
        }
        assert_eq!(ranker.window_count(), windows.count());
        let rankings = ranker.rankings(fitted.config().top_z);
        let online = fitted.detect_from_rankings(&test, &windows, rankings);

        // Bit-equal, not merely close: every op in the incremental path
        // replays the offline accumulation order.
        assert_eq!(online, offline);
    }

    #[test]
    fn short_test_split_is_one_window() {
        let (train, test, _) = series_with_anomaly();
        let fitted = TriAd::new(quick_cfg()).fit(&train).unwrap();
        let short = &test[..fitted.window_len() / 2];
        let det = fitted.detect(short);
        assert_eq!(det.votes.len(), short.len());
        assert_eq!(det.selected_window, 0..short.len());
    }
}
