//! Fig. 6 — distribution of anomaly lengths across the generated archive.

use bench::{print_table, Args};
use ucrgen::archive::{generate_archive, ArchiveConfig};

fn main() {
    let args = Args::parse();
    let count: usize = args.get("datasets", 250);
    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count,
            ..Default::default()
        },
    );
    let lens: Vec<usize> = archive.iter().map(|d| d.anomaly_len()).collect();

    let buckets: [(usize, usize); 6] = [
        (1, 50),
        (51, 100),
        (101, 200),
        (201, 400),
        (401, 800),
        (801, 1700),
    ];
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|&(lo, hi)| {
            let n = lens.iter().filter(|&&l| l >= lo && l <= hi).count();
            vec![
                format!("{lo}-{hi}"),
                n.to_string(),
                format!("{:.1}%", 100.0 * n as f64 / lens.len() as f64),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — anomaly lengths in the generated archive",
        &["Length", "Datasets", "Share"],
        &rows,
    );
    println!(
        "\nmin {} / median {} / max {}",
        lens.iter().min().unwrap(),
        {
            let mut s = lens.clone();
            s.sort_unstable();
            s[s.len() / 2]
        },
        lens.iter().max().unwrap()
    );
    println!("(Generator lengths are clamped to test-split/3; see DESIGN.md scale note.)");
}
