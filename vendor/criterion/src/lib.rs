//! Offline stand-in for the `criterion` crate.
//!
//! A wall-clock micro-benchmark harness exposing the API slice the `bench`
//! crate uses (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `criterion_group!`, `criterion_main!`). No statistical analysis or HTML
//! reports — each benchmark warms up, runs `sample_size` timed samples, and
//! prints min / mean / max per-iteration times. Good enough to rank the
//! substrate implementations the benches compare; absolute numbers carry no
//! confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration + entry points.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Handed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost to pick a batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = ((budget / per_iter.max(1e-9)) as u64).max(self.sample_size as u64);
        let batch = (total_iters / self.sample_size as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<48} [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_plumbing_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
