//! Fig. 8 — parameter study: tri-window detection accuracy as a function of
//! the contrastive blend α, the encoder depth, and the representation
//! dimension h_d.
//!
//! Flags: `--datasets N` (default 6), `--epochs N` (default 4).

use bench::{par_map, print_series, Args};
use triad_core::TriadConfig;
use ucrgen::archive::{generate_archive, ArchiveConfig};
use ucrgen::UcrDataset;

fn accuracy(archive: &[UcrDataset], cfg: &TriadConfig) -> f64 {
    let hits = par_map(archive, |ds| {
        bench::run_triad(ds, cfg)
            .map(|o| o.tri_window_hit)
            .unwrap_or(false)
    });
    hits.iter().filter(|&&h| h).count() as f64 / archive.len() as f64
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("datasets", 6);
    let epochs: usize = args.get("epochs", 4);
    // Default to the hard archive: at default difficulty window-level
    // accuracy saturates at 1.0 and the sweeps are flat (--hard 0 to revert).
    let hard: usize = args.get("hard", 1);
    let base_cfg = if hard != 0 {
        ArchiveConfig::hard()
    } else {
        ArchiveConfig::default()
    };
    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count: n,
            ..base_cfg
        },
    );
    let base = TriadConfig {
        epochs,
        merlin_step: 4,
        ..Default::default()
    };

    let alphas = [0.2, 0.4, 0.6, 0.8];
    let pts: Vec<(f64, f64)> = alphas
        .iter()
        .map(|&alpha| {
            let acc = accuracy(
                &archive,
                &TriadConfig {
                    alpha,
                    ..base.clone()
                },
            );
            eprintln!("alpha {alpha}: {acc:.3}");
            (alpha, acc)
        })
        .collect();
    print_series(
        "Fig8a tri-window accuracy vs alpha",
        "alpha",
        "accuracy",
        &pts,
    );

    let depths = [2usize, 4, 6, 8];
    let pts: Vec<(f64, f64)> = depths
        .iter()
        .map(|&depth| {
            let acc = accuracy(
                &archive,
                &TriadConfig {
                    depth,
                    ..base.clone()
                },
            );
            eprintln!("depth {depth}: {acc:.3}");
            (depth as f64, acc)
        })
        .collect();
    print_series(
        "Fig8b tri-window accuracy vs depth",
        "depth",
        "accuracy",
        &pts,
    );

    let dims = [8usize, 16, 32, 64];
    let pts: Vec<(f64, f64)> = dims
        .iter()
        .map(|&hidden| {
            let acc = accuracy(
                &archive,
                &TriadConfig {
                    hidden,
                    ..base.clone()
                },
            );
            eprintln!("h_d {hidden}: {acc:.3}");
            (hidden as f64, acc)
        })
        .collect();
    print_series("Fig8c tri-window accuracy vs h_d", "h_d", "accuracy", &pts);
}
