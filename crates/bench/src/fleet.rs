//! `triad fleet` — the memory-budget soak harness for the fleet tier.
//!
//! Opens many more streams than the byte budget can hold resident, pushes
//! an archive-style workload through all of them round-robin (losslessly —
//! full queues are retried, never shed), and drives a subset into a
//! sustained regime shift so the drift detector schedules at least one
//! background refit. The whole soak is swept over worker-thread counts and
//! writes one `FLEET_soak.json` with residency, throughput, and fleet
//! counters per run.
//!
//! Three gates, checked after the file is written so failures can be
//! inspected:
//!
//! * **bit-identical** — the FNV checksum over every stream's final status
//!   and close-time output must agree across thread counts. Eviction order
//!   is allowed to differ (it depends on poll/push interleaving), but
//!   rehydration is bit-exact, so the gated outputs cannot.
//! * **residency** — the published resident-byte gauge must never exceed
//!   the budget at any sample point.
//! * **refit** — every run must complete at least one drift-triggered
//!   refit (the workload is built so drift genuinely fires).

use obs::now_instant;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use triad_core::{NumericMode, TriAd, TriadConfig};
use triad_fleet::{DriftPolicy, FleetConfig, FleetManager, RefitRequest, Refitter};
use triad_stream::ModelLoader;

/// Thread counts the soak is swept over (a subset of the bench sweep — the
/// fleet soak is wall-clock heavy, and two points prove the contract).
pub const FLEET_THREADS: [usize; 2] = [1, 4];

/// Options parsed from `triad fleet` flags.
pub struct FleetOptions {
    /// CI scale: fewer streams, shorter series, same JSON schema.
    pub smoke: bool,
    /// Where `FLEET_soak.json` lands.
    pub out_dir: PathBuf,
    /// Streams to open (0 = scale default).
    pub streams: usize,
    /// Global resident-engine byte budget (0 = scale default; the soak
    /// always runs *under* budget pressure).
    pub budget_bytes: usize,
    /// Points pushed per stream (0 = scale default).
    pub points: usize,
    /// Numeric kernel mode for every engine the soak fits or rehydrates.
    pub numeric_mode: NumericMode,
}

/// One soak at a fixed thread count.
struct SoakRun {
    threads: usize,
    wall_ms: f64,
    points_per_sec: f64,
    checksum: u64,
    resident_bytes_max: u64,
    evictions: u64,
    rehydrations: u64,
    compacted_files: u64,
    drift_events: u64,
    refits_completed: u64,
    refits_failed: u64,
}

struct SoakReport {
    smoke: bool,
    streams: usize,
    points_per_stream: usize,
    budget_bytes: usize,
    runs: Vec<SoakRun>,
    bit_identical: bool,
    residency_ok: bool,
    refits_ok: bool,
}

impl SoakReport {
    fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"points_per_sec\": {:.1}, \
                     \"checksum\": \"{:016x}\", \"resident_bytes_max\": {}, \
                     \"evictions\": {}, \"rehydrations\": {}, \"compacted_files\": {}, \
                     \"drift_events\": {}, \"refits_completed\": {}, \"refits_failed\": {}}}",
                    r.threads,
                    r.wall_ms,
                    r.points_per_sec,
                    r.checksum,
                    r.resident_bytes_max,
                    r.evictions,
                    r.rehydrations,
                    r.compacted_files,
                    r.drift_events,
                    r.refits_completed,
                    r.refits_failed
                )
            })
            .collect();
        format!(
            "{{\n  \"stage\": \"fleet-soak\",\n  \"smoke\": {},\n  \"streams\": {},\n  \
             \"points_per_stream\": {},\n  \"budget_bytes\": {},\n  \"runs\": [\n{}\n  ],\n  \
             \"bit_identical\": {},\n  \"residency_ok\": {},\n  \"refits_ok\": {}\n}}\n",
            self.smoke,
            self.streams,
            self.points_per_stream,
            self.budget_bytes,
            runs.join(",\n"),
            self.bit_identical,
            self.residency_ok,
            self.refits_ok
        )
    }

    fn summary(&self) -> String {
        let max_res = self
            .runs
            .iter()
            .map(|r| r.resident_bytes_max)
            .max()
            .unwrap_or(0);
        let refits: u64 = self.runs.iter().map(|r| r.refits_completed).sum();
        format!(
            "fleet   : {} streams under {} B budget, max residency {} B, {} refits, \
             bit-identical {} → FLEET_soak.json",
            self.streams, self.budget_bytes, max_res, refits, self.bit_identical
        )
    }
}

/// FNV-1a 64-bit (same folding as the perf harness; f64 via `to_bits`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn done(self) -> u64 {
        self.0
    }
}

/// Per-stream workload: the trained regime everywhere (plus a tiny
/// deterministic per-stream jitter so streams stay distinct), with every
/// sixth stream switching to an unseen frequency halfway through —
/// persistent deviance, which is what CUSUM drift accumulates on. The
/// non-drifting streams must genuinely match the training series, or the
/// baseline slack is breached fleet-wide and drift stops being a signal.
fn stream_series(index: usize, points: usize, period: f64) -> Vec<f64> {
    use std::f64::consts::PI;
    let drifts = index % 6 == 0;
    (0..points)
        .map(|i| {
            if drifts && i >= points / 2 {
                (2.0 * PI * i as f64 / 7.0).sin()
            } else {
                (2.0 * PI * i as f64 / period).sin()
                    + 0.3 * (4.0 * PI * i as f64 / period).sin()
                    + 0.02 * (((i * 37 + index * 11) % 97) as f64 / 97.0 - 0.5)
            }
        })
        .collect()
}

/// Refit recipes posted by the refitter, fitted on demand by the loader —
/// the same registry-free plumbing the fleet unit tests use (`FittedTriad`
/// is `!Send`, so configs and training slices cross threads, models don't).
type RecipeBook = Arc<Mutex<BTreeMap<String, (TriadConfig, Vec<f64>)>>>;

fn base_cfg(threads: usize, numeric_mode: NumericMode) -> TriadConfig {
    TriadConfig {
        epochs: 1,
        depth: 2,
        hidden: 8,
        batch: 8,
        merlin_step: 8,
        seed: 7,
        threads,
        numeric_mode,
        ..TriadConfig::default()
    }
}

fn soak(
    threads: usize,
    numeric_mode: NumericMode,
    streams: usize,
    points: usize,
    budget: usize,
    store_dir: &PathBuf,
) -> Result<SoakRun, String> {
    use std::f64::consts::PI;
    let period = 32.0;
    let train: Vec<f64> = (0..560)
        .map(|i| (2.0 * PI * i as f64 / period).sin() + 0.3 * (4.0 * PI * i as f64 / period).sin())
        .collect();

    let recipes: RecipeBook = Arc::new(Mutex::new(BTreeMap::new()));
    let loader_book = Arc::clone(&recipes);
    let loader: ModelLoader = Arc::new(move |name: &str| {
        let recipe = loader_book
            .lock()
            .map_err(|_| "recipe lock poisoned".to_string())?
            .get(name)
            .cloned();
        match recipe {
            Some((cfg, series)) => TriAd::new(cfg).fit(&series).map_err(|e| e.to_string()),
            None => TriAd::new(base_cfg(threads, numeric_mode))
                .fit(&train)
                .map_err(|e| e.to_string()),
        }
    });
    let refit_book = Arc::clone(&recipes);
    let refitter: Refitter = Arc::new(move |req: &RefitRequest| {
        refit_book
            .lock()
            .map_err(|_| "recipe lock poisoned".to_string())?
            .insert(
                req.new_model.clone(),
                (req.config.clone(), req.train.clone()),
            );
        Ok(())
    });

    let _ = std::fs::remove_dir_all(store_dir);
    let mgr = FleetManager::new(
        FleetConfig {
            shards: 2,
            queue_capacity: 512,
            store_dir: store_dir.clone(),
            budget_bytes: budget,
            drift: DriftPolicy {
                slack_sigma: 1.0,
                threshold: 0.3,
                min_windows: 2,
                swap_horizon: 2,
                ..DriftPolicy::default()
            },
            ..FleetConfig::default()
        },
        loader,
        Some(refitter),
    )
    .map_err(|e| e.to_string())?;

    let names: Vec<String> = (0..streams).map(|i| format!("soak-{i:04}")).collect();
    let series: Vec<Vec<f64>> = (0..streams)
        .map(|i| stream_series(i, points, period))
        .collect();

    let t0 = now_instant();
    let mut resident_max = 0u64;
    for name in &names {
        mgr.open(name, "m").map_err(|e| e.to_string())?;
    }
    let chunk = 64;
    let mut offset = 0;
    while offset < points {
        let end = (offset + chunk).min(points);
        for (name, data) in names.iter().zip(&series) {
            // Lossless delivery: a full queue is backpressure, not loss.
            let mut queued = false;
            for _ in 0..6000 {
                if mgr
                    .push(name, &data[offset..end])
                    .map_err(|e| e.to_string())?
                    .queued
                {
                    queued = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if !queued {
                return Err(format!("queue for {name} never drained"));
            }
        }
        resident_max = resident_max.max(mgr.fleet_stats().resident_bytes);
        offset = end;
    }
    for name in &names {
        let mut drained = false;
        for _ in 0..6000 {
            let status = mgr.poll(name).map_err(|e| e.to_string())?;
            resident_max = resident_max.max(mgr.fleet_stats().resident_bytes);
            if status.seq >= points as u64 {
                drained = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !drained {
            return Err(format!("stream {name} never drained"));
        }
    }

    // Checksum the gated outputs in deterministic (name) order: final
    // status, events, and close-time detection or its refusal.
    let mut h = Fnv::new();
    for name in &names {
        let status = mgr.poll(name).map_err(|e| e.to_string())?;
        h.bytes(name.as_bytes());
        h.u64(status.seq);
        h.u64(status.windows_scored as u64);
        h.u64(status.rejected_nonfinite);
        if let Some(d) = status.last_deviance {
            h.f64(d);
        }
        for ev in &status.events {
            h.u64(ev.start);
            h.u64(ev.end.unwrap_or(u64::MAX));
            h.f64(ev.peak_deviance);
        }
        let report = mgr.close(name).map_err(|e| e.to_string())?;
        match (&report.detection, &report.finalize_error) {
            (Some(det), _) => {
                for r in &det.rankings {
                    for &s in &r.scores {
                        h.f64(s);
                    }
                }
                for &b in &det.prediction {
                    h.u64(b as u64);
                }
                h.f64(det.threshold);
            }
            (None, Some(e)) => h.bytes(e.as_bytes()),
            (None, None) => h.bytes(b"no-output"),
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = mgr.fleet_stats();
    resident_max = resident_max.max(stats.resident_bytes);
    drop(mgr);
    let _ = std::fs::remove_dir_all(store_dir);

    let total_points = (streams * points) as f64;
    Ok(SoakRun {
        threads,
        wall_ms,
        points_per_sec: if wall_ms > 0.0 {
            total_points / (wall_ms / 1e3)
        } else {
            0.0
        },
        checksum: h.done(),
        resident_bytes_max: resident_max,
        evictions: stats.evictions,
        rehydrations: stats.rehydrations,
        compacted_files: stats.compacted_files,
        drift_events: stats.drift_events,
        refits_completed: stats.refits_completed,
        refits_failed: stats.refits_failed,
    })
}

/// Run the soak sweep; returns human-readable summary lines. Errors if any
/// gate fails — the JSON is written first so the numbers can be inspected.
pub fn run_fleet(opts: &FleetOptions) -> Result<Vec<String>, String> {
    let streams = if opts.streams > 0 {
        opts.streams
    } else if opts.smoke {
        12
    } else {
        48
    };
    let points = if opts.points > 0 {
        opts.points
    } else if opts.smoke {
        420
    } else {
        1200
    };
    // Default budget: roughly two resident engines' worth per shard, far
    // below `streams` engines — guaranteed eviction pressure.
    let budget = if opts.budget_bytes > 0 {
        opts.budget_bytes
    } else {
        128 * 1024
    };

    std::fs::create_dir_all(&opts.out_dir).map_err(|e| e.to_string())?;
    let mut runs = Vec::new();
    for &t in &FLEET_THREADS {
        let store_dir = opts.out_dir.join(format!("fleet_store_t{t}"));
        runs.push(soak(
            t,
            opts.numeric_mode,
            streams,
            points,
            budget,
            &store_dir,
        )?);
    }

    let bit_identical = runs.windows(2).all(|w| w[0].checksum == w[1].checksum);
    let residency_ok = runs.iter().all(|r| r.resident_bytes_max <= budget as u64);
    let refits_ok = runs
        .iter()
        .all(|r| r.refits_completed >= 1 && r.refits_failed == 0);
    let report = SoakReport {
        smoke: opts.smoke,
        streams,
        points_per_stream: points,
        budget_bytes: budget,
        runs,
        bit_identical,
        residency_ok,
        refits_ok,
    };
    let path = opts.out_dir.join("FLEET_soak.json");
    std::fs::write(&path, report.to_json()).map_err(|e| format!("{path:?}: {e}"))?;

    if !report.bit_identical {
        return Err(format!(
            "fleet soak outputs were NOT bit-identical across thread counts — see {path:?}"
        ));
    }
    if !report.residency_ok {
        return Err(format!(
            "fleet soak exceeded the {budget}-byte residency budget — see {path:?}"
        ));
    }
    if !report.refits_ok {
        return Err(format!(
            "fleet soak completed no drift-triggered refit — see {path:?}"
        ));
    }
    Ok(vec![report.summary()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_writes_schema_complete_file_and_passes_gates() {
        let dir = std::env::temp_dir().join(format!("triad_fleet_bench_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FleetOptions {
            smoke: true,
            out_dir: dir.clone(),
            streams: 6,
            budget_bytes: 96 * 1024,
            points: 380,
            numeric_mode: NumericMode::Exact,
        };
        let lines = run_fleet(&opts).expect("fleet soak");
        assert_eq!(lines.len(), 1);
        let text = std::fs::read_to_string(dir.join("FLEET_soak.json")).unwrap();
        for key in [
            "\"stage\": \"fleet-soak\"",
            "\"streams\"",
            "\"points_per_stream\"",
            "\"budget_bytes\"",
            "\"runs\"",
            "\"threads\"",
            "\"points_per_sec\"",
            "\"checksum\"",
            "\"resident_bytes_max\"",
            "\"evictions\"",
            "\"rehydrations\"",
            "\"drift_events\"",
            "\"refits_completed\"",
            "\"bit_identical\": true",
            "\"residency_ok\": true",
            "\"refits_ok\": true",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
