//! End-to-end inference cost: TriAD's padded-window MERLIN vs a full-series
//! MERLIN sweep — the "one-tenth inference time" claim of Table IV, isolated
//! from training. Also times the three inference stages of Sec. III-E.

use criterion::{criterion_group, criterion_main, Criterion};
use discord::merlin::{merlin, MerlinConfig};
use std::hint::black_box;
use triad_core::{TriAd, TriadConfig};
use ucrgen::archive::generate_dataset;

fn bench_inference(c: &mut Criterion) {
    let ds = generate_dataset(7, 3);
    let cfg = TriadConfig {
        epochs: 2,
        depth: 3,
        hidden: 12,
        merlin_step: 4,
        ..Default::default()
    };
    let fitted = TriAd::new(cfg).fit(ds.train()).expect("fit");
    let test = ds.test().to_vec();
    let window = fitted.window_len();

    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    // Full TriAD inference (window ranking + selection + restricted MERLIN).
    g.bench_function("triad_detect", |b| {
        b.iter(|| fitted.detect(black_box(&test)))
    });
    // The baseline: MERLIN over the whole test split, same sweep.
    let sweep = MerlinConfig::new(3, window.min(300)).with_step(4);
    g.bench_function("merlin_full_series", |b| {
        b.iter(|| merlin(black_box(&test), sweep))
    });
    // The restricted search alone (Sec. III-E stage 3).
    let region = &test[..(3 * window).min(test.len())];
    g.bench_function("merlin_padded_window", |b| {
        b.iter(|| merlin(black_box(region), sweep))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_inference
}
criterion_main!(benches);
