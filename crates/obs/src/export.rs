//! Trace exporters (JSONL and Chrome trace-event JSON), the matching
//! parsers, structural validation, and the per-stage summary behind
//! `triad trace`.
//!
//! Both formats round-trip: `parse_jsonl(to_jsonl(r))` and
//! `parse_chrome(to_chrome(r))` recover ids, parent links, names,
//! nanosecond timestamps and fields exactly (Chrome stores microseconds
//! with three decimals, i.e. nanosecond resolution).

use crate::json::{self, Json};
use crate::trace::SpanRecord;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// A span read back from an exported trace (owned name/fields, unlike the
/// `&'static str` of a live [`SpanRecord`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    pub id: u64,
    pub parent: u64,
    pub tid: u64,
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
    pub fields: Vec<(String, String)>,
}

// ----------------------------------------------------------------- writers

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One span per line:
/// `{"id":…,"parent":…,"tid":…,"name":"…","start_ns":…,"end_ns":…,"fields":{…}}`.
pub fn to_jsonl(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"tid\":{},\"name\":\"",
            r.id, r.parent, r.tid
        );
        esc(r.name, &mut out);
        let _ = write!(
            out,
            "\",\"start_ns\":{},\"end_ns\":{},\"fields\":{{",
            r.start_ns, r.end_ns
        );
        for (i, (k, v)) in r.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            esc(k, &mut out);
            out.push_str("\":\"");
            esc(v, &mut out);
            out.push('"');
        }
        out.push_str("}}\n");
    }
    out
}

/// Microseconds with three decimals — nanosecond resolution in the unit
/// `chrome://tracing` expects.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Chrome trace-event JSON: one complete (`"ph":"X"`) event per span, ids
/// and fields preserved under `args`. Loadable by `chrome://tracing` and
/// Perfetto.
pub fn to_chrome(records: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        esc(r.name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"triad\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            us(r.start_ns),
            us(r.end_ns.saturating_sub(r.start_ns)),
            r.tid,
            r.id,
            r.parent
        );
        for (k, v) in &r.fields {
            out.push_str(",\"");
            esc(k, &mut out);
            out.push_str("\":\"");
            esc(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

// ----------------------------------------------------------------- parsers

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/bad {key:?}"))
}

/// Parse [`to_jsonl`] output back into spans.
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedSpan>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing name", lineno + 1))?
            .to_string();
        let mut fields = Vec::new();
        if let Some(entries) = v.get("fields").and_then(Json::entries) {
            for (k, fv) in entries {
                let s = fv
                    .as_str()
                    .ok_or_else(|| format!("line {}: non-string field {k:?}", lineno + 1))?;
                fields.push((k.clone(), s.to_string()));
            }
        }
        out.push(ParsedSpan {
            id: field_u64(&v, "id").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            parent: field_u64(&v, "parent").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            tid: field_u64(&v, "tid").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            name,
            start_ns: field_u64(&v, "start_ns").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            end_ns: field_u64(&v, "end_ns").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            fields,
        })
    }
    Ok(out)
}

/// Microsecond float (µs with ≤3 decimals) back to integer nanoseconds.
fn us_to_ns(v: f64) -> Result<u64, String> {
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad microsecond value {v}"));
    }
    Ok((v * 1000.0).round() as u64)
}

/// Parse [`to_chrome`] output back into spans.
pub fn parse_chrome(text: &str) -> Result<Vec<ParsedSpan>, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |e: String| format!("event {i}: {e}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing name".into()))?
            .to_string();
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing ts".into()))?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing dur".into()))?;
        let args = ev.get("args").ok_or_else(|| ctx("missing args".into()))?;
        let mut fields = Vec::new();
        if let Some(entries) = args.entries() {
            for (k, fv) in entries {
                if k == "id" || k == "parent" {
                    continue;
                }
                let s = fv
                    .as_str()
                    .ok_or_else(|| ctx(format!("non-string field {k:?}")))?;
                fields.push((k.clone(), s.to_string()));
            }
        }
        let start_ns = us_to_ns(ts).map_err(ctx)?;
        out.push(ParsedSpan {
            id: field_u64(args, "id").map_err(ctx)?,
            parent: field_u64(args, "parent").map_err(ctx)?,
            tid: field_u64(ev, "tid").map_err(ctx)?,
            name,
            start_ns,
            end_ns: start_ns + us_to_ns(dur).map_err(ctx)?,
            fields,
        })
    }
    Ok(out)
}

// -------------------------------------------------------------- validation

/// Structural validation of a parsed trace:
///
/// * span ids are unique and non-zero;
/// * every non-zero parent link resolves to a span in the trace;
/// * `start ≤ end` for every span, and children nest inside their parent's
///   interval (within `slack_ns`, for formats that round timestamps);
/// * per thread, spans appear in completion order (end timestamps are
///   non-decreasing in file order — the order the recorder emits them).
pub fn validate(spans: &[ParsedSpan], slack_ns: u64) -> Result<(), String> {
    let mut intervals: HashMap<u64, (u64, u64)> = HashMap::new();
    for s in spans {
        if s.id == 0 {
            return Err(format!("span {:?} has id 0", s.name));
        }
        if intervals.insert(s.id, (s.start_ns, s.end_ns)).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
        if s.start_ns > s.end_ns {
            return Err(format!(
                "span {} ({:?}) ends before it starts ({} > {})",
                s.id, s.name, s.start_ns, s.end_ns
            ));
        }
    }
    for s in spans {
        if s.parent == 0 {
            continue;
        }
        let Some(&(p_start, p_end)) = intervals.get(&s.parent) else {
            return Err(format!(
                "span {} ({:?}) has orphan parent id {}",
                s.id, s.name, s.parent
            ));
        };
        if s.start_ns + slack_ns < p_start || s.end_ns > p_end + slack_ns {
            return Err(format!(
                "span {} ({:?}) [{}, {}] escapes parent {} [{}, {}]",
                s.id, s.name, s.start_ns, s.end_ns, s.parent, p_start, p_end
            ));
        }
    }
    let mut last_end: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(&prev) = last_end.get(&s.tid) {
            if s.end_ns + slack_ns < prev {
                return Err(format!(
                    "thread {} spans out of completion order ({} after {})",
                    s.tid, s.end_ns, prev
                ));
            }
        }
        last_end.insert(s.tid, s.end_ns);
    }
    Ok(())
}

// ----------------------------------------------------------------- summary

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    /// Exact (nearest-rank, interpolation-free) quantiles over durations.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// What `triad trace` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Per-name statistics, sorted by descending total time.
    pub stages: Vec<StageStats>,
    /// Span names from the longest root down its longest-child chain.
    pub critical_path: Vec<String>,
    /// Trace extent: latest end minus earliest start.
    pub wall_ns: u64,
    /// Fraction of the trace extent covered by root spans (the ≥95%
    /// acceptance bar for instrumentation completeness).
    pub coverage: f64,
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1) - 1;
    sorted.get(idx.min(sorted.len() - 1)).copied().unwrap_or(0)
}

/// Aggregate a parsed trace into per-stage stats, the critical path and
/// root-span coverage.
pub fn summarize(spans: &[ParsedSpan]) -> Summary {
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in spans {
        by_name
            .entry(s.name.as_str())
            .or_default()
            .push(s.end_ns - s.start_ns);
    }
    let mut stages: Vec<StageStats> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            StageStats {
                name: name.to_string(),
                count: durs.len() as u64,
                total_ns: durs.iter().sum(),
                p50_ns: exact_quantile(&durs, 0.50),
                p95_ns: exact_quantile(&durs, 0.95),
                p99_ns: exact_quantile(&durs, 0.99),
            }
        })
        .collect();
    stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    let wall_ns = match (
        spans.iter().map(|s| s.start_ns).min(),
        spans.iter().map(|s| s.end_ns).max(),
    ) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => 0,
    };
    // Roots don't nest inside each other (different threads aside, the
    // recorder parents concurrent roots to 0 independently), so summing
    // their durations against the extent is the coverage measure.
    let root_total: u64 = spans
        .iter()
        .filter(|s| s.parent == 0)
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    let coverage = if wall_ns == 0 {
        0.0
    } else {
        (root_total as f64 / wall_ns as f64).min(1.0)
    };

    // Critical path: the longest root, then repeatedly its longest child.
    let mut children: HashMap<u64, Vec<&ParsedSpan>> = HashMap::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for s in spans {
        children.entry(s.parent).or_default().push(s);
    }
    let mut critical_path = Vec::new();
    let longest = |list: &[&ParsedSpan]| -> Option<ParsedSpanKey> {
        list.iter()
            .map(|s| ParsedSpanKey {
                dur: s.end_ns - s.start_ns,
                id: s.id,
                name: s.name.clone(),
            })
            .max_by(|a, b| a.dur.cmp(&b.dur).then(b.id.cmp(&a.id)))
    };
    let mut cursor = children.get(&0).and_then(|roots| longest(roots));
    while let Some(node) = cursor {
        if !seen.insert(node.id) {
            break; // defensive: a parent cycle in a hand-edited trace
        }
        critical_path.push(node.name.clone());
        cursor = children.get(&node.id).and_then(|kids| longest(kids));
    }

    Summary {
        stages,
        critical_path,
        wall_ns,
        coverage,
    }
}

/// Helper carrying just what critical-path selection needs.
struct ParsedSpanKey {
    dur: u64,
    id: u64,
    name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, tid: u64, name: &'static str, s: u64, e: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            tid,
            name,
            start_ns: s,
            end_ns: e,
            fields: Vec::new(),
        }
    }

    /// Spans in the order the recorder emits them: completion order per
    /// thread (children land before their parent).
    fn sample() -> Vec<SpanRecord> {
        let mut root = rec(1, 0, 1, "detect", 100, 10_100);
        root.fields.push(("n_test", "380".to_string()));
        vec![
            rec(2, 1, 1, "featurize", 200, 4_200),
            rec(3, 1, 1, "rank", 4_300, 5_300),
            root,
            rec(4, 2, 2, "worker \"w\"", 250, 2_250),
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let recs = sample();
        let text = to_jsonl(&recs);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.len(), recs.len());
        for (p, r) in parsed.iter().zip(&recs) {
            assert_eq!(p.id, r.id);
            assert_eq!(p.parent, r.parent);
            assert_eq!(p.tid, r.tid);
            assert_eq!(p.name, r.name);
            assert_eq!(p.start_ns, r.start_ns);
            assert_eq!(p.end_ns, r.end_ns);
            let fields: Vec<(String, String)> = r
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            assert_eq!(p.fields, fields);
        }
        validate(&parsed, 0).expect("valid");
    }

    #[test]
    fn chrome_round_trips_exactly() {
        let recs = sample();
        let text = to_chrome(&recs);
        let parsed = parse_chrome(&text).expect("parse");
        assert_eq!(parsed.len(), recs.len());
        for (p, r) in parsed.iter().zip(&recs) {
            assert_eq!(p.id, r.id);
            assert_eq!(p.parent, r.parent);
            assert_eq!(p.name, r.name);
            assert_eq!(p.start_ns, r.start_ns);
            assert_eq!(p.end_ns, r.end_ns);
        }
        validate(&parsed, 0).expect("valid");
    }

    #[test]
    fn validate_catches_orphans_inversions_and_escapes() {
        let orphan = vec![ParsedSpan {
            id: 2,
            parent: 9,
            tid: 1,
            name: "x".into(),
            start_ns: 0,
            end_ns: 1,
            fields: Vec::new(),
        }]; // parent 9 missing
        assert!(validate(&orphan, 0).expect_err("orphan").contains("orphan"));

        let inverted = parse_jsonl(&to_jsonl(&[rec(1, 0, 1, "x", 10, 5)])).expect("parse");
        assert!(validate(&inverted, 0).is_err());

        let escaping = parse_jsonl(&to_jsonl(&[
            rec(1, 0, 1, "p", 100, 200),
            rec(2, 1, 1, "c", 50, 150),
        ]))
        .expect("parse");
        assert!(validate(&escaping, 0).is_err());
        // With enough slack the same trace passes (rounding tolerance).
        assert!(validate(&escaping, 100).is_ok());
    }

    #[test]
    fn validate_catches_out_of_order_completion() {
        let spans = parse_jsonl(&to_jsonl(&[
            rec(1, 0, 1, "a", 0, 500),
            rec(2, 0, 1, "b", 0, 100),
        ]))
        .expect("parse");
        assert!(validate(&spans, 0).is_err());
        // Different threads are independent timelines.
        let cross = parse_jsonl(&to_jsonl(&[
            rec(1, 0, 1, "a", 0, 500),
            rec(2, 0, 2, "b", 0, 100),
        ]))
        .expect("parse");
        assert!(validate(&cross, 0).is_ok());
    }

    #[test]
    fn summary_stats_critical_path_and_coverage() {
        let parsed = parse_jsonl(&to_jsonl(&sample())).expect("parse");
        let sum = summarize(&parsed);
        assert_eq!(sum.wall_ns, 10_000);
        // One root spanning the whole extent: full coverage.
        assert!((sum.coverage - 1.0).abs() < 1e-12);
        assert_eq!(
            sum.critical_path,
            vec!["detect", "featurize", "worker \"w\""]
        );
        let detect = sum.stages.iter().find(|s| s.name == "detect").expect("row");
        assert_eq!(detect.count, 1);
        assert_eq!(detect.total_ns, 10_000);
        assert_eq!(detect.p50_ns, 10_000);
        // Stages sorted by descending total time.
        assert_eq!(sum.stages.first().map(|s| s.name.as_str()), Some("detect"));
    }

    #[test]
    fn exact_quantiles_nearest_rank() {
        let durs: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_quantile(&durs, 0.50), 50);
        assert_eq!(exact_quantile(&durs, 0.95), 95);
        assert_eq!(exact_quantile(&durs, 0.99), 99);
        assert_eq!(exact_quantile(&durs, 1.0), 100);
        assert_eq!(exact_quantile(&[], 0.5), 0);
    }
}
