//@ path: crates/core/src/fixture.rs
//@ expect: no-static-mut
// Seeded violation: mutable global state.
static mut TICKS: u64 = 0;

pub fn placeholder() -> u64 {
    0
}
