//@ path: crates/discord/src/fixture.rs
//@ expect: float-div-acc
// Seeded violations: unchecked float division feeding accumulators.
pub fn normalized_sum(xs: &[f64], scale: f64) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x / scale;
    }
    acc
}

pub fn shrink(acc: &mut f64, m: f64) {
    *acc /= m;
}
