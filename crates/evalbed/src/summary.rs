//! Run-level aggregation and the CI regression gate.
//!
//! A [`Summary`] is built from the complete set of result rows: per-method
//! per-metric means, a ranking by the headline column, and the per-dataset
//! win/loss matrix. Its JSON form is canonical (fixed key order, shortest
//! round-trip floats) so two runs that computed identical results serialize
//! to identical bytes — the determinism tests compare summaries literally.
//!
//! Wall-clock totals ride along under a dedicated `timing_ms` key that
//! [`compare`] never reads: timing is machine-dependent and must not gate.

use crate::metrics::{selected, HEADLINE, METRIC_NAMES};
use crate::rows::{fmt_f64, ResultRow};
use obs::json::{self, Json};

/// Aggregates for one method, in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodAggregate {
    pub name: String,
    /// Per-column means, aligned with [`Summary::metric_names`].
    pub means: Vec<f64>,
    /// Headline-metric value on each dataset (dataset order); feeds the
    /// win/loss matrix and ranking but is not serialized per-dataset.
    pub headline: Vec<f64>,
    /// Total test points scored (deterministic, gated).
    pub n_test: usize,
    /// Total wall time, ms (machine-dependent, NOT gated).
    pub wall_ms: f64,
}

/// Everything `EVALBED_summary.json` carries.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub smoke: bool,
    pub archive_seed: u64,
    pub seed: u64,
    pub epochs: usize,
    pub dataset_ids: Vec<usize>,
    /// Selected metric columns, canonical order.
    pub metric_names: Vec<String>,
    /// Per-method aggregates, run order.
    pub methods: Vec<MethodAggregate>,
    /// Method names sorted by mean headline metric, best first (ties keep
    /// run order — deterministic).
    pub ranking: Vec<String>,
    /// `wins[i][j]` = number of datasets where method `i` beats method `j`
    /// on the headline metric (strict `>`; indices follow [`Self::methods`]).
    pub wins: Vec<Vec<usize>>,
}

/// Run parameters the summary records (everything that determines results).
#[derive(Debug, Clone)]
pub struct RunMeta {
    pub smoke: bool,
    pub archive_seed: u64,
    pub seed: u64,
    pub epochs: usize,
}

impl Summary {
    /// Aggregate a complete result set. `rows` must hold exactly one row per
    /// (method, dataset) pair of `method_order` × `dataset_ids` — the engine
    /// guarantees this before calling.
    pub fn from_rows(
        rows: &[ResultRow],
        method_order: &[String],
        dataset_ids: &[usize],
        metric_filter: &[String],
        meta: &RunMeta,
    ) -> Result<Summary, String> {
        let metric_names: Vec<String> = METRIC_NAMES
            .iter()
            .filter(|n| selected(metric_filter, n))
            .map(|n| n.to_string())
            .collect();
        let headline_idx = METRIC_NAMES
            .iter()
            .position(|&n| n == HEADLINE)
            .ok_or("headline metric missing from schema")?;

        let mut methods = Vec::with_capacity(method_order.len());
        for name in method_order {
            let mut means = vec![0.0f64; metric_names.len()];
            let mut headline = Vec::with_capacity(dataset_ids.len());
            let mut n_test = 0usize;
            let mut wall_ms = 0.0f64;
            for &id in dataset_ids {
                let row = rows
                    .iter()
                    .find(|r| &r.method == name && r.dataset == id)
                    .ok_or_else(|| format!("missing result row for ({name}, {id})"))?;
                for (slot, metric) in means.iter_mut().zip(&metric_names) {
                    *slot += row.metrics.get(metric).unwrap_or(0.0);
                }
                headline.push(row.metrics.values[headline_idx]);
                n_test += row.n_test;
                wall_ms += row.wall_ms;
            }
            let n = dataset_ids.len().max(1) as f64;
            for slot in means.iter_mut() {
                *slot /= n;
            }
            methods.push(MethodAggregate {
                name: name.clone(),
                means,
                headline,
                n_test,
                wall_ms,
            });
        }

        // Ranking: stable sort by mean headline, descending; ties keep run
        // order. Comparing on `total_cmp` keeps this deterministic even for
        // pathological values.
        let mut order: Vec<usize> = (0..methods.len()).collect();
        order.sort_by(|&a, &b| mean(&methods[b].headline).total_cmp(&mean(&methods[a].headline)));
        let ranking: Vec<String> = order.iter().map(|&i| methods[i].name.clone()).collect();

        // Win/loss matrix over datasets, strict-greater on the headline.
        let wins: Vec<Vec<usize>> = methods
            .iter()
            .map(|mi| {
                methods
                    .iter()
                    .map(|mj| {
                        mi.headline
                            .iter()
                            .zip(&mj.headline)
                            .filter(|(a, b)| a > b)
                            .count()
                    })
                    .collect()
            })
            .collect();

        Ok(Summary {
            smoke: meta.smoke,
            archive_seed: meta.archive_seed,
            seed: meta.seed,
            epochs: meta.epochs,
            dataset_ids: dataset_ids.to_vec(),
            metric_names,
            methods,
            ranking,
            wins,
        })
    }

    /// Canonical JSON. Gated content first, `timing_ms` last (ignored by
    /// [`compare`]). `gated_only` drops the timing section entirely — the
    /// bit-identity tests serialize with it off so thread count cannot leak
    /// into the compared bytes.
    pub fn to_json(&self, gated_only: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"v\":{},\"smoke\":{},\"archive_seed\":{},\"seed\":{},\"epochs\":{}",
            crate::rows::SCHEMA_VERSION,
            self.smoke,
            self.archive_seed,
            self.seed,
            self.epochs
        ));
        out.push_str(",\"datasets\":[");
        push_list(&mut out, self.dataset_ids.iter().map(|d| d.to_string()));
        out.push_str("],\"metrics\":[");
        push_list(
            &mut out,
            self.metric_names.iter().map(|m| format!("\"{m}\"")),
        );
        out.push_str("],\"method_order\":[");
        push_list(
            &mut out,
            self.methods.iter().map(|m| format!("\"{}\"", m.name)),
        );
        out.push_str("],\"ranking\":[");
        push_list(&mut out, self.ranking.iter().map(|m| format!("\"{m}\"")));
        out.push_str("],\"aggregates\":{");
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", m.name));
            for (j, (name, v)) in self.metric_names.iter().zip(&m.means).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{}", fmt_f64(*v)));
            }
            out.push_str(&format!(",\"n_test\":{}", m.n_test));
            out.push('}');
        }
        out.push_str("},\"wins\":[");
        for (i, row) in self.wins.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            push_list(&mut out, row.iter().map(|w| w.to_string()));
            out.push(']');
        }
        out.push(']');
        if !gated_only {
            out.push_str(",\"timing_ms\":{");
            for (i, m) in self.methods.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", m.name, fmt_f64(m.wall_ms)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parse a summary previously written by [`Self::to_json`] (either
    /// flavour; missing timing reads as zero).
    pub fn parse(text: &str) -> Result<Summary, String> {
        let doc = json::parse(text).map_err(|e| format!("bad summary json: {e}"))?;
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("missing summary version")?;
        if version != crate::rows::SCHEMA_VERSION as u64 {
            return Err(format!(
                "summary schema version {version} (this build reads {})",
                crate::rows::SCHEMA_VERSION
            ));
        }
        let dataset_ids: Vec<usize> = doc
            .get("datasets")
            .and_then(Json::as_arr)
            .ok_or("missing datasets")?
            .iter()
            .map(|j| j.as_u64().map(|v| v as usize).ok_or("bad dataset id"))
            .collect::<Result<_, _>>()?;
        let metric_names = str_list(&doc, "metrics")?;
        let method_order = str_list(&doc, "method_order")?;
        let ranking = str_list(&doc, "ranking")?;
        let aggregates = doc.get("aggregates").ok_or("missing aggregates")?;
        let timing = doc.get("timing_ms");
        let mut methods = Vec::with_capacity(method_order.len());
        for name in &method_order {
            let obj = aggregates
                .get(name)
                .ok_or_else(|| format!("missing aggregates for {name:?}"))?;
            let means = metric_names
                .iter()
                .map(|metric| {
                    obj.get(metric)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("missing mean {metric:?} for {name:?}"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            let n_test = obj
                .get("n_test")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing n_test for {name:?}"))?
                as usize;
            let wall_ms = timing
                .and_then(|t| t.get(name))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            methods.push(MethodAggregate {
                name: name.clone(),
                means,
                headline: Vec::new(), // per-dataset detail is not serialized
                n_test,
                wall_ms,
            });
        }
        let wins: Vec<Vec<usize>> = doc
            .get("wins")
            .and_then(Json::as_arr)
            .ok_or("missing wins")?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or("bad wins row")?
                    .iter()
                    .map(|j| j.as_u64().map(|v| v as usize).ok_or("bad wins cell"))
                    .collect::<Result<Vec<usize>, _>>()
            })
            .collect::<Result<_, _>>()?;
        Ok(Summary {
            smoke: matches!(doc.get("smoke"), Some(Json::Bool(true))),
            archive_seed: doc.get("archive_seed").and_then(Json::as_u64).unwrap_or(0),
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            epochs: doc.get("epochs").and_then(Json::as_u64).unwrap_or(0) as usize,
            dataset_ids,
            metric_names,
            methods,
            ranking,
            wins,
        })
    }

    /// The EVALBED.md body: method × metric table, win/loss matrix,
    /// informational throughput, and — when TriAD stride variants ran — the
    /// stride/overlap sweep table.
    pub fn to_markdown(&self) -> String {
        let mut md = String::with_capacity(2048);
        md.push_str("# evalbed results\n\n");
        md.push_str(&format!(
            "Mode: {} · archive seed {} · model seed {} · epochs {} · {} datasets · \
             headline metric `{HEADLINE}`.\n\n",
            if self.smoke { "smoke" } else { "full archive" },
            self.archive_seed,
            self.seed,
            self.epochs,
            self.dataset_ids.len()
        ));
        md.push_str(
            "Regenerate with `triad evalbed` (see README). Metric means and the win/loss \
             matrix are deterministic and CI-gated; timing is informational only.\n\n",
        );

        md.push_str("## Method × metric means\n\n");
        md.push_str("| method |");
        for name in &self.metric_names {
            md.push_str(&format!(" {name} |"));
        }
        md.push('\n');
        md.push_str("|---|");
        md.push_str(&"---|".repeat(self.metric_names.len()));
        md.push('\n');
        for name in &self.ranking {
            if let Some(m) = self.methods.iter().find(|m| &m.name == name) {
                md.push_str(&format!("| {} |", m.name));
                for v in &m.means {
                    md.push_str(&format!(" {v:.4} |"));
                }
                md.push('\n');
            }
        }

        md.push_str(&format!(
            "\n## Win/loss matrix (`{HEADLINE}`, row beats column on N datasets)\n\n"
        ));
        md.push_str("| |");
        for m in &self.methods {
            md.push_str(&format!(" {} |", m.name));
        }
        md.push('\n');
        md.push_str("|---|");
        md.push_str(&"---|".repeat(self.methods.len()));
        md.push('\n');
        for (i, m) in self.methods.iter().enumerate() {
            md.push_str(&format!("| **{}** |", m.name));
            for (j, w) in self.wins[i].iter().enumerate() {
                if i == j {
                    md.push_str(" – |");
                } else {
                    md.push_str(&format!(" {w} |"));
                }
            }
            md.push('\n');
        }

        md.push_str("\n## Throughput (informational — not gated)\n\n");
        md.push_str("| method | wall s | points/s |\n|---|---|---|\n");
        for m in &self.methods {
            let secs = m.wall_ms / 1000.0;
            let pps = if secs > 0.0 {
                m.n_test as f64 / secs
            } else {
                0.0
            };
            md.push_str(&format!("| {} | {secs:.2} | {pps:.0} |\n", m.name));
        }

        let sweep: Vec<&MethodAggregate> = self
            .methods
            .iter()
            .filter(|m| m.name == "triad" || m.name.starts_with("triad-s"))
            .collect();
        if sweep.len() > 1 {
            md.push_str("\n## Stride/overlap sweep (TriAD windowing)\n\n");
            md.push_str(
                "Stride as a fraction of the window length; smaller stride = more \
                 window overlap = more work per point.\n\n",
            );
            md.push_str(&format!(
                "| method | stride | {HEADLINE} | event_hit | points/s |\n|---|---|---|---|---|\n"
            ));
            for m in sweep {
                let stride = match m.name.as_str() {
                    "triad" => "0.25".to_string(),
                    other => other
                        .strip_prefix("triad-s")
                        .map(|pct| {
                            pct.parse::<f64>()
                                .map(|p| format!("{:.2}", p / 100.0))
                                .unwrap_or_else(|_| "?".to_string())
                        })
                        .unwrap_or_else(|| "?".to_string()),
                };
                let headline = self
                    .metric_names
                    .iter()
                    .position(|n| n == HEADLINE)
                    .and_then(|i| m.means.get(i))
                    .copied()
                    .unwrap_or(0.0);
                let event = self
                    .metric_names
                    .iter()
                    .position(|n| n == "event_hit")
                    .and_then(|i| m.means.get(i))
                    .copied()
                    .unwrap_or(0.0);
                let secs = m.wall_ms / 1000.0;
                let pps = if secs > 0.0 {
                    m.n_test as f64 / secs
                } else {
                    0.0
                };
                md.push_str(&format!(
                    "| {} | {stride} | {headline:.4} | {event:.4} | {pps:.0} |\n",
                    m.name
                ));
            }
        }
        md
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn push_list(out: &mut String, items: impl Iterator<Item = String>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
}

fn str_list(doc: &Json, key: &str) -> Result<Vec<String>, String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing field {key:?}"))?
        .iter()
        .map(|j| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("non-string entry in {key:?}"))
        })
        .collect()
}

/// The CI regression gate: structural changes (dataset set, method set),
/// ranking flips, and per-method metric **drops** beyond `tolerance` are
/// regressions. Improvements and timing changes never fail the gate.
pub fn compare(current: &Summary, baseline: &Summary, tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    if current.dataset_ids != baseline.dataset_ids {
        regressions.push(format!(
            "dataset set changed: baseline has {} datasets, current has {}",
            baseline.dataset_ids.len(),
            current.dataset_ids.len()
        ));
    }
    let cur_methods: Vec<&str> = current.methods.iter().map(|m| m.name.as_str()).collect();
    let base_methods: Vec<&str> = baseline.methods.iter().map(|m| m.name.as_str()).collect();
    if cur_methods != base_methods {
        regressions.push(format!(
            "method set changed: baseline {base_methods:?}, current {cur_methods:?}"
        ));
        return regressions; // per-method comparison below would mislead
    }
    if current.ranking != baseline.ranking {
        regressions.push(format!(
            "method ranking flipped: baseline {:?}, current {:?}",
            baseline.ranking, current.ranking
        ));
    }
    for (cur, base) in current.methods.iter().zip(&baseline.methods) {
        for metric in &baseline.metric_names {
            let Some(bi) = baseline.metric_names.iter().position(|m| m == metric) else {
                continue;
            };
            let Some(ci) = current.metric_names.iter().position(|m| m == metric) else {
                regressions.push(format!("metric column {metric:?} disappeared"));
                continue;
            };
            let delta = cur.means[ci] - base.means[bi];
            if delta < -tolerance {
                regressions.push(format!(
                    "{}/{metric} dropped {:.6} -> {:.6} (Δ {delta:+.6}, tolerance {tolerance})",
                    cur.name, base.means[bi], cur.means[ci]
                ));
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricSet;

    fn row(method: &str, dataset: usize, headline: f64, wall: f64) -> ResultRow {
        let mut values = [0.5f64; METRIC_NAMES.len()];
        let idx = METRIC_NAMES
            .iter()
            .position(|&n| n == HEADLINE)
            .expect("headline");
        values[idx] = headline;
        ResultRow {
            method: method.to_string(),
            dataset,
            dataset_name: format!("{dataset:03}_x"),
            anomaly_kind: "Noise".into(),
            n_test: 100,
            metrics: MetricSet { values },
            wall_ms: wall,
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            smoke: true,
            archive_seed: 7,
            seed: 0,
            epochs: 2,
        }
    }

    fn sample() -> Summary {
        let rows = vec![
            row("triad", 1, 0.9, 10.0),
            row("triad", 2, 0.8, 11.0),
            row("random", 1, 0.2, 1.0),
            row("random", 2, 0.3, 1.0),
        ];
        Summary::from_rows(
            &rows,
            &["triad".to_string(), "random".to_string()],
            &[1, 2],
            &[],
            &meta(),
        )
        .expect("summary")
    }

    #[test]
    fn ranking_and_wins() {
        let s = sample();
        assert_eq!(s.ranking, vec!["triad".to_string(), "random".to_string()]);
        assert_eq!(s.wins[0][1], 2); // triad beats random on both datasets
        assert_eq!(s.wins[1][0], 0);
        assert_eq!(s.wins[0][0], 0);
    }

    #[test]
    fn json_round_trip_preserves_gated_content() {
        let s = sample();
        let text = s.to_json(false);
        let back = Summary::parse(&text).expect("parse");
        assert_eq!(back.ranking, s.ranking);
        assert_eq!(back.wins, s.wins);
        assert_eq!(back.dataset_ids, s.dataset_ids);
        for (a, b) in s.methods.iter().zip(&back.methods) {
            assert_eq!(a.name, b.name);
            for (x, y) in a.means.iter().zip(&b.means) {
                assert_eq!(x.to_bits(), y.to_bits()); // bit-exact round trip
            }
        }
        // Gated serialization is identical regardless of timing content.
        let mut timed = s.clone();
        for m in timed.methods.iter_mut() {
            m.wall_ms *= 31.0;
        }
        assert_eq!(s.to_json(true), timed.to_json(true));
        assert_ne!(s.to_json(false), timed.to_json(false));
    }

    #[test]
    fn compare_passes_identical_and_catches_drop() {
        let s = sample();
        assert!(compare(&s, &s, 1e-9).is_empty());
        let mut worse = s.clone();
        for m in worse.methods.iter_mut() {
            for v in m.means.iter_mut() {
                *v -= 0.05;
            }
        }
        let regressions = compare(&worse, &s, 1e-3);
        assert!(!regressions.is_empty());
        // Improvements do not fail the gate.
        assert!(compare(&s, &worse, 1e-3).is_empty());
    }

    #[test]
    fn compare_catches_ranking_flip() {
        let s = sample();
        let mut flipped = s.clone();
        flipped.ranking.reverse();
        let regressions = compare(&flipped, &s, 1e-9);
        assert!(regressions.iter().any(|r| r.contains("ranking")));
    }

    #[test]
    fn markdown_has_all_sections() {
        let rows = vec![
            row("triad", 1, 0.9, 10.0),
            row("triad-s50", 1, 0.85, 6.0),
            row("random", 1, 0.2, 1.0),
        ];
        let s = Summary::from_rows(
            &rows,
            &[
                "triad".to_string(),
                "triad-s50".to_string(),
                "random".to_string(),
            ],
            &[1],
            &[],
            &meta(),
        )
        .expect("summary");
        let md = s.to_markdown();
        assert!(md.contains("## Method × metric means"));
        assert!(md.contains("## Win/loss matrix"));
        assert!(md.contains("## Throughput"));
        assert!(md.contains("## Stride/overlap sweep"));
        assert!(md.contains("| triad-s50 | 0.50 |"));
    }
}
