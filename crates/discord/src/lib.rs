//! Discord-discovery substrate.
//!
//! A *discord* is the subsequence of a series with the largest z-normalised
//! Euclidean distance to its nearest non-overlapping neighbour — the classic
//! similarity-based definition of a time-series anomaly. This crate provides
//! the full lineage the paper discusses (Sec. III-D2):
//!
//! * [`matrix_profile`] — exact brute-force matrix profile, O(n²·w). The
//!   ground truth the fast algorithms are validated against.
//! * [`stomp`] — the same exact profile via per-row MASS (FFT) distance
//!   profiles, O(n² log n): faster for long subsequence lengths.
//! * [`drag`] — the Discord Range-Aware Gathering algorithm (Yankov, Keogh &
//!   Rebbapragada 2008): a two-phase candidate-select / refine scan that finds
//!   all discords with nearest-neighbour distance ≥ r in ~O(n·w) when r is
//!   well chosen.
//! * [`merlin`] — MERLIN (Nakamura et al. 2020): parameter-free sweep over a
//!   range of subsequence lengths, re-seeding DRAG's range from the previous
//!   length's discord distance.
//! * [`merlin_pp`] — MERLIN++ (Nakamura et al. 2023): same outputs as MERLIN,
//!   accelerated with an Orchard-style reference-point index whose triangle-
//!   inequality bound prunes nearest-neighbour refinement. Same accuracy by
//!   construction, faster on large inputs.
//! * [`fast`] — the tolerance-gated fast numeric mode: full per-length
//!   distance profiles via FFT-seeded diagonal recurrences, selected at
//!   runtime through [`merlin_mode`] when
//!   [`tsops::NumericMode::Fast`] is configured.
//!
//! All algorithms share [`tsops::distance::ZnormSeries`] for O(w) distances
//! and use the standard self-match exclusion zone `|i − j| ≥ w`.

#![forbid(unsafe_code)]

pub mod drag;
pub mod fast;
pub mod matrix_profile;
pub mod merlin;
pub mod merlin_pp;
pub mod stomp;

use merlin::MerlinConfig;
use tsops::NumericMode;

/// Run the MERLIN length sweep with the kernels selected by `mode`:
/// [`merlin::merlin`] (exact ladder, bit-identical) or
/// [`fast::merlin_fast`] (MASS profile kernels, tolerance-equivalent).
pub fn merlin_mode(series: &[f64], cfg: MerlinConfig, mode: NumericMode) -> Vec<Discord> {
    match mode {
        NumericMode::Exact => merlin::merlin(series, cfg),
        NumericMode::Fast => fast::merlin_fast(series, cfg),
    }
}

/// One discovered discord.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Start index of the discord subsequence.
    pub index: usize,
    /// Subsequence length it was found at.
    pub length: usize,
    /// Z-normalised Euclidean distance to its nearest neighbour.
    pub distance: f64,
}

impl Discord {
    /// Half-open range covered by this discord.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.index..self.index + self.length
    }
}
