//! The per-stream online detection engine.
//!
//! A [`StreamEngine`] ingests one point at a time and keeps the tri-domain
//! view current incrementally:
//!
//! * **temporal** — rolling mean/variance over the last `L` points, O(1)
//!   per point;
//! * **frequency** — a [`tsops::sliding::SlidingDft`] over the last `L`
//!   points tracking the lowest `tracked_bins` bins, O(k) per point instead
//!   of an O(L log L) FFT per window;
//! * **residual** — per-phase running means (phase = seq mod period) with
//!   the RMS of the last `L` residuals.
//!
//! Each time a segmentation stride completes, the engine slices the window
//! out of the ring, embeds it with the trained encoders through
//! [`triad_core::OnlineRanker`] (bit-identical to the offline embed path),
//! and turns the window's mean similarity to everything seen before into a
//! *deviance* signal. Deviance drives enter/exit **hysteresis**: an anomaly
//! event opens when deviance rises above `enter` and closes only when it
//! falls below `exit`, so a borderline stream does not flap one event per
//! window.
//!
//! [`StreamEngine::finalize`] closes the loop: when the ring still holds the
//! full history, it replays stages 2–4 of the batch pipeline on the online
//! rankings and returns a [`TriadDetection`] **bit-equal** to running
//! `FittedTriad::detect` on the same series offline.

use crate::ring::RingBuffer;
use crate::StreamError;
use std::collections::VecDeque;
use triad_core::{Domain, FittedTriad, OnlineRanker, TriadDetection};
use tsops::sliding::SlidingDft;
use tsops::window::Segmenter;

/// Knobs that are per-stream policy rather than model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Ring capacity in samples. Forced up to `window + 1` so the sliding
    /// DFT can always read the sample leaving the window. Streams longer
    /// than this lose `finalize` (offline-equivalent detection) but keep
    /// live scoring and hysteresis events.
    pub capacity: usize,
    /// Deviance at or above which an anomaly event opens.
    pub enter: f64,
    /// Deviance at or below which an open event closes. Must be < `enter`
    /// for the hysteresis band to exist.
    pub exit: f64,
    /// How many low-frequency DFT bins the sliding spectrum tracks (clamped
    /// to the window length).
    pub tracked_bins: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            capacity: 1 << 20,
            enter: 0.35,
            exit: 0.15,
            tracked_bins: 8,
        }
    }
}

/// An anomaly episode delimited by hysteresis, in absolute stream
/// coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    /// Start of the window whose deviance crossed `enter`.
    pub start: u64,
    /// End (exclusive) of the window whose deviance fell to `exit`;
    /// `None` while the event is still open.
    pub end: Option<u64>,
    /// Highest deviance observed during the event.
    pub peak_deviance: f64,
}

/// Scores for one completed stride.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowScore {
    /// Window index in segmentation order (0-based).
    pub index: usize,
    /// Absolute sequence number of the window's first sample.
    pub start: u64,
    /// Window length.
    pub len: usize,
    /// Mean similarity of this window to every previous window, per domain.
    pub domain_means: Vec<(Domain, f64)>,
    /// `1 − min(domain mean)`: how deviant the *most* deviant domain finds
    /// this window. `None` for the very first window, which has no peers to
    /// compare against.
    pub deviance: Option<f64>,
    /// Whether a hysteresis event is open after this window.
    pub event_open: bool,
}

/// Result of ingesting one point.
#[derive(Debug, Clone, PartialEq)]
pub struct PushOutcome {
    /// Sequence number assigned to the sample.
    pub seq: u64,
    /// Present when this sample completed a segmentation stride.
    pub completed_window: Option<WindowScore>,
}

/// Instantaneous tri-domain view of the stream tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveView {
    /// Rolling mean over the last `min(n, L)` samples.
    pub mean: f64,
    /// Rolling (population) variance over the last `min(n, L)` samples.
    pub variance: f64,
    /// Mean squared magnitude of the tracked DFT bins over the current
    /// window (0.0 until the first window completes).
    pub spectral_power: f64,
    /// RMS of the last `min(n, L)` per-phase residuals.
    pub residual_rms: f64,
}

/// Snapshot of a stream for `stream.poll`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStatus {
    /// Total samples ingested (next sequence number).
    pub seq: u64,
    /// Samples still held by the ring.
    pub retained: usize,
    /// Samples evicted to honour the capacity bound.
    pub evicted: u64,
    /// Windows embedded and scored so far.
    pub windows_scored: usize,
    /// Deviance of the most recent scored window (None before the second
    /// window).
    pub last_deviance: Option<f64>,
    /// Whether a hysteresis event is currently open.
    pub anomalous: bool,
    /// All events so far, oldest first (the last one may be open).
    pub events: Vec<StreamEvent>,
    pub live: LiveView,
    /// NaN/Inf samples rejected (not assigned sequence numbers).
    pub rejected_nonfinite: u64,
}

/// Online detection state for a single stream. See the module docs.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    pub(crate) cfg: StreamConfig,
    pub(crate) window: usize,
    pub(crate) stride: usize,
    pub(crate) period: usize,
    pub(crate) ring: RingBuffer,
    pub(crate) ranker: OnlineRanker,
    /// Absolute start of every scored window, in segmentation order.
    pub(crate) window_starts: Vec<u64>,
    /// Rolling moments over the last `min(n, L)` samples.
    pub(crate) roll_sum: f64,
    pub(crate) roll_sumsq: f64,
    pub(crate) roll_count: usize,
    /// Sliding spectrum over the last `L` samples; anchored by a full
    /// recompute when the first window completes, O(k) slides after.
    pub(crate) sdft: SlidingDft,
    pub(crate) sdft_ready: bool,
    /// Per-phase running sums/counts for the residual view.
    pub(crate) phase_sums: Vec<f64>,
    pub(crate) phase_counts: Vec<u64>,
    /// Last `min(n, L)` residuals and their running sum of squares.
    pub(crate) residuals: VecDeque<f64>,
    pub(crate) residual_sumsq: f64,
    pub(crate) events: Vec<StreamEvent>,
    pub(crate) last_deviance: Option<f64>,
    pub(crate) rejected_nonfinite: u64,
}

impl StreamEngine {
    /// A fresh engine for one stream, taking window length, stride, and
    /// period from the fitted model so online segmentation matches offline.
    pub fn new(fitted: &FittedTriad, cfg: StreamConfig) -> Self {
        let window = fitted.window_len();
        let stride = fitted.segmenter().stride;
        let period = fitted.period().max(1);
        let capacity = cfg.capacity.max(window + 1);
        let bins: Vec<usize> = (0..cfg.tracked_bins.min(window)).collect();
        StreamEngine {
            ring: RingBuffer::new(capacity),
            ranker: fitted.online_ranker(),
            window_starts: Vec::new(),
            roll_sum: 0.0,
            roll_sumsq: 0.0,
            roll_count: 0,
            sdft: SlidingDft::new(window, &bins),
            sdft_ready: false,
            phase_sums: vec![0.0; period],
            phase_counts: vec![0; period],
            residuals: VecDeque::new(),
            residual_sumsq: 0.0,
            events: Vec::new(),
            last_deviance: None,
            rejected_nonfinite: 0,
            cfg,
            window,
            stride,
            period,
        }
    }

    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    pub fn window_len(&self) -> usize {
        self.window
    }

    pub fn stride(&self) -> usize {
        self.stride
    }

    pub fn period(&self) -> usize {
        self.period
    }

    /// Total samples ingested (the next sequence number to assign).
    pub fn seq(&self) -> u64 {
        self.ring.end_seq()
    }

    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }

    /// Absolute starts of every scored window, segmentation order.
    pub fn window_starts(&self) -> &[u64] {
        &self.window_starts
    }

    fn event_open(&self) -> bool {
        self.events.last().is_some_and(|e| e.end.is_none())
    }

    /// Ingest one sample. NaN/Inf is rejected (counted, stream unharmed).
    /// Returns the assigned sequence number plus, when this sample completed
    /// a segmentation stride, the window's scores.
    pub fn push(&mut self, fitted: &FittedTriad, x: f64) -> Result<PushOutcome, StreamError> {
        if !x.is_finite() {
            self.rejected_nonfinite += 1;
            return Err(StreamError::NonFinite {
                seq: self.ring.end_seq(),
            });
        }

        // The sample about to leave the L-window must be read before the
        // push can evict it (capacity ≥ L+1 keeps it retained until here).
        let n_before = self.ring.end_seq();
        let l = self.window as u64;
        let outgoing = if n_before >= l {
            self.ring.get(n_before - l)
        } else {
            None
        };

        let seq = self.ring.push(x);

        // Temporal view: rolling moments.
        self.roll_sum += x;
        self.roll_sumsq += x * x;
        if let Some(out) = outgoing {
            self.roll_sum -= out;
            self.roll_sumsq -= out * out;
        } else {
            self.roll_count += 1;
        }

        // Frequency view: anchor once, O(k) slide after.
        if seq + 1 == l {
            if let Some(first) = self.ring.slice_to_vec(0, self.window) {
                self.sdft.reset(&first);
                self.sdft_ready = true;
            }
        } else if seq + 1 > l {
            if let Some(out) = outgoing {
                self.sdft.slide(out, x);
            }
        }

        // Residual view: per-phase running mean, then the residual of this
        // point against its (updated) phase mean.
        let phase = (seq % self.period as u64) as usize;
        self.phase_sums[phase] += x;
        self.phase_counts[phase] += 1;
        let r = x - self.phase_sums[phase] / self.phase_counts[phase] as f64;
        self.residuals.push_back(r);
        self.residual_sumsq += r * r;
        if self.residuals.len() > self.window {
            if let Some(old) = self.residuals.pop_front() {
                self.residual_sumsq -= old * old;
            }
        }

        // Segmentation: the stride grid in absolute coordinates.
        let completed_window = if seq + 1 >= l && (seq + 1 - l) % self.stride as u64 == 0 {
            let start = seq + 1 - l;
            self.score_window(fitted, start)
        } else {
            None
        };

        Ok(PushOutcome {
            seq,
            completed_window,
        })
    }

    fn score_window(&mut self, fitted: &FittedTriad, start: u64) -> Option<WindowScore> {
        let slice = self.ring.slice_to_vec(start, self.window)?;
        let domain_means = fitted.push_window(&mut self.ranker, &slice);
        let index = self.window_starts.len();
        self.window_starts.push(start);

        // The very first window's mean similarity is 0 by construction (no
        // peers yet); treating that as deviance would open a spurious event
        // on every stream, so hysteresis starts with the second window.
        let deviance = if index == 0 {
            None
        } else {
            // Most-deviant domain drives the signal: a single-domain anomaly
            // (say, frequency-only) should not be averaged away by the two
            // domains that look normal.
            let min_mean = domain_means
                .iter()
                .map(|&(_, m)| m)
                .fold(f64::INFINITY, f64::min);
            Some(1.0 - min_mean)
        };

        if let Some(dev) = deviance {
            self.last_deviance = Some(dev);
            let end_of_window = start + self.window as u64;
            if self.event_open() {
                if let Some(ev) = self.events.last_mut() {
                    if dev > ev.peak_deviance {
                        ev.peak_deviance = dev;
                    }
                    if dev <= self.cfg.exit {
                        ev.end = Some(end_of_window);
                    }
                }
            } else if dev >= self.cfg.enter {
                self.events.push(StreamEvent {
                    start,
                    end: None,
                    peak_deviance: dev,
                });
            }
        }

        Some(WindowScore {
            index,
            start,
            len: self.window,
            domain_means,
            deviance,
            event_open: self.event_open(),
        })
    }

    /// Current snapshot for `stream.poll`.
    pub fn status(&self) -> StreamStatus {
        StreamStatus {
            seq: self.ring.end_seq(),
            retained: self.ring.len(),
            evicted: self.ring.evicted(),
            windows_scored: self.window_starts.len(),
            last_deviance: self.last_deviance,
            anomalous: self.event_open(),
            events: self.events.clone(),
            live: self.live_view(),
            rejected_nonfinite: self.rejected_nonfinite,
        }
    }

    /// Instantaneous tri-domain view (see [`LiveView`]).
    pub fn live_view(&self) -> LiveView {
        let n = self.roll_count;
        let (mean, variance) = if n == 0 {
            (0.0, 0.0)
        } else {
            let m = self.roll_sum / n as f64;
            ((m), (self.roll_sumsq / n as f64 - m * m).max(0.0))
        };
        let spectral_power = if self.sdft_ready && !self.sdft.bins().is_empty() {
            let l = self.window as f64;
            self.sdft
                .spectrum()
                .iter()
                .map(|c| (c.re * c.re + c.im * c.im) / (l * l))
                .sum::<f64>()
                / self.sdft.bins().len() as f64
        } else {
            0.0
        };
        let residual_rms = if self.residuals.is_empty() {
            0.0
        } else {
            (self.residual_sumsq.max(0.0) / self.residuals.len() as f64).sqrt()
        };
        LiveView {
            mean,
            variance,
            spectral_power,
            residual_rms,
        }
    }

    /// Close the stream with a full detection over its retained history.
    ///
    /// Replays stages 2–4 of the batch pipeline on the incrementally built
    /// rankings; when no samples were evicted the result is **bit-equal** to
    /// `fitted.detect(&series)` on the same points. The off-grid flush
    /// window (and the single clamped window of a short stream) is embedded
    /// here — the online grid only ever completes on-stride windows.
    pub fn finalize(&self, fitted: &FittedTriad) -> Result<TriadDetection, StreamError> {
        let dropped = self.ring.evicted();
        if dropped > 0 {
            return Err(StreamError::HistoryDropped { dropped });
        }
        if self.ring.is_empty() {
            return Err(StreamError::Empty);
        }
        // A rebound engine (fleet refit swapped the model mid-stream) holds
        // rankings only for the post-swap suffix of the grid, so the offline
        // replay below would disagree with them.
        if self.window_starts.len() < self.expected_grid_windows() {
            return Err(StreamError::ModelSwapped);
        }
        let series = self.ring.to_vec();
        let n = series.len();
        let windows = Segmenter::new(self.window, self.stride).segment_clamped(n);

        // The online grid must be a prefix of the offline segmentation.
        debug_assert!(self
            .window_starts
            .iter()
            .zip(&windows.starts)
            .all(|(a, &b)| *a == b as u64));
        debug_assert!(self.window_starts.len() <= windows.count());

        let mut ranker = self.ranker.clone();
        for i in ranker.window_count()..windows.count() {
            fitted.push_window(&mut ranker, windows.slice(&series, i));
        }
        let rankings = ranker.rankings(fitted.config().top_z);
        Ok(fitted.detect_from_rankings(&series, &windows, rankings))
    }

    /// How many on-stride windows the grid has completed for `seq` samples.
    /// A healthy engine has scored exactly this many; fewer means the ranker
    /// was reset mid-stream (see [`rebind`](StreamEngine::rebind)).
    fn expected_grid_windows(&self) -> usize {
        let n = self.ring.end_seq();
        let l = self.window as u64;
        if n >= l {
            ((n - l) / self.stride as u64) as usize + 1
        } else {
            0
        }
    }

    /// Cheap change stamp: two engines of the same stream have equal stamps
    /// iff no sample (accepted or rejected) arrived between them. Used by
    /// checkpoint sweeps to skip streams that are clean since the last save.
    pub fn state_stamp(&self) -> (u64, u64) {
        (self.ring.end_seq(), self.rejected_nonfinite)
    }

    /// Deterministic estimate of this engine's resident heap footprint in
    /// bytes. Derived from collection *lengths* only (never allocator
    /// details), so every run — and every thread count — agrees on when a
    /// fleet budget is exceeded.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        let (rows, sums) = self.ranker.state();
        let ranker_bytes: usize = rows
            .iter()
            .map(|domain| {
                domain
                    .iter()
                    .map(|row| row.len() * size_of::<f32>() + size_of::<Vec<f32>>())
                    .sum::<usize>()
            })
            .sum::<usize>()
            + sums
                .iter()
                .map(|s| s.len() * size_of::<f64>())
                .sum::<usize>();
        size_of::<Self>()
            + self.ring.len() * size_of::<f64>()
            + ranker_bytes
            + self.window_starts.len() * size_of::<u64>()
            + self.events.len() * size_of::<StreamEvent>()
            + self.phase_sums.len() * (size_of::<f64>() + size_of::<u64>())
            + self.residuals.len() * size_of::<f64>()
            + self.cfg.tracked_bins.min(self.window) * 2 * size_of::<f64>()
    }

    /// The last `min(max_len, retained)` samples, oldest first — the
    /// deterministic training slice a drift-triggered refit fits on.
    pub fn recent(&self, max_len: usize) -> Vec<f64> {
        let take = max_len.min(self.ring.len());
        let start = self.ring.end_seq() - take as u64;
        self.ring.slice_to_vec(start, take).unwrap_or_default()
    }

    /// Swap in a refreshed model mid-stream (fleet drift refit).
    ///
    /// The replacement must share the window/stride/period geometry of the
    /// model the engine was opened with — the ring, rolling moments, phase
    /// means, and hysteresis events all carry over untouched. The ranker is
    /// restarted empty: similarity scores must not mix embeddings from two
    /// different encoders. Consequently the first post-swap window has no
    /// peers (deviance `None`, same as a stream's very first window) and
    /// [`finalize`](StreamEngine::finalize) reports
    /// [`StreamError::ModelSwapped`] from then on.
    pub fn rebind(&mut self, fitted: &FittedTriad) -> Result<(), StreamError> {
        if fitted.window_len() != self.window {
            return Err(StreamError::ModelMismatch(format!(
                "rebind: window {} != engine window {}",
                fitted.window_len(),
                self.window
            )));
        }
        if fitted.segmenter().stride != self.stride {
            return Err(StreamError::ModelMismatch(format!(
                "rebind: stride {} != engine stride {}",
                fitted.segmenter().stride,
                self.stride
            )));
        }
        if fitted.period().max(1) != self.period {
            return Err(StreamError::ModelMismatch(format!(
                "rebind: period {} != engine period {}",
                fitted.period().max(1),
                self.period
            )));
        }
        self.ranker = fitted.online_ranker();
        self.window_starts.clear();
        self.last_deviance = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_test, periodic, quick_fitted};

    #[test]
    fn finalize_reproduces_offline_detect_bit_exactly() {
        let fitted = quick_fitted();
        let test = anomalous_test(420, 32.0);
        let offline = fitted.detect(&test);

        let mut engine = StreamEngine::new(&fitted, StreamConfig::default());
        for &x in &test {
            engine.push(&fitted, x).expect("finite");
        }
        let online = engine.finalize(&fitted).expect("full history retained");
        assert_eq!(online, offline);

        // The online grid scored every on-stride window; the off-grid flush
        // (if any) was embedded only at finalize.
        let status = engine.status();
        assert_eq!(status.seq, test.len() as u64);
        assert!(status.windows_scored >= 1);
        assert_eq!(status.evicted, 0);
    }

    #[test]
    fn short_stream_finalizes_as_single_clamped_window() {
        let fitted = quick_fitted();
        let test = periodic(fitted.window_len() / 2, 32.0);
        let offline = fitted.detect(&test);

        let mut engine = StreamEngine::new(&fitted, StreamConfig::default());
        for &x in &test {
            engine.push(&fitted, x).expect("finite");
        }
        // Too short for any on-stride window…
        assert_eq!(engine.status().windows_scored, 0);
        // …but finalize clamps to one short window, like offline detect.
        let online = engine.finalize(&fitted).expect("finalize");
        assert_eq!(online, offline);
    }

    #[test]
    fn first_window_has_no_deviance_and_opens_no_event() {
        let fitted = quick_fitted();
        // Hair-trigger hysteresis: any defined deviance opens an event.
        let cfg = StreamConfig {
            enter: 0.0,
            exit: -1.0,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(&fitted, cfg);
        let test = periodic(420, 32.0);
        let mut first_score = None;
        for &x in &test {
            let out = engine.push(&fitted, x).expect("finite");
            if let Some(score) = out.completed_window {
                if score.index == 0 {
                    assert_eq!(score.deviance, None, "first window must not score");
                    assert!(!score.event_open, "first window must not open an event");
                    first_score = Some(score);
                }
            }
        }
        assert!(first_score.is_some(), "stream long enough for windows");
        // From the second window on, deviance ≥ 0 ≥ enter: exactly one event
        // opened and (exit below the deviance floor) never closed.
        assert_eq!(engine.events().len(), 1);
        assert!(engine.status().anomalous);
        assert_eq!(engine.status().last_deviance.map(|d| d >= 0.0), Some(true));
    }

    #[test]
    fn unreachable_enter_threshold_never_opens_events() {
        let fitted = quick_fitted();
        let cfg = StreamConfig {
            enter: 3.0, // deviance is ≤ 2 for unit-norm embeddings
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(&fitted, cfg);
        for &x in &anomalous_test(420, 32.0) {
            engine.push(&fitted, x).expect("finite");
        }
        assert!(engine.events().is_empty());
        assert!(!engine.status().anomalous);
    }

    #[test]
    fn nonfinite_samples_are_rejected_without_corrupting_the_stream() {
        let fitted = quick_fitted();
        let test = periodic(300, 32.0);
        let mut clean = StreamEngine::new(&fitted, StreamConfig::default());
        let mut dirty = StreamEngine::new(&fitted, StreamConfig::default());
        for (i, &x) in test.iter().enumerate() {
            clean.push(&fitted, x).expect("finite");
            if i == 57 {
                assert!(matches!(
                    dirty.push(&fitted, f64::NAN),
                    Err(StreamError::NonFinite { seq: 57 })
                ));
                assert!(matches!(
                    dirty.push(&fitted, f64::INFINITY),
                    Err(StreamError::NonFinite { seq: 57 })
                ));
            }
            dirty.push(&fitted, x).expect("finite");
        }
        assert_eq!(dirty.status().rejected_nonfinite, 2);
        assert_eq!(dirty.seq(), clean.seq());
        // The rejected points left no trace: identical detections.
        assert_eq!(
            dirty.finalize(&fitted).expect("finalize"),
            clean.finalize(&fitted).expect("finalize")
        );
    }

    #[test]
    fn live_view_tracks_constant_series() {
        let fitted = quick_fitted();
        let mut engine = StreamEngine::new(&fitted, StreamConfig::default());
        let l = engine.window_len();
        for _ in 0..2 * l {
            engine.push(&fitted, 2.5).expect("finite");
        }
        let live = engine.live_view();
        assert!((live.mean - 2.5).abs() < 1e-9, "mean {}", live.mean);
        assert!(live.variance < 1e-9, "variance {}", live.variance);
        // Bin 0 of a constant window is L·x; its contribution to the mean
        // power is x² / tracked_bins, and the other tracked bins are ~0.
        let bins = engine.sdft.bins().len() as f64;
        assert!(
            (live.spectral_power - 2.5 * 2.5 / bins).abs() < 1e-6,
            "spectral power {}",
            live.spectral_power
        );
        // A constant stream has (near-)zero residuals once phases are seen.
        assert!(
            live.residual_rms < 1.0,
            "residual rms {}",
            live.residual_rms
        );
    }

    #[test]
    fn sliding_spectrum_matches_batch_fft_while_streaming() {
        let fitted = quick_fitted();
        let mut engine = StreamEngine::new(&fitted, StreamConfig::default());
        let l = engine.window_len();
        let series = periodic(3 * l, 32.0);
        for (i, &x) in series.iter().enumerate() {
            engine.push(&fitted, x).expect("finite");
            if i + 1 >= l && (i + 1) % 17 == 0 {
                let start = i + 1 - l;
                let spec = tsops::fft::rfft(&series[start..start + l]);
                for (bi, &k) in engine.sdft.bins().iter().enumerate() {
                    let got = engine.sdft.spectrum()[bi];
                    assert!(
                        (got - spec[k]).abs() < 1e-9,
                        "bin {k} at point {i}: {got:?} vs {:?}",
                        spec[k]
                    );
                }
            }
        }
    }

    #[test]
    fn eviction_disables_finalize_but_not_live_scoring() {
        let fitted = quick_fitted();
        let cfg = StreamConfig {
            capacity: 1, // forced up to window + 1
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(&fitted, cfg);
        let l = engine.window_len();
        for &x in periodic(3 * l, 32.0).iter() {
            engine.push(&fitted, x).expect("finite");
        }
        let status = engine.status();
        assert!(status.evicted > 0);
        assert!(status.windows_scored > 1, "live scoring kept going");
        assert!(matches!(
            engine.finalize(&fitted),
            Err(StreamError::HistoryDropped { dropped }) if dropped == status.evicted
        ));
    }

    #[test]
    fn empty_stream_cannot_finalize() {
        let fitted = quick_fitted();
        let engine = StreamEngine::new(&fitted, StreamConfig::default());
        assert!(matches!(engine.finalize(&fitted), Err(StreamError::Empty)));
    }
}
