//! Neural layers used by TriAD and the Table III baselines.
//!
//! Every layer owns persistent [`Param`]s and exposes `params()` for the
//! optimizer plus a `forward` that records ops on a caller-provided
//! [`Graph`]. Layers are deliberately value-only structs; no trait object
//! plumbing is needed at this scale.

use crate::graph::{Graph, NodeId, Param};
use crate::init::{he_normal, xavier_uniform, zeros};
use crate::tensor::Tensor;
use rand::Rng;

/// Fully-connected layer: `[B, in] → [B, out]`.
pub struct Linear {
    pub w: Param,
    pub b: Param,
}

impl Linear {
    pub fn new<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        Linear {
            w: Param::new(xavier_uniform(rng, &[fan_in, fan_out], fan_in, fan_out)),
            b: Param::new(zeros(&[fan_out])),
        }
    }

    /// He-initialised variant for ReLU stacks.
    pub fn new_relu<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        Linear {
            w: Param::new(he_normal(rng, &[fan_in, fan_out], fan_in)),
            b: Param::new(zeros(&[fan_out])),
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        let y = g.matmul(x, w);
        g.add_bias(y, b)
    }

    pub fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// Dilated same-padding 1-D convolution: `[B, C_in, L] → [B, C_out, L]`.
pub struct Conv1d {
    pub w: Param,
    pub b: Param,
    pub dilation: usize,
}

impl Conv1d {
    pub fn new<R: Rng>(
        rng: &mut R,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        dilation: usize,
    ) -> Self {
        assert!(kernel % 2 == 1, "same padding requires an odd kernel");
        Conv1d {
            w: Param::new(he_normal(rng, &[c_out, c_in, kernel], c_in * kernel)),
            b: Param::new(zeros(&[c_out])),
            dilation,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        g.conv1d(x, w, b, self.dilation)
    }

    pub fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// The residual block of TriAD Sec. III-B: two same-padding convolutions with
/// ReLUs and a skip connection (1×1 projection when channel counts differ).
pub struct ResidualBlock {
    pub conv1: Conv1d,
    pub conv2: Conv1d,
    pub skip: Option<Conv1d>,
}

impl ResidualBlock {
    pub fn new<R: Rng>(
        rng: &mut R,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        dilation: usize,
    ) -> Self {
        let conv1 = Conv1d::new(rng, c_in, c_out, kernel, dilation);
        let conv2 = Conv1d::new(rng, c_out, c_out, kernel, dilation);
        let skip = (c_in != c_out).then(|| Conv1d::new(rng, c_in, c_out, 1, 1));
        ResidualBlock { conv1, conv2, skip }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let h = self.conv1.forward(g, x);
        let h = g.relu(h);
        let h = self.conv2.forward(g, h);
        let h = g.relu(h);
        let s = match &self.skip {
            Some(proj) => proj.forward(g, x),
            None => x,
        };
        g.add(h, s)
    }

    pub fn params(&self) -> Vec<Param> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        if let Some(s) = &self.skip {
            p.extend(s.params());
        }
        p
    }
}

/// Single-layer LSTM. Gate order `[i, f, ĝ, o]`; forget-gate bias starts at 1
/// (the standard trick that keeps early memory flowing).
pub struct Lstm {
    pub w_ih: Param,
    pub w_hh: Param,
    pub b: Param,
    pub input: usize,
    pub hidden: usize,
}

impl Lstm {
    pub fn new<R: Rng>(rng: &mut R, input: usize, hidden: usize) -> Self {
        let mut b = zeros(&[4 * hidden]);
        for j in hidden..2 * hidden {
            b.data_mut()[j] = 1.0;
        }
        Lstm {
            w_ih: Param::new(xavier_uniform(rng, &[input, 4 * hidden], input, hidden)),
            w_hh: Param::new(xavier_uniform(rng, &[hidden, 4 * hidden], hidden, hidden)),
            b: Param::new(b),
            input,
            hidden,
        }
    }

    /// One step: `(x_t [B,in], h [B,H], c [B,H]) → (h', c')`.
    pub fn step(&self, g: &mut Graph, x: NodeId, h: NodeId, c: NodeId) -> (NodeId, NodeId) {
        let hsz = self.hidden;
        let w_ih = g.param(&self.w_ih);
        let w_hh = g.param(&self.w_hh);
        let b = g.param(&self.b);
        let xi = g.matmul(x, w_ih);
        let hh = g.matmul(h, w_hh);
        let gates = g.add(xi, hh);
        let gates = g.add_bias(gates, b);
        let i_g = g.slice_cols(gates, 0, hsz);
        let f_g = g.slice_cols(gates, hsz, 2 * hsz);
        let g_g = g.slice_cols(gates, 2 * hsz, 3 * hsz);
        let o_g = g.slice_cols(gates, 3 * hsz, 4 * hsz);
        let i_g = g.sigmoid(i_g);
        let f_g = g.sigmoid(f_g);
        let g_g = g.tanh(g_g);
        let o_g = g.sigmoid(o_g);
        let fc = g.mul(f_g, c);
        let ig = g.mul(i_g, g_g);
        let c_new = g.add(fc, ig);
        let c_act = g.tanh(c_new);
        let h_new = g.mul(o_g, c_act);
        (h_new, c_new)
    }

    /// Unroll over a sequence of `[B,in]` step inputs; returns all hidden
    /// states. Initial `h`/`c` are zero.
    pub fn forward_seq(&self, g: &mut Graph, xs: &[NodeId]) -> Vec<NodeId> {
        assert!(!xs.is_empty(), "empty sequence");
        let bsz = g.value(xs[0]).shape()[0];
        let mut h = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let mut c = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            let (h2, c2) = self.step(g, x, h, c);
            h = h2;
            c = c2;
            out.push(h);
        }
        out
    }

    pub fn params(&self) -> Vec<Param> {
        vec![self.w_ih.clone(), self.w_hh.clone(), self.b.clone()]
    }
}

/// Single-head scaled-dot-product self-attention over a `[T, D]` token
/// matrix. Returns `(output [T, D_v], attention [T, T])` — the attention
/// matrix itself is the object of interest for the Anomaly-Transformer-lite
/// baseline's association discrepancy.
pub struct SelfAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub dim_k: usize,
}

impl SelfAttention {
    pub fn new<R: Rng>(rng: &mut R, dim_in: usize, dim_k: usize, dim_v: usize) -> Self {
        SelfAttention {
            wq: Linear::new(rng, dim_in, dim_k),
            wk: Linear::new(rng, dim_in, dim_k),
            wv: Linear::new(rng, dim_in, dim_v),
            dim_k,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> (NodeId, NodeId) {
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        // lint-allow(lossy-cast): head dimension is a small integer (≤ a few
        // hundred), exactly representable in f32.
        let scores = g.scale(scores, 1.0 / (self.dim_k as f32).sqrt());
        let attn = g.softmax_rows(scores);
        let out = g.matmul(attn, v);
        (out, attn)
    }

    pub fn params(&self) -> Vec<Param> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p
    }
}

/// RealNVP affine coupling layer over `[B, F]` feature vectors (F even).
///
/// One half is passed through; the other is affinely transformed with scale
/// and shift predicted from the first by a two-layer MLP. `swap` alternates
/// which half conditions which, as in stacked-flow practice. `forward`
/// returns the transformed features and the per-row log-determinant `[B,1]`
/// needed for the flow's exact log-likelihood (MTGFlow-lite's anomaly score).
pub struct AffineCoupling {
    pub net1: Linear,
    pub net_s: Linear,
    pub net_t: Linear,
    pub half: usize,
    pub swap: bool,
}

impl AffineCoupling {
    pub fn new<R: Rng>(rng: &mut R, features: usize, hidden: usize, swap: bool) -> Self {
        assert!(features % 2 == 0, "coupling needs an even feature count");
        let half = features / 2;
        AffineCoupling {
            net1: Linear::new_relu(rng, half, hidden),
            net_s: Linear::new(rng, hidden, half),
            net_t: Linear::new(rng, hidden, half),
            half,
            swap,
        }
    }

    pub fn forward(&self, g: &mut Graph, x: NodeId) -> (NodeId, NodeId) {
        let h = self.half;
        let (xa, xb) = if self.swap {
            (g.slice_cols(x, h, 2 * h), g.slice_cols(x, 0, h))
        } else {
            (g.slice_cols(x, 0, h), g.slice_cols(x, h, 2 * h))
        };
        let hid = self.net1.forward(g, xa);
        let hid = g.relu(hid);
        let s_raw = self.net_s.forward(g, hid);
        // Bounded log-scale keeps the flow numerically tame.
        let s = g.tanh(s_raw);
        let t = self.net_t.forward(g, hid);
        let es = g.exp(s);
        let scaled = g.mul(xb, es);
        let yb = g.add(scaled, t);
        let y = if self.swap {
            g.concat_cols(&[yb, xa])
        } else {
            g.concat_cols(&[xa, yb])
        };
        let logdet = g.row_sum(s);
        (y, logdet)
    }

    pub fn params(&self) -> Vec<Param> {
        let mut p = self.net1.params();
        p.extend(self.net_s.params());
        p.extend(self.net_t.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 4, 3);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[5, 4]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[5, 3]);
        assert_eq!(l.params().len(), 2);
    }

    #[test]
    fn residual_block_shapes_and_projection() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = ResidualBlock::new(&mut rng, 3, 8, 3, 2);
        assert!(b.skip.is_some());
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 20]));
        let y = b.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 8, 20]);
        // Same-channel block needs no projection.
        let b2 = ResidualBlock::new(&mut rng, 8, 8, 3, 4);
        assert!(b2.skip.is_none());
    }

    #[test]
    fn lstm_step_and_seq_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Lstm::new(&mut rng, 1, 6);
        let mut g = Graph::new();
        let xs: Vec<NodeId> = (0..5)
            .map(|i| g.input(Tensor::full(&[3, 1], i as f32 / 5.0)))
            .collect();
        let hs = l.forward_seq(&mut g, &xs);
        assert_eq!(hs.len(), 5);
        assert_eq!(g.value(hs[4]).shape(), &[3, 6]);
        // Hidden state values bounded by tanh/sigmoid algebra.
        assert!(g.value(hs[4]).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_can_learn_to_remember_first_input() {
        // Task: output after 4 steps should equal the first step's input sign.
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(&mut rng, 1, 8);
        let head = Linear::new(&mut rng, 8, 1);
        let mut params = lstm.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.02);

        let run = |lstm: &Lstm, head: &Linear, first: f32| -> (Graph, NodeId) {
            let mut g = Graph::new();
            let mut xs = vec![g.input(Tensor::full(&[1, 1], first))];
            for _ in 0..3 {
                xs.push(g.input(Tensor::zeros(&[1, 1])));
            }
            let hs = lstm.forward_seq(&mut g, &xs);
            let y = head.forward(&mut g, *hs.last().unwrap());
            (g, y)
        };

        let mut final_loss = f32::INFINITY;
        for _ in 0..150 {
            let mut total = 0.0;
            for &(inp, tgt) in &[(1.0f32, 1.0f32), (-1.0, -1.0)] {
                let (mut g, y) = run(&lstm, &head, inp);
                let t = g.input(Tensor::full(&[1, 1], tgt));
                let d = g.sub(y, t);
                let sq = g.square(d);
                let l = g.sum_all(sq);
                total += g.value(l).item();
                g.backward(l);
            }
            final_loss = total;
            opt.step();
        }
        assert!(final_loss < 0.05, "loss {final_loss}");
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let att = SelfAttention::new(&mut rng, 5, 4, 5);
        let mut g = Graph::new();
        let x = g.input(crate::init::he_normal(&mut rng, &[7, 5], 5));
        let (out, attn) = att.forward(&mut g, x);
        assert_eq!(g.value(out).shape(), &[7, 5]);
        assert_eq!(g.value(attn).shape(), &[7, 7]);
        for r in 0..7 {
            let s: f32 = g.value(attn).row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn coupling_is_invertible_in_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = AffineCoupling::new(&mut rng, 6, 8, false);
        let x_t = crate::init::he_normal(&mut rng, &[4, 6], 6);
        let mut g = Graph::new();
        let x = g.input(x_t.clone());
        let (y, logdet) = c.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[4, 6]);
        assert_eq!(g.value(logdet).shape(), &[4, 1]);
        // Passthrough half is untouched.
        for r in 0..4 {
            for j in 0..3 {
                assert_eq!(g.value(y).at2(r, j), x_t.at2(r, j));
            }
        }
        // Manual inversion of the transformed half recovers the input.
        // y_b = x_b·e^s + t  ⇒  x_b = (y_b − t)·e^{−s}; recompute s,t from x_a.
        let mut g2 = Graph::new();
        let xa = g2.input(Tensor::from_vec(
            &[4, 3],
            (0..4)
                .flat_map(|r| (0..3).map(move |j| (r, j)))
                .map(|(r, j)| x_t.at2(r, j))
                .collect(),
        ));
        let hid = c.net1.forward(&mut g2, xa);
        let hid = g2.relu(hid);
        let s_raw = c.net_s.forward(&mut g2, hid);
        let s = g2.tanh(s_raw);
        let t = c.net_t.forward(&mut g2, hid);
        for r in 0..4 {
            for j in 0..3 {
                let yb = g.value(y).at2(r, 3 + j);
                let sv = g2.value(s).at2(r, j);
                let tv = g2.value(t).at2(r, j);
                let recovered = (yb - tv) * (-sv).exp();
                assert!((recovered - x_t.at2(r, 3 + j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn coupling_swap_transforms_other_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let c = AffineCoupling::new(&mut rng, 4, 4, true);
        let x_t = crate::init::he_normal(&mut rng, &[2, 4], 4);
        let mut g = Graph::new();
        let x = g.input(x_t.clone());
        let (y, _) = c.forward(&mut g, x);
        // With swap=true the second half is the passthrough.
        for r in 0..2 {
            for j in 2..4 {
                assert_eq!(g.value(y).at2(r, j), x_t.at2(r, j));
            }
        }
    }
}
