//! Anomaly-Transformer-lite (after Xu et al., ICLR 2022).
//!
//! Mechanism kept: each timestamp is a token; self-attention reconstructs the
//! window; the *association discrepancy* between the learned series
//! association (the attention matrix) and a Gaussian *prior association*
//! centred on each token modulates the reconstruction error — anomalies
//! attend narrowly to their own segment, so their discrepancy is small and
//! the score `recon_error × softmax(−discrepancy)` spikes.
//!
//! Simplifications (DESIGN.md): a single attention layer with a fixed prior
//! bandwidth σ (the original learns σ per token and trains minimax); scores
//! are blended with the same multiplication the original uses at inference.

use crate::common::{make_segmenter, scatter_pointwise, znorm_windows};
use crate::Detector;
use neuro::graph::Graph;
use neuro::layers::{Linear, SelfAttention};
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Anomaly-Transformer-lite configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyTransformerConfig {
    pub d_model: usize,
    pub epochs: usize,
    pub lr: f64,
    pub seed: u64,
    /// Prior association bandwidth (in timestamps).
    pub sigma: f64,
    /// Weight of the association-discrepancy regulariser during training.
    pub lambda: f64,
}

impl Default for AnomalyTransformerConfig {
    fn default() -> Self {
        AnomalyTransformerConfig {
            d_model: 16,
            epochs: 8,
            lr: 1e-3,
            seed: 0,
            sigma: 5.0,
            lambda: 0.1,
        }
    }
}

pub struct AnomalyTransformerLite {
    pub cfg: AnomalyTransformerConfig,
}

impl AnomalyTransformerLite {
    pub fn new(cfg: AnomalyTransformerConfig) -> Self {
        AnomalyTransformerLite { cfg }
    }
}

struct Net {
    embed: Linear,
    attn: SelfAttention,
    head: Linear,
}

impl Net {
    fn new(rng: &mut StdRng, d: usize) -> Self {
        Net {
            embed: Linear::new(rng, 2, d), // (value, position) features
            attn: SelfAttention::new(rng, d, d, d),
            head: Linear::new(rng, d, 1),
        }
    }

    fn params(&self) -> Vec<neuro::graph::Param> {
        let mut p = self.embed.params();
        p.extend(self.attn.params());
        p.extend(self.head.params());
        p
    }
}

/// Token features for one window: `(z-normalised value, scaled position)`.
fn tokens(window: &[f64]) -> Tensor {
    let l = window.len();
    let mut data = Vec::with_capacity(l * 2);
    for (t, &v) in window.iter().enumerate() {
        data.push(v as f32);
        data.push(t as f32 / l.max(1) as f32);
    }
    Tensor::from_vec(&[l, 2], data)
}

/// Gaussian prior association matrix, row-normalised.
fn prior(l: usize, sigma: f64) -> Tensor {
    let mut data = vec![0.0f32; l * l];
    for i in 0..l {
        let mut row_sum = 0.0f64;
        for j in 0..l {
            let d = (i as f64 - j as f64) / sigma;
            let v = (-0.5 * d * d).exp();
            data[i * l + j] = v as f32;
            row_sum += v;
        }
        for j in 0..l {
            data[i * l + j] /= row_sum as f32;
        }
    }
    Tensor::from_vec(&[l, l], data)
}

/// One window's `(recon_errors, discrepancy_rows)` — shared by training and
/// scoring.
struct Pass {
    recon_err: Vec<f64>,
    discrepancy: Vec<f64>,
    loss_value: f32,
}

fn run_window(net: &Net, window: &[f64], cfg: &AnomalyTransformerConfig, train: bool) -> Pass {
    let l = window.len();
    let mut g = Graph::new();
    let x = g.input(tokens(window));
    let h = net.embed.forward(&mut g, x);
    let (ctx, attn) = net.attn.forward(&mut g, h);
    let recon = net.head.forward(&mut g, ctx); // [L, 1]

    let target = g.input(Tensor::from_vec(
        &[l, 1],
        window.iter().map(|&v| v as f32).collect(),
    ));
    let d = g.sub(recon, target);
    let sq = g.square(d); // [L,1] per-token squared error
    let recon_loss = g.mean_all(sq);

    // Association discrepancy: KL(P ‖ S) per row = Σ P (ln P − ln S).
    let p = g.input(prior(l, cfg.sigma));
    let lnp = g.ln(p);
    let lns = g.ln(attn);
    let diff = g.sub(lnp, lns);
    let w = g.mul(p, diff);
    let kl_rows = g.row_sum(w); // [L,1]
    let kl_mean = g.mean_all(kl_rows);

    // Training objective: reconstruction + λ·discrepancy (pulls the series
    // association toward the smooth prior on normal data).
    let reg = g.scale(kl_mean, cfg.lambda as f32);
    let loss = g.add(recon_loss, reg);

    let recon_err: Vec<f64> = (0..l).map(|t| g.value(sq).data()[t] as f64).collect();
    let discrepancy: Vec<f64> = (0..l).map(|t| g.value(kl_rows).data()[t] as f64).collect();
    let loss_value = g.value(loss).item();
    if train && loss_value.is_finite() {
        g.backward(loss);
    }
    Pass {
        recon_err,
        discrepancy,
        loss_value,
    }
}

/// The inference criterion: `recon_error ⊙ softmax(−discrepancy)` (row-wise
/// over the window), rescaled by `L` so magnitudes are window-length
/// invariant.
fn window_scores(pass: &Pass) -> Vec<f64> {
    let l = pass.discrepancy.len();
    let mx = pass
        .discrepancy
        .iter()
        .fold(f64::NEG_INFINITY, |m, &v| m.max(-v));
    let exps: Vec<f64> = pass.discrepancy.iter().map(|&v| (-v - mx).exp()).collect();
    let sum: f64 = exps.iter().sum();
    pass.recon_err
        .iter()
        .zip(&exps)
        .map(|(&e, &w)| e * (w / sum) * l as f64)
        .collect()
}

impl Detector for AnomalyTransformerLite {
    fn name(&self) -> String {
        "Anomaly Transformer".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let seg = make_segmenter(train);
        let (_, slices) = znorm_windows(train, &seg);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let net = Net::new(&mut rng, self.cfg.d_model);
        let mut opt = Adam::new(net.params(), self.cfg.lr as f32);

        let mut idxs: Vec<usize> = (0..slices.len()).collect();
        for _ in 0..self.cfg.epochs {
            idxs.shuffle(&mut rng);
            for &i in &idxs {
                let pass = run_window(&net, &slices[i], &self.cfg, true);
                if pass.loss_value.is_finite() {
                    opt.step();
                } else {
                    opt.zero_grad();
                }
            }
        }

        let (windows, tslices) = znorm_windows(test, &seg);
        let per_window: Vec<Vec<f64>> = tslices
            .iter()
            .map(|w| window_scores(&run_window(&net, w, &self.cfg, false)))
            .collect();
        scatter_pointwise(&windows, &per_window, test.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn quick() -> AnomalyTransformerConfig {
        AnomalyTransformerConfig {
            d_model: 8,
            epochs: 2,
            ..Default::default()
        }
    }

    fn dataset() -> (Vec<f64>, Vec<f64>) {
        let p = 20.0;
        let full: Vec<f64> = (0..700).map(|i| (2.0 * PI * i as f64 / p).sin()).collect();
        let mut test = full[400..].to_vec();
        for i in 120..150 {
            test[i] += 1.2;
        }
        (full[..400].to_vec(), test)
    }

    #[test]
    fn prior_rows_sum_to_one_and_peak_on_diagonal() {
        let p = prior(20, 3.0);
        for i in 0..20 {
            let row = p.row(i);
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(argmax, i);
        }
    }

    #[test]
    fn score_shape_and_finiteness() {
        let (train, test) = dataset();
        let s = AnomalyTransformerLite::new(quick()).score(&train, &test);
        assert_eq!(s.len(), test.len());
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn window_scores_are_weighted_errors() {
        let pass = Pass {
            recon_err: vec![1.0, 1.0, 4.0],
            discrepancy: vec![0.5, 0.5, 0.5],
            loss_value: 0.0,
        };
        let s = window_scores(&pass);
        // Equal discrepancies → softmax uniform → score ∝ recon error.
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert!((s[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let (train, test) = dataset();
        let a = AnomalyTransformerLite::new(quick()).score(&train, &test);
        let b = AnomalyTransformerLite::new(quick()).score(&train, &test);
        assert_eq!(a, b);
    }
}
