//! "Flawed benchmark" generators — the KPI-like and SWaT-like datasets of
//! Table II and Fig. 3.
//!
//! Sec. II-B's point is that popular benchmarks contain *explicit* anomalies:
//! extreme spikes (KPI) or long saturated excursions at unrealistic densities
//! (SWaT) that a one-line threshold detects, and that the point-adjustment
//! protocol then inflates every model's F1. These generators reproduce
//! exactly those pathologies so the Table II experiment is reproducible.

use crate::signal::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// A labelled series with (possibly many) anomalous events — unlike the UCR
/// contract, flawed benchmarks have multiple events per test split.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledSeries {
    pub name: String,
    pub series: Vec<f64>,
    pub train_end: usize,
    /// Anomalous events in full-series coordinates, all ≥ `train_end`.
    pub events: Vec<Range<usize>>,
}

impl LabelledSeries {
    pub fn train(&self) -> &[f64] {
        &self.series[..self.train_end]
    }

    pub fn test(&self) -> &[f64] {
        &self.series[self.train_end..]
    }

    /// Point-wise ground truth over the test split.
    pub fn test_labels(&self) -> Vec<bool> {
        let n = self.test().len();
        let mut labels = vec![false; n];
        for ev in &self.events {
            for i in ev.clone() {
                if i >= self.train_end && i - self.train_end < n {
                    labels[i - self.train_end] = true;
                }
            }
        }
        labels
    }

    /// Fraction of anomalous points in the test split (the "unrealistic
    /// density" diagnostic from Sec. II-B).
    pub fn anomaly_density(&self) -> f64 {
        let labels = self.test_labels();
        labels.iter().filter(|&&b| b).count() as f64 / labels.len().max(1) as f64
    }
}

/// KPI-like: noisy weakly-periodic service metric with sparse *extreme
/// spikes* — Fig. 3's one-liner anomalies. A `|x| > 4σ` threshold nails them.
pub fn kpi_like(seed: u64, train_len: usize, test_len: usize, n_events: usize) -> LabelledSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = train_len + test_len;
    let p = 120.0;
    let mut series: Vec<f64> = (0..total)
        .map(|i| {
            let t = i as f64;
            (2.0 * std::f64::consts::PI * t / p).sin() * 0.6 + gaussian(&mut rng) * 0.25
        })
        .collect();
    let mut events = Vec::with_capacity(n_events);
    for k in 0..n_events {
        // Spread events across the test split; 1–4 point spikes.
        let len = rng.random_range(1..=4usize);
        let slot = test_len / n_events.max(1);
        let base = train_len + k * slot;
        let start = base + rng.random_range(0..slot.saturating_sub(len).max(1));
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        for i in start..(start + len).min(total) {
            series[i] += sign * (6.0 + 2.0 * rng.random::<f64>());
        }
        events.push(start..(start + len).min(total));
    }
    LabelledSeries {
        name: format!("kpi_like_{seed}"),
        series,
        train_end: train_len,
        events,
    }
}

/// SWaT-like: slow industrial process where anomalies are *long saturated
/// excursions* occupying an unrealistically large share of the test split
/// (the real SWaT test set is ~12% anomalous).
pub fn swat_like(seed: u64, train_len: usize, test_len: usize, n_events: usize) -> LabelledSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = train_len + test_len;
    let p = 400.0;
    let mut series: Vec<f64> = (0..total)
        .map(|i| {
            let t = i as f64;
            ((2.0 * std::f64::consts::PI * t / p).sin() * 2.0).tanh() + gaussian(&mut rng) * 0.05
        })
        .collect();
    let mut events = Vec::with_capacity(n_events);
    for k in 0..n_events {
        let slot = test_len / n_events.max(1);
        let len = (slot as f64 * (0.25 + 0.2 * rng.random::<f64>())) as usize;
        let base = train_len + k * slot;
        let start = base + rng.random_range(0..slot.saturating_sub(len).max(1));
        let level = if rng.random::<bool>() { 3.0 } else { -3.0 };
        for i in start..(start + len).min(total) {
            series[i] = level + gaussian(&mut rng) * 0.05;
        }
        events.push(start..(start + len).min(total));
    }
    LabelledSeries {
        name: format!("swat_like_{seed}"),
        series,
        train_end: train_len,
        events,
    }
}

/// Wrap a [`crate::UcrDataset`] as a single-event [`LabelledSeries`] so one
/// evaluation path serves Table II's three dataset columns.
pub fn from_ucr(d: &crate::UcrDataset) -> LabelledSeries {
    LabelledSeries {
        name: d.name.clone(),
        series: d.series.clone(),
        train_end: d.train_end,
        events: vec![d.anomaly.clone()],
    }
}

/// The "one-liner" detector of Sec. II-B: flag every test point whose
/// |z-score| (against training statistics) exceeds `threshold`. The point of
/// Table II is that this trivial function solves KPI/SWaT-like data.
pub fn oneliner_predict(data: &LabelledSeries, threshold: f64) -> Vec<bool> {
    let m = tsops::stats::mean(data.train());
    let s = tsops::stats::std_dev(data.train()).max(1e-12);
    data.test()
        .iter()
        .map(|&v| ((v - m) / s).abs() > threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kpi_spikes_are_oneliner_detectable() {
        let d = kpi_like(1, 2000, 3000, 8);
        assert_eq!(d.events.len(), 8);
        let pred = oneliner_predict(&d, 4.0);
        let labels = d.test_labels();
        // Every event is hit by the threshold detector.
        for ev in &d.events {
            let hit = (ev.start..ev.end).any(|i| pred[i - d.train_end]);
            assert!(hit, "event {ev:?} missed");
        }
        // And false positives are rare.
        let fp = pred
            .iter()
            .zip(&labels)
            .filter(|(p, l)| **p && !**l)
            .count();
        assert!(fp < 30, "{fp} false positives");
    }

    #[test]
    fn swat_density_is_unrealistically_high() {
        let d = swat_like(2, 3000, 6000, 5);
        let density = d.anomaly_density();
        assert!(
            density > 0.10,
            "SWaT-like density should exceed 10%, got {density}"
        );
    }

    #[test]
    fn train_split_is_clean() {
        for d in [kpi_like(3, 1500, 2500, 6), swat_like(3, 1500, 2500, 4)] {
            assert!(d.events.iter().all(|e| e.start >= d.train_end));
            // Train split max |z| stays moderate.
            let m = tsops::stats::mean(d.train());
            let s = tsops::stats::std_dev(d.train());
            let maxz = d
                .train()
                .iter()
                .map(|v| ((v - m) / s).abs())
                .fold(0.0f64, f64::max);
            assert!(maxz < 5.0, "{}: train max z {maxz}", d.name);
        }
    }

    #[test]
    fn labels_match_events() {
        let d = kpi_like(4, 1000, 2000, 5);
        let labels = d.test_labels();
        let total: usize = d.events.iter().map(|e| e.len()).sum();
        assert_eq!(labels.iter().filter(|&&b| b).count(), total);
    }

    #[test]
    fn from_ucr_round_trip() {
        let u = crate::archive::generate_dataset(5, 7);
        let l = from_ucr(&u);
        assert_eq!(l.test_labels(), u.test_labels());
        assert_eq!(l.train(), u.train());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(kpi_like(9, 500, 500, 3), kpi_like(9, 500, 500, 3));
        assert_eq!(swat_like(9, 500, 500, 2), swat_like(9, 500, 500, 2));
    }
}
