//! `triad-lint` — workspace-aware static analysis for the TriAD codebase.
//!
//! A self-contained analyzer (no external parser): a hand-rolled byte-level
//! Rust tokenizer ([`tokenizer`]), per-file analysis context with test-region
//! detection and `lint-allow` suppressions ([`context`]), a catalog of
//! numeric-safety / panic-hygiene / concurrency rules ([`rules`]) and a
//! workspace walker with human/JSON output and a fixture self-test
//! ([`engine`]).
//!
//! The binary (`cargo run -p triad-lint`) is the CI entry point; the library
//! surface exists so integration tests can drive the same engine.

#![forbid(unsafe_code)]

pub mod context;
pub mod engine;
pub mod rules;
pub mod tokenizer;

pub use context::{FileClass, FileContext, Suppression};
pub use engine::{fixture_self_test, lint_one, run, FileReport, FixtureOutcome, Options};
pub use rules::{Diagnostic, RULES};
