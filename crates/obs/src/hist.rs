//! Lock-free fixed-bucket histogram with bucket-derived quantiles.
//!
//! Moved here from `triad-stream` so serve and stream share one
//! implementation (both re-export it; `stats` output is byte-identical to
//! the pre-move rendering). Every hot-path update is one relaxed atomic op;
//! snapshots tolerate torn reads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-bucket histogram with bucket-derived quantile estimates.
pub struct Histogram {
    /// Upper bounds, ascending; values beyond the last bound land in a final
    /// overflow bucket.
    bounds: &'static [u64],
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        // relaxed-ok: independent monotone counters; no cross-counter ordering
        // is observable and snapshot readers tolerate torn totals.
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: same monotone-tally argument as the bucket above.
        self.sum.fetch_add(value, Ordering::Relaxed);
        // relaxed-ok: same monotone-tally argument as the bucket above.
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        // relaxed-ok: monitoring read of one counter; staleness is fine.
        self.total.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            // relaxed-ok: approximate snapshot; sum/count may be torn by a
            // concurrent observe, which only perturbs the reported mean.
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Bucket-derived quantile estimate for `q ∈ [0, 1]`: linear
    /// interpolation inside the bucket holding the target rank; the
    /// overflow bucket reports the last finite bound (the classic
    /// `histogram_quantile` convention). 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Consistent-enough copy of the current state for rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            counts: self
                .counts
                .iter()
                // relaxed-ok: stats snapshot; buckets may be torn vs. totals.
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            // relaxed-ok: stats snapshot, same as the buckets above.
            sum: self.sum.load(Ordering::Relaxed),
            // relaxed-ok: stats snapshot, same as the buckets above.
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds; `counts` has one extra overflow entry.
    pub bounds: &'static [u64],
    pub counts: Vec<u64>,
    pub sum: u64,
    pub total: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, at least 1.
        let rank = (q * total as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c;
            if (next as f64) >= rank && c > 0 {
                let lo = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                if i >= self.bounds.len() {
                    // Overflow bucket has no upper bound: report the last
                    // finite bound rather than inventing one.
                    return lo;
                }
                let hi = self.bounds[i] as f64;
                let into = (rank - cum as f64) / c as f64;
                return lo + (hi - lo) * into;
            }
            cum = next;
        }
        self.bounds.last().copied().unwrap_or(0) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10, 100, 1000]);
        // 100 observations spread evenly through (10, 100].
        for _ in 0..100 {
            h.observe(50);
        }
        let p50 = h.quantile(0.5);
        // Rank 50 of 100, all in bucket (10, 100]: 10 + 90·(50/100) = 55.
        assert!((p50 - 55.0).abs() < 1e-9, "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 - (10.0 + 90.0 * 0.99)).abs() < 1e-9, "p99 {p99}");
    }

    #[test]
    fn quantiles_cross_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        for _ in 0..50 {
            h.observe(5); // bucket ≤10
        }
        for _ in 0..40 {
            h.observe(60); // bucket (10, 100]
        }
        for _ in 0..10 {
            h.observe(5000); // overflow
        }
        assert!(h.quantile(0.25) <= 10.0);
        let p80 = h.quantile(0.8);
        assert!(p80 > 10.0 && p80 <= 100.0, "p80 {p80}");
        // Overflow bucket reports the last finite bound.
        assert!((h.quantile(0.999) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_empty_and_extremes() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(3);
        assert!(h.quantile(0.0) >= 0.0);
        assert!(h.quantile(1.0) <= 10.0);
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_matches_live_state() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 11, 12, 500] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.total, 4);
        assert_eq!(s.sum, 524);
        assert_eq!(s.counts, vec![1, 2, 1]);
        assert!((s.mean() - 131.0).abs() < 1e-9);
        assert!((s.quantile(0.5) - h.quantile(0.5)).abs() < 1e-12);
    }
}
