//! Anomaly injectors — the six families showcased in the paper's Fig. 16.
//!
//! Each injector mutates exactly the half-open `range` of the series and
//! nothing else, so the archive generator can guarantee the training prefix
//! stays clean. Magnitudes are calibrated against the local signal std so
//! anomalies are *non-trivial*: visible to a competent detector, invisible to
//! a `max(|x|) > τ` one-liner (the property that separates UCR from the
//! flawed benchmarks of Sec. II-B).

use crate::signal::gaussian;
use rand::Rng;
use std::ops::Range;
use tsaug::classic::resample_linear;

/// The six anomaly families of Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Unexpected fluctuations (added noise).
    Noise,
    /// Unexpected extension of stable behaviour (a plateau).
    Duration,
    /// Abrupt doubling of the inherent seasonality.
    Seasonal,
    /// Unanticipated rise inside the event.
    Trend,
    /// Lasting jump or drop.
    LevelShift,
    /// Normal shape locally distorted (time-reversed segment).
    Contextual,
}

impl AnomalyKind {
    pub const ALL: [AnomalyKind; 6] = [
        AnomalyKind::Noise,
        AnomalyKind::Duration,
        AnomalyKind::Seasonal,
        AnomalyKind::Trend,
        AnomalyKind::LevelShift,
        AnomalyKind::Contextual,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::Noise => "noise",
            AnomalyKind::Duration => "duration",
            AnomalyKind::Seasonal => "seasonal",
            AnomalyKind::Trend => "trend",
            AnomalyKind::LevelShift => "level_shift",
            AnomalyKind::Contextual => "contextual",
        }
    }
}

/// Inject an anomaly of `kind` into `series[range]`.
///
/// `local_std` should be the std of the clean signal (used to calibrate
/// magnitudes); `period` is the generating period (used by `Seasonal`).
pub fn inject<R: Rng>(
    rng: &mut R,
    series: &mut [f64],
    range: Range<usize>,
    kind: AnomalyKind,
    local_std: f64,
    period: usize,
) {
    assert!(range.end <= series.len(), "anomaly range out of bounds");
    assert!(!range.is_empty(), "empty anomaly range");
    let scale = local_std.max(1e-6);
    let seg = &mut series[range.clone()];
    let n = seg.len();
    match kind {
        AnomalyKind::Noise => {
            // 0.8–1.5× the signal std: clearly rougher, not clipped spikes.
            let sigma = scale * (0.8 + 0.7 * rng.random::<f64>());
            for v in seg.iter_mut() {
                *v += gaussian(rng) * sigma;
            }
        }
        AnomalyKind::Duration => {
            // Hold the segment's first value with a faint noise floor.
            let level = seg[0];
            let sigma = scale * 0.03;
            for v in seg.iter_mut() {
                *v = level + gaussian(rng) * sigma;
            }
        }
        AnomalyKind::Seasonal => {
            // Double the local frequency: compress the segment 2× in time and
            // tile it. Uses the real samples so amplitude/noise texture match.
            let half = resample_linear(seg, (n / 2).max(1));
            let mut doubled = Vec::with_capacity(n);
            while doubled.len() < n {
                doubled.extend_from_slice(&half);
            }
            doubled.truncate(n);
            seg.copy_from_slice(&doubled);
            let _ = period; // period informs callers choosing range lengths
        }
        AnomalyKind::Trend => {
            // Ramp up to 1.5–2.5 σ across the event.
            let peak = scale * (1.5 + rng.random::<f64>());
            for (i, v) in seg.iter_mut().enumerate() {
                *v += peak * (i as f64 / n.max(1) as f64);
            }
        }
        AnomalyKind::LevelShift => {
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            let shift = sign * scale * (1.2 + 0.8 * rng.random::<f64>());
            for v in seg.iter_mut() {
                *v += shift;
            }
        }
        AnomalyKind::Contextual => {
            seg.reverse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn base(n: usize, p: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * PI * i as f64 / p as f64).sin()
                    + 0.4 * (4.0 * PI * i as f64 / p as f64).sin()
            })
            .collect()
    }

    #[test]
    fn injectors_touch_only_the_range() {
        for kind in AnomalyKind::ALL {
            let mut rng = StdRng::seed_from_u64(1);
            let x = base(400, 40);
            let mut y = x.clone();
            inject(&mut rng, &mut y, 150..220, kind, 0.7, 40);
            assert_eq!(&x[..150], &y[..150], "{kind:?} leaked left");
            assert_eq!(&x[220..], &y[220..], "{kind:?} leaked right");
            assert!(
                x[150..220].iter().zip(&y[150..220]).any(|(a, b)| a != b),
                "{kind:?} changed nothing"
            );
            assert!(y.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn anomalies_are_not_one_liner_trivial() {
        // Injected values must stay within the global min/max envelope
        // (±25%) so a magnitude threshold cannot find them.
        for kind in [
            AnomalyKind::Duration,
            AnomalyKind::Seasonal,
            AnomalyKind::Contextual,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut y = base(400, 40);
            let (lo, hi) = y
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            inject(&mut rng, &mut y, 150..220, kind, 0.7, 40);
            let margin = (hi - lo) * 0.25;
            for &v in &y[150..220] {
                assert!(
                    v >= lo - margin && v <= hi + margin,
                    "{kind:?} produced out-of-envelope value {v}"
                );
            }
        }
    }

    #[test]
    fn seasonal_doubles_local_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = 40;
        let mut y = base(800, p);
        inject(&mut rng, &mut y, 300..460, AnomalyKind::Seasonal, 0.7, p);
        // Zero crossings in the anomalous window vs a normal window of the
        // same length: roughly double.
        let crossings = |s: &[f64]| s.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
        let normal = crossings(&base(800, p)[300..460]);
        let anom = crossings(&y[300..460]);
        assert!(
            anom as f64 > normal as f64 * 1.5,
            "crossings {anom} vs normal {normal}"
        );
    }

    #[test]
    fn duration_flattens_the_segment() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut y = base(400, 40);
        inject(&mut rng, &mut y, 100..180, AnomalyKind::Duration, 0.7, 40);
        let seg = &y[100..180];
        assert!(tsops::stats::std_dev(seg) < 0.1);
    }

    #[test]
    fn level_shift_moves_the_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = base(400, 40);
        let mut y = x.clone();
        inject(&mut rng, &mut y, 200..280, AnomalyKind::LevelShift, 0.7, 40);
        let dm = tsops::stats::mean(&y[200..280]) - tsops::stats::mean(&x[200..280]);
        assert!(dm.abs() > 0.5, "shift {dm}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = base(300, 30);
        let mut b = base(300, 30);
        inject(
            &mut StdRng::seed_from_u64(9),
            &mut a,
            100..150,
            AnomalyKind::Noise,
            0.7,
            30,
        );
        inject(
            &mut StdRng::seed_from_u64(9),
            &mut b,
            100..150,
            AnomalyKind::Noise,
            0.7,
            30,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut y = base(100, 20);
        inject(&mut rng, &mut y, 90..120, AnomalyKind::Noise, 0.5, 20);
    }
}
