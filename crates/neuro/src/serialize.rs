//! Parameter persistence.
//!
//! A deliberately tiny little-endian binary format for saving and restoring
//! the parameters of a model (the layer structure itself is code, so loading
//! validates shapes against a freshly-built model rather than reconstructing
//! layers from the file):
//!
//! ```text
//! magic  b"NEURO1\n"
//! u32    parameter count
//! per parameter:
//!   u32      ndim
//!   u32×ndim dims
//!   f32×numel row-major values
//! ```

use crate::graph::Param;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 7] = b"NEURO1\n";

/// Checked narrowing into the format's u32 fields; the write side enforces
/// the same bound the read side validates.
fn format_u32(n: usize, what: &str) -> io::Result<u32> {
    u32::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} {n} exceeds the NEURO1 u32 field limit"),
        )
    })
}

/// Serialize parameter values (gradients are not persisted).
pub fn write_params<W: Write>(mut w: W, params: &[Param]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&format_u32(params.len(), "parameter count")?.to_le_bytes())?;
    for p in params {
        let pd = p.value();
        let shape = pd.value.shape();
        w.write_all(&format_u32(shape.len(), "ndim")?.to_le_bytes())?;
        for &d in shape {
            w.write_all(&format_u32(d, "dimension")?.to_le_bytes())?;
        }
        for &v in pd.value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Read a parameter file into standalone tensors.
pub fn read_tensors<R: Read>(mut r: R) -> io::Result<Vec<Tensor>> {
    let mut magic = [0u8; 7];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a NEURO1 parameter file",
        ));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible parameter count",
        ));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let ndim = read_u32(&mut r)? as usize;
        if ndim > 8 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "ndim > 8"));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(&mut r)? as usize);
        }
        let numel: usize = shape.iter().product();
        if numel > 256 << 20 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tensor too large",
            ));
        }
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        out.push(Tensor::from_vec(&shape, data));
    }
    Ok(out)
}

/// Load saved values into an existing (freshly-constructed) model's
/// parameters. Counts and shapes must match exactly.
pub fn load_params<R: Read>(r: R, params: &[Param]) -> io::Result<()> {
    let tensors = read_tensors(r)?;
    if tensors.len() != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: file {} vs model {}",
                tensors.len(),
                params.len()
            ),
        ));
    }
    for (t, p) in tensors.iter().zip(params) {
        if t.shape() != p.shape().as_slice() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch: file {:?} vs model {:?}",
                    t.shape(),
                    p.shape()
                ),
            ));
        }
    }
    for (t, p) in tensors.into_iter().zip(params) {
        p.borrow_mut().value = t;
        p.zero_grad();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut rng, 5, 3);
        let mut buf = Vec::new();
        write_params(&mut buf, &layer.params()).unwrap();

        let mut rng2 = StdRng::seed_from_u64(999); // different init
        let fresh = Linear::new(&mut rng2, 5, 3);
        assert_ne!(fresh.w.tensor(), layer.w.tensor());
        load_params(buf.as_slice(), &fresh.params()).unwrap();
        assert_eq!(fresh.w.tensor(), layer.w.tensor());
        assert_eq!(fresh.b.tensor(), layer.b.tensor());
    }

    #[test]
    fn rejects_wrong_magic_and_mismatches() {
        let err = read_tensors(&b"BOGUS!!rest"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut rng = StdRng::seed_from_u64(2);
        let a = Linear::new(&mut rng, 4, 2);
        let mut buf = Vec::new();
        write_params(&mut buf, &a.params()).unwrap();

        // Wrong shape target.
        let b = Linear::new(&mut rng, 4, 3);
        assert!(load_params(buf.as_slice(), &b.params()).is_err());
        // Wrong count target.
        let mut three = b.params();
        three.extend(a.params());
        assert!(load_params(buf.as_slice(), &three).is_err());
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Linear::new(&mut rng, 6, 6);
        let mut buf = Vec::new();
        write_params(&mut buf, &a.params()).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_tensors(buf.as_slice()).is_err());
    }
}
