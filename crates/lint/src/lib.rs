//! `triad-lint` — workspace-aware static analysis for the TriAD codebase.
//!
//! A self-contained analyzer (no external parser): a hand-rolled byte-level
//! Rust tokenizer ([`tokenizer`]), a total delimiter-tree parser over it
//! ([`parser`]), a scope/symbol pass resolving bindings and method-call
//! receivers ([`scope`]), per-file analysis context with test-region
//! detection and `lint-allow` suppressions ([`context`]), a catalog of
//! numeric-safety / panic-hygiene / concurrency / determinism rules
//! ([`rules`], [`determinism`]) and a workspace walker with human/JSON/SARIF
//! output, baseline filtering ([`baseline`]) and a fixture self-test
//! ([`engine`]).
//!
//! The binary (`cargo run -p triad-lint`) and the `triad lint` CLI verb are
//! the CI entry points; the library surface exists so integration tests and
//! `crates/cli` can drive the same engine.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod context;
pub mod determinism;
pub mod engine;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod scope;
pub mod tokenizer;

pub use context::{FileClass, FileContext, Suppression};
pub use engine::{fixture_self_test, lint_one, run, FileReport, FixtureOutcome, Options};
pub use rules::{Diagnostic, RULES};
