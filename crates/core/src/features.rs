//! Tri-domain feature extraction (Sec. III-B).
//!
//! Per window of length `L` the encoders consume:
//!
//! * **temporal** — the z-normalised raw window, 1 × L;
//! * **frequency** — Table I's amplitude / phase / power of the window's DFT,
//!   3 × L. Amplitude and power are `ln(1+x)`-compressed then z-normalised
//!   (raw spectral power spans orders of magnitude); phase is scaled by 1/π
//!   into `[-1, 1]`;
//! * **residual** — the window's classical-decomposition residual, 1 × L,
//!   scaled by the *training* residual std so residual-scale anomalies keep
//!   their magnitude (a per-window z-norm would erase exactly the signal this
//!   domain exists to carry).

use crate::Domain;
use neuro::Tensor;
use tsops::decompose::residual_of;
use tsops::spectral::spectral_features;
use tsops::stats::{std_dev, znormalize};

/// Fitted feature extractor. `fit` learns the residual scale from the
/// anomaly-free training split; extraction is then deterministic per window.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExtractor {
    /// Fundamental period (samples), estimated upstream.
    pub period: usize,
    /// Training residual std (scale anchor for the residual domain).
    pub residual_scale: f64,
}

impl FeatureExtractor {
    /// Fit on the training split: estimates the residual scale over the whole
    /// split at once.
    pub fn fit(train: &[f64], period: usize) -> Self {
        assert!(period >= 2, "period must be ≥ 2");
        let res = residual_of(train, period);
        let scale = std_dev(&res).max(1e-6);
        FeatureExtractor {
            period,
            residual_scale: scale,
        }
    }

    /// Extract one domain's channels for a window. Every channel has the
    /// window's length.
    pub fn extract(&self, window: &[f64], domain: Domain) -> Vec<Vec<f64>> {
        match domain {
            Domain::Temporal => vec![znormalize(window)],
            Domain::Frequency => {
                let f = spectral_features(window);
                let amp: Vec<f64> = f.amplitude.iter().map(|&a| (1.0 + a).ln()).collect();
                let pow: Vec<f64> = f.power.iter().map(|&p| (1.0 + p).ln()).collect();
                let phase: Vec<f64> = f.phase.iter().map(|&p| p / std::f64::consts::PI).collect();
                vec![znormalize(&amp), phase, znormalize(&pow)]
            }
            Domain::Residual => {
                let res = residual_of(window, self.period.min(window.len().max(1)));
                vec![res.iter().map(|&r| r / self.residual_scale).collect()]
            }
        }
    }

    /// Stack a batch of windows into the `[B, C, L]` tensor the encoder
    /// consumes. All windows must share one length.
    ///
    /// Featurization is per-window pure, so windows are extracted in
    /// parallel (ambient thread count) and assembled in index order —
    /// bit-identical to the serial loop at any worker count.
    pub fn batch_tensor(&self, windows: &[&[f64]], domain: Domain) -> Tensor {
        assert!(!windows.is_empty(), "empty batch");
        let l = windows[0].len();
        let c = domain.channels();
        for w in windows {
            assert_eq!(w.len(), l, "ragged batch");
        }
        let par = parallel::ambient().for_work(windows.len(), 4);
        // Each worker writes its windows' rows straight into the batch
        // buffer (no per-row intermediate, no reassembly copy); row content
        // depends only on the window index, so the fill is bit-identical at
        // any worker count.
        let mut data = vec![0.0f32; windows.len() * c * l];
        parallel::fill_rows(par, &mut data, c * l, |rows, chunk| {
            for (i, row) in rows.zip(chunk.chunks_mut(c * l)) {
                let chans = self.extract(windows[i], domain);
                debug_assert_eq!(chans.len(), c);
                for (ch, dst) in chans.iter().zip(row.chunks_mut(l)) {
                    for (d, &v) in dst.iter_mut().zip(ch) {
                        *d = v as f32;
                    }
                }
            }
        });
        Tensor::from_vec(&[windows.len(), c, l], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn wave(n: usize, p: f64) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * i as f64 / p).sin()).collect()
    }

    #[test]
    fn channel_counts_and_lengths() {
        let fx = FeatureExtractor::fit(&wave(400, 40.0), 40);
        let w = wave(100, 40.0);
        for d in Domain::ALL {
            let chans = fx.extract(&w, d);
            assert_eq!(chans.len(), d.channels(), "{d:?}");
            for ch in &chans {
                assert_eq!(ch.len(), 100);
                assert!(ch.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn temporal_is_znormalised() {
        let fx = FeatureExtractor::fit(&wave(400, 40.0), 40);
        let w: Vec<f64> = wave(100, 40.0).iter().map(|v| v * 3.0 + 7.0).collect();
        let t = &fx.extract(&w, Domain::Temporal)[0];
        assert!(tsops::stats::mean(t).abs() < 1e-9);
        assert!((tsops::stats::std_dev(t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_channel_is_bounded() {
        let fx = FeatureExtractor::fit(&wave(400, 40.0), 40);
        let chans = fx.extract(&wave(100, 40.0), Domain::Frequency);
        assert!(chans[1].iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn residual_scale_preserves_shift_magnitude() {
        let train = wave(800, 40.0);
        let fx = FeatureExtractor::fit(&train, 40);
        // A window with an injected residual spike keeps a big residual value.
        let mut w = wave(100, 40.0);
        w[50] += 2.0;
        let clean = fx.extract(&wave(100, 40.0), Domain::Residual)[0].clone();
        let spiked = fx.extract(&w, Domain::Residual)[0].clone();
        let max_clean = clean.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let max_spiked = spiked.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(
            max_spiked > max_clean * 3.0,
            "spike not preserved: {max_spiked} vs {max_clean}"
        );
    }

    #[test]
    fn frequency_features_separate_frequency_shift() {
        let fx = FeatureExtractor::fit(&wave(800, 40.0), 40);
        let normal = fx.batch_tensor(&[&wave(100, 40.0)], Domain::Frequency);
        let shifted = fx.batch_tensor(&[&wave(100, 20.0)], Domain::Frequency);
        // Amplitude channels must differ substantially.
        let diff: f32 = normal
            .data()
            .iter()
            .zip(shifted.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1.0, "freq features identical: {diff}");
    }

    #[test]
    fn batch_tensor_layout() {
        let fx = FeatureExtractor::fit(&wave(400, 40.0), 40);
        let w1 = wave(50, 25.0);
        let w2 = wave(50, 10.0);
        let t = fx.batch_tensor(&[&w1, &w2], Domain::Frequency);
        assert_eq!(t.shape(), &[2, 3, 50]);
        // First row/channel equals w1's first frequency channel.
        let ch = fx.extract(&w1, Domain::Frequency);
        for i in 0..50 {
            assert!((t.at3(0, 0, i) - ch[0][i] as f32).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        let fx = FeatureExtractor::fit(&wave(200, 20.0), 20);
        let a = wave(30, 20.0);
        let b = wave(40, 20.0);
        fx.batch_tensor(&[&a, &b], Domain::Temporal);
    }
}
