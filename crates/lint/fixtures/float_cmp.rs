//@ path: crates/cli/src/main.rs
//@ expect: float-cmp
// Seeded violation: force-unwrapped partial_cmp panics the sort on NaN.
fn main() {
    let mut v = vec![3.0f64, 1.0, f64::NAN];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("{:?}", v);
}
