//! Stream soak (bounded runtime, run by CI with `--ignored`): replay ucrgen
//! series through a live server at high rate across several streams, kill
//! the server after a mid-run checkpoint, restore into a fresh server over
//! the same directories, and require:
//!
//! * zero worker panics (every verb keeps answering, both servers shut down
//!   cleanly),
//! * zero checkpoint/CRC failures after the kill-and-restore,
//! * bit-identical restored stream state (poll snapshots match byte-for-byte),
//! * a final detection on close byte-equal to the offline `detect` over the
//!   same series.

mod common;

use common::{easy_dataset, push_with_retry, spawn_server, wait_for_seq, CLIENT_TIMEOUT};
use std::path::Path;
use triad_core::{persist, TriAd};
use triad_serve::{proto, Client, ServeConfig, Value};

const STREAMS: [&str; 3] = ["soak-a", "soak-b", "soak-c"];
const CHUNK: usize = 23; // deliberately off-stride

fn serve_cfg(models: &Path, ckpt: &Path) -> ServeConfig {
    ServeConfig {
        workers: 4,
        executors: 1,
        stream_shards: 2,
        // A shallow ingest queue so the high-rate replay actually exercises
        // backpressure; the pusher resends shed chunks.
        stream_queue: 8,
        stream_checkpoint_dir: Some(ckpt.to_path_buf()),
        ..common::ephemeral_serve_cfg(models)
    }
}

/// Canonical render of a poll response: every status field, none of the
/// per-request envelope (id), so snapshots compare across connections and
/// server restarts.
fn canonical_status(resp: &Value) -> String {
    [
        "stream",
        "seq",
        "retained",
        "evicted",
        "windows_scored",
        "last_deviance",
        "anomalous",
        "events",
        "live",
        "rejected_nonfinite",
    ]
    .iter()
    .map(|k| format!("{k}={}", resp.get(k).cloned().unwrap_or(Value::Null)))
    .collect::<Vec<_>>()
    .join(";")
}

fn checkpoint_failures(ctl: &mut Client) -> u64 {
    let stats = ctl.stats().expect("stats");
    let shards = stats
        .get("streams")
        .and_then(|s| s.get("shards"))
        .and_then(Value::as_arr)
        .expect("streams.shards in stats");
    shards
        .iter()
        .map(|s| {
            s.get("checkpoint_failures")
                .and_then(Value::as_u64)
                .expect("checkpoint_failures counter")
        })
        .sum()
}

#[test]
#[ignore = "soak test: run explicitly (CI does) with --ignored"]
fn soak_replay_kill_restore_matches_offline() {
    let models = common::tmp_dir_created("soak_models");
    let ckpts = common::tmp_dir_created("soak_ckpts");

    // Ground truth: a quickly fitted model over an archive dataset, saved
    // where the server's model loader will find it.
    let ds = easy_dataset();
    let fitted = TriAd::new(common::quick_cfg(0))
        .fit(ds.train())
        .expect("fit");
    persist::save_file(&models.join("soak.triad"), &fitted).expect("save model");
    let test = ds.test().to_vec();
    let offline = fitted.detect(&test);
    let cut = test.len() / 2 + 3; // off-stride

    // --- server 1: open streams, replay the first half at high rate -------
    let (handle, addr) = spawn_server(serve_cfg(&models, &ckpts));
    let mut ctl = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
    let mut resent_total = 0u64;
    for name in STREAMS {
        ctl.stream_open(name, "soak").expect("stream.open");
        resent_total += push_with_retry(&mut ctl, name, &test[..cut], CHUNK);
    }
    let mut snapshots = Vec::new();
    for name in STREAMS {
        wait_for_seq(&mut ctl, name, cut as u64);
    }
    // Checkpoint everything mid-run, then snapshot each stream's state.
    let written = ctl
        .stream_checkpoint(None)
        .expect("stream.checkpoint")
        .get("written")
        .and_then(Value::as_u64);
    assert_eq!(written, Some(STREAMS.len() as u64));
    for name in STREAMS {
        let status = ctl.stream_poll(name).expect("stream.poll");
        snapshots.push(canonical_status(&status));
    }
    assert_eq!(checkpoint_failures(&mut ctl), 0);
    // Kill the server (graceful: its manager checkpoints again on drop).
    ctl.shutdown().expect("shutdown");
    handle.wait();

    // --- server 2 over the same directories: restore, finish, close -------
    let (handle, addr) = spawn_server(serve_cfg(&models, &ckpts));
    let mut ctl = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
    let listed = ctl.stream_list().expect("stream.list");
    let names: Vec<&str> = listed
        .get("streams")
        .and_then(Value::as_arr)
        .expect("streams")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(names, STREAMS, "restored stream set differs");
    assert_eq!(checkpoint_failures(&mut ctl), 0, "restore hit CRC failures");

    for (name, before) in STREAMS.iter().zip(&snapshots) {
        let after = ctl.stream_poll(name).expect("poll restored");
        assert_eq!(
            &canonical_status(&after),
            before,
            "restored state of {name} is not bit-identical"
        );
    }

    // Finish the replay and close: the restart must be invisible in the
    // final detection, which must equal the offline result byte-for-byte.
    let expected_det: Vec<String> = STREAMS
        .iter()
        .map(|name| proto::detection_fields(name, &offline).to_string())
        .collect();
    for name in STREAMS {
        resent_total += push_with_retry(&mut ctl, name, &test[cut..], CHUNK);
    }
    for (name, expected) in STREAMS.iter().zip(&expected_det) {
        wait_for_seq(&mut ctl, name, test.len() as u64);
        let report = ctl.stream_close(name).expect("stream.close");
        assert_eq!(
            report.get("finalize_error").cloned(),
            Some(Value::Null),
            "finalize failed for {name}"
        );
        let got = report
            .get("detection")
            .expect("detection in close response")
            .to_string();
        assert_eq!(&got, expected, "{name}: online detection != offline");
    }

    // No samples lost end to end: everything shed by backpressure was
    // resent, nothing was rejected, no worker died.
    let stats = ctl.stats().expect("stats");
    let shards = stats
        .get("streams")
        .and_then(|s| s.get("shards"))
        .and_then(Value::as_arr)
        .expect("shards");
    let nonfinite: u64 = shards
        .iter()
        .map(|s| s.get("dropped_nonfinite").and_then(Value::as_u64).unwrap())
        .sum();
    assert_eq!(nonfinite, 0);
    eprintln!(
        "soak: {} streams x {} points, {} chunk resends under backpressure",
        STREAMS.len(),
        test.len(),
        resent_total
    );
    ctl.shutdown().expect("shutdown 2");
    handle.wait();
    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&ckpts);
}
