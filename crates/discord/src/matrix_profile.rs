//! Exact (brute-force) matrix profile.
//!
//! The matrix profile of a series at subsequence length `w` stores, for every
//! subsequence, the z-normalised distance to its nearest non-trivially-
//! matching neighbour and that neighbour's index. Quadratic but exact; DRAG
//! and MERLIN are validated against it in tests, and it backs the
//! "pairwise-similarity baseline" timing comparison of Table IV.

use crate::Discord;
use tsops::distance::ZnormSeries;

/// Matrix profile values and indices.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// `profile[i]` = NN distance of the subsequence starting at `i`.
    pub profile: Vec<f64>,
    /// `index[i]` = start of that nearest neighbour (usize::MAX if none).
    pub index: Vec<usize>,
    /// Subsequence length.
    pub w: usize,
}

impl MatrixProfile {
    /// Top-1 discord (arg-max of the profile). `None` when the profile is
    /// empty or no subsequence has an admissible neighbour.
    pub fn top_discord(&self) -> Option<Discord> {
        self.profile
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &d)| Discord {
                index: i,
                length: self.w,
                distance: d,
            })
    }

    /// Top-k non-overlapping discords, greedily: repeatedly take the largest
    /// remaining profile entry and mask out its exclusion zone.
    pub fn top_discords(&self, k: usize) -> Vec<Discord> {
        let mut masked = self.profile.clone();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let Some((i, &d)) = masked
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite() && **d >= 0.0)
                .max_by(|a, b| a.1.total_cmp(b.1))
            else {
                break;
            };
            if d < 0.0 {
                break;
            }
            out.push(Discord {
                index: i,
                length: self.w,
                distance: d,
            });
            let lo = i.saturating_sub(self.w);
            let hi = (i + self.w).min(masked.len());
            for v in &mut masked[lo..hi] {
                *v = f64::NEG_INFINITY;
            }
        }
        out
    }
}

/// Compute the full matrix profile by brute force.
pub fn matrix_profile(series: &[f64], w: usize) -> MatrixProfile {
    let zs = ZnormSeries::new(series, w);
    let n = zs.count();
    let mut profile = vec![f64::INFINITY; n];
    let mut index = vec![usize::MAX; n];
    for i in 0..n {
        // Symmetry: only scan j > i, updating both ends.
        for j in (i + w)..n {
            let d = zs.dist_sq(i, j);
            if d < profile[i] {
                profile[i] = d;
                index[i] = j;
            }
            if d < profile[j] {
                profile[j] = d;
                index[j] = i;
            }
        }
    }
    for v in &mut profile {
        if v.is_finite() {
            *v = v.sqrt();
        }
    }
    MatrixProfile { profile, index, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn periodic_with_spike(n: usize, p: usize, spike_at: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * i as f64 / p as f64).sin())
            .collect();
        for (k, v) in x[spike_at..spike_at + 6].iter_mut().enumerate() {
            *v += 2.0 + k as f64 * 0.3;
        }
        x
    }

    #[test]
    fn profile_is_symmetric_consistent() {
        let x = periodic_with_spike(240, 24, 100);
        let mp = matrix_profile(&x, 24);
        // NN relation is consistent: profile[i] == dist(i, index[i]).
        let zs = ZnormSeries::new(&x, 24);
        for i in 0..mp.profile.len() {
            if mp.index[i] != usize::MAX {
                assert!((mp.profile[i] - zs.dist(i, mp.index[i])).abs() < 1e-9);
                assert!(mp.index[i].abs_diff(i) >= 24);
            }
        }
    }

    #[test]
    fn top_discord_covers_injected_anomaly() {
        let x = periodic_with_spike(300, 20, 150);
        let mp = matrix_profile(&x, 20);
        let d = mp.top_discord().unwrap();
        // Discord subsequence must intersect the spike region.
        assert!(
            d.index <= 155 && d.index + 20 >= 150,
            "discord at {} misses spike at 150",
            d.index
        );
    }

    #[test]
    fn profile_of_pure_periodic_signal_is_near_zero() {
        let x: Vec<f64> = (0..400)
            .map(|i| (2.0 * PI * i as f64 / 40.0).sin())
            .collect();
        let mp = matrix_profile(&x, 40);
        let max = mp.profile.iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 1e-3, "max profile {max}");
    }

    #[test]
    fn top_discords_do_not_overlap() {
        let mut x = periodic_with_spike(400, 25, 100);
        for v in &mut x[300..308] {
            *v -= 3.0;
        }
        let mp = matrix_profile(&x, 25);
        let ds = mp.top_discords(2);
        assert_eq!(ds.len(), 2);
        assert!(ds[0].index.abs_diff(ds[1].index) >= 25);
        assert!(ds[0].distance >= ds[1].distance);
    }

    #[test]
    fn short_series_yields_empty_or_trivial_profile() {
        let mp = matrix_profile(&[1.0, 2.0, 3.0], 3);
        assert_eq!(mp.profile.len(), 1);
        assert!(mp.top_discord().is_none()); // infinite profile filtered out
    }
}
