//! Observability substrate: structured tracing, the shared monotonic clock,
//! and the fixed-bucket histogram every other runtime crate re-exports.
//!
//! Design constraints (see DESIGN.md "Observability layer"):
//!
//! * **Zero dependencies.** `obs` sits below `core`, `serve`, `stream` and
//!   `parallel` in the crate graph, so it uses nothing but std — including
//!   its own minimal JSON reader ([`json`]) for round-trip validation of
//!   exported traces.
//! * **Near-zero disabled path.** Every instrumentation macro-free entry
//!   point ([`span`], [`span_with_parent`], [`record_span`]) starts with a
//!   single relaxed atomic load; when tracing is off nothing else runs — no
//!   allocation, no clock read, no thread-local touch.
//! * **Lock-free hot path when enabled.** Finished spans land in a bounded
//!   per-thread buffer (plain `thread_local!`, no locks, no atomics beyond
//!   the global id/tally counters). The buffer drains into a global
//!   collector only when the thread's span stack empties — a short `Mutex`
//!   push between units of work, never while a span is open. A full buffer
//!   drops new records and counts them ([`spans_dropped`]) rather than
//!   blocking.
//!
//! Tracing toggles via the `TRIAD_TRACE` environment variable (read once,
//! lazily) or programmatically via [`set_enabled`] /
//! `TriadConfig::trace` → [`enable_from_config`].

#![forbid(unsafe_code)]

pub mod clock;
pub mod export;
pub mod hist;
pub mod json;
pub mod trace;

pub use clock::{now_instant, now_ns};
pub use export::{
    parse_chrome, parse_jsonl, summarize, to_chrome, to_jsonl, validate, ParsedSpan, StageStats,
    Summary,
};
pub use hist::{Histogram, HistogramSnapshot};
pub use trace::{
    current_span_id, enable_from_config, enabled, flush_thread, record_span, set_enabled, span,
    span_with_parent, spans_dropped, spans_recorded, take_records, SpanGuard, SpanRecord,
};
