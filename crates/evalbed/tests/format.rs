//! Property tests over the evalbed JSONL result format: bit-exact field
//! round-trips, truncation/damage detection, and the resume invariant —
//! a crash-torn file never double-counts a completed pair and never drops
//! one whose row landed intact.

use evalbed::metrics::MetricSet;
use evalbed::rows::{append_rows, load_rows, ResultRow};
use evalbed::METRIC_NAMES;
use proptest::prelude::*;
use std::collections::HashSet;

/// Method names with hostile characters, exercising the string escaping.
const METHOD_POOL: [&str; 6] = [
    "triad",
    "lstm_ae_random",
    "quo\"te",
    "line\nbreak",
    "tab\there",
    "back\\slash",
];

fn make_row(
    method_pick: usize,
    dataset: usize,
    n_test: usize,
    values: &[f64],
    wall_ms: f64,
) -> ResultRow {
    let mut metrics = [0.0f64; METRIC_NAMES.len()];
    for (slot, v) in metrics.iter_mut().zip(values) {
        *slot = *v;
    }
    ResultRow {
        method: METHOD_POOL[method_pick % METHOD_POOL.len()].to_string(),
        dataset,
        dataset_name: format!("{dataset:03}_sine_noise"),
        anomaly_kind: "Noise".to_string(),
        n_test,
        metrics: MetricSet { values: metrics },
        wall_ms,
    }
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "evalbed_fmt_{tag}_{}_{n}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Serialize → parse reproduces every field exactly; floats bit-for-bit.
    #[test]
    fn round_trip_is_field_exact(
        method_pick in 0usize..6,
        dataset in 1usize..=250,
        n_test in 1usize..10_000,
        values in prop::collection::vec(0.0f64..1.0, 16..17),
        wall_ms in 0.0f64..1e6,
    ) {
        let row = make_row(method_pick, dataset, n_test, &values, wall_ms);
        let line = row.to_line();
        let back = ResultRow::parse_line(&line).expect("intact line parses");
        prop_assert_eq!(&back.method, &row.method);
        prop_assert_eq!(back.dataset, row.dataset);
        prop_assert_eq!(&back.dataset_name, &row.dataset_name);
        prop_assert_eq!(&back.anomaly_kind, &row.anomaly_kind);
        prop_assert_eq!(back.n_test, row.n_test);
        for (a, b) in row.metrics.values.iter().zip(&back.metrics.values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(row.wall_ms.to_bits(), back.wall_ms.to_bits());
    }

    /// Any strict prefix of a line fails to parse — a torn final line can
    /// never masquerade as a completed task.
    #[test]
    fn every_truncation_is_rejected(
        method_pick in 0usize..6,
        dataset in 1usize..=250,
        values in prop::collection::vec(0.0f64..1.0, 16..17),
        frac in 0.0f64..1.0,
    ) {
        let row = make_row(method_pick, dataset, 640, &values, 3.25);
        let line = row.to_line();
        let cut = ((line.len() as f64 * frac) as usize).min(line.len() - 1);
        prop_assert!(ResultRow::parse_line(&line[..cut]).is_err(), "cut {cut}");
    }

    /// Mutating any single byte of the line is caught — by the CRC over the
    /// body, or by the trailer grammar for bytes inside the CRC hex itself.
    #[test]
    fn single_byte_damage_is_rejected(
        method_pick in 0usize..6,
        dataset in 1usize..=250,
        values in prop::collection::vec(0.0f64..1.0, 16..17),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..255,
    ) {
        let row = make_row(method_pick, dataset, 640, &values, 3.25);
        let line = row.to_line();
        let mut bytes = line.clone().into_bytes();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] = bytes[pos].wrapping_add(delta);
        match String::from_utf8(bytes) {
            // Invalid UTF-8 never reaches the parser in the real loader
            // (read_to_string rejects the file) — counts as rejected.
            Err(_) => {}
            Ok(damaged) => {
                if damaged != line {
                    prop_assert!(ResultRow::parse_line(&damaged).is_err(), "pos {pos}");
                }
            }
        }
    }

    /// The resume invariant on a crash-shaped file: intact rows are all
    /// recovered exactly once (first wins for duplicate keys), the torn tail
    /// is dropped, and what's missing is exactly what a resume re-runs.
    #[test]
    fn torn_file_recovery_never_drops_or_double_counts(
        datasets in prop::collection::vec(1usize..250, 1..12),
        seeds in prop::collection::vec(0.0f64..1.0, 1..12),
        dup_first in any::<bool>(),
        tear in 1usize..64,
    ) {
        // Distinct keys: one row per distinct dataset id.
        let mut ids: Vec<usize> = datasets.clone();
        ids.sort_unstable();
        ids.dedup();
        let rows: Vec<ResultRow> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let v = seeds[i % seeds.len()];
                let values: Vec<f64> = (0..16).map(|j| (v + j as f64 / 16.0) % 1.0).collect();
                make_row(i, id, 100 + id, &values, v * 100.0)
            })
            .collect();

        let path = tmp_path("torn");
        append_rows(&path, &rows).expect("append");
        if dup_first {
            // A re-run that appended one duplicate before dying.
            append_rows(&path, &rows[..1]).expect("append dup");
        }
        // Tear the end of the file mid-line, as a kill would.
        let text = std::fs::read_to_string(&path).expect("read");
        let torn_len = text.len().saturating_sub(tear).max(1);
        std::fs::write(&path, &text[..torn_len]).expect("tear");

        let loaded = load_rows(&path).expect("load");
        std::fs::remove_file(&path).ok();

        // No key appears twice.
        let mut seen = HashSet::new();
        for r in &loaded.rows {
            prop_assert!(seen.insert(r.key()), "double-counted {:?}", r.key());
        }
        // Every recovered row is value-faithful to its original.
        for r in &loaded.rows {
            let original = rows.iter().find(|o| o.key() == r.key()).expect("known key");
            prop_assert_eq!(&original.method, &r.method);
            for (a, b) in original.metrics.values.iter().zip(&r.metrics.values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Rows whose line the tear did not reach must all be present — only
        // the torn suffix may be missing.
        let recovered: HashSet<_> = loaded.rows.iter().map(ResultRow::key).collect();
        let mut offset = 0usize;
        for row in &rows {
            let line_end = offset + row.to_line().len() + 1; // +\n
            if line_end <= torn_len {
                prop_assert!(
                    recovered.contains(&row.key()),
                    "intact row {:?} was dropped", row.key()
                );
            }
            offset = line_end;
        }
    }
}

#[test]
fn metric_names_match_schema_width() {
    // The fixed-width value vectors above must track the schema.
    assert_eq!(METRIC_NAMES.len(), 16);
}
