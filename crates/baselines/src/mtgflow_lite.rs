//! MTGFlow-lite (after Zhou et al., AAAI 2023).
//!
//! Mechanism kept: a normalizing flow models the density of normal window
//! features; anomalies live in low-density regions, so the score is the
//! negative log-likelihood. The original couples an entity-aware graph with
//! per-entity flows — meaningless for univariate UCR data, so the flow here
//! is a stack of RealNVP affine couplings over fixed-size window features
//! (the window resampled to `features` points, z-normalised), trained by
//! maximum likelihood under a standard-normal base.
//!
//! Table III behaviour preserved: density models flag broadly wherever the
//! test distribution drifts → high recall, weak precision (Fig. 14's false
//! positives).

use crate::common::{make_segmenter, scatter_window_scores, znorm_windows};
use crate::Detector;
use neuro::graph::{Graph, NodeId};
use neuro::layers::AffineCoupling;
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// MTGFlow-lite configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtgFlowConfig {
    /// Feature dimension (window resampled to this many points; even).
    pub features: usize,
    /// Number of coupling layers (alternating halves).
    pub couplings: usize,
    /// Hidden width of each coupling's conditioner MLP.
    pub hidden: usize,
    pub epochs: usize,
    pub batch: usize,
    pub lr: f64,
    pub seed: u64,
}

impl Default for MtgFlowConfig {
    fn default() -> Self {
        MtgFlowConfig {
            features: 16,
            couplings: 4,
            hidden: 32,
            epochs: 10,
            batch: 8,
            lr: 1e-3,
            seed: 0,
        }
    }
}

pub struct MtgFlowLite {
    pub cfg: MtgFlowConfig,
}

impl MtgFlowLite {
    pub fn new(cfg: MtgFlowConfig) -> Self {
        assert!(cfg.features % 2 == 0, "features must be even");
        MtgFlowLite { cfg }
    }
}

struct Flow {
    layers: Vec<AffineCoupling>,
    features: usize,
}

impl Flow {
    fn new(rng: &mut StdRng, cfg: &MtgFlowConfig) -> Self {
        let layers = (0..cfg.couplings)
            .map(|i| AffineCoupling::new(rng, cfg.features, cfg.hidden, i % 2 == 1))
            .collect();
        Flow {
            layers,
            features: cfg.features,
        }
    }

    fn params(&self) -> Vec<neuro::graph::Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Log-likelihood node `[B,1]` of a batch under the flow.
    fn log_prob(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut z = x;
        let mut logdet: Option<NodeId> = None;
        for layer in &self.layers {
            let (z2, ld) = layer.forward(g, z);
            z = z2;
            logdet = Some(match logdet {
                Some(acc) => g.add(acc, ld),
                None => ld,
            });
        }
        // log N(z; 0, I) = −½‖z‖² − (F/2)·ln 2π
        let sq = g.square(z);
        let ssq = g.row_sum(sq);
        let half = g.scale(ssq, -0.5);
        let c = -(self.features as f64 / 2.0) * (2.0 * std::f64::consts::PI).ln();
        let base = g.add_scalar(half, c as f32);
        match logdet {
            Some(ld) => g.add(base, ld),
            None => base,
        }
    }
}

/// Window → fixed-size feature vector.
fn featurize(window: &[f64], features: usize) -> Vec<f64> {
    let r = tsaug::classic::resample_linear(window, features);
    tsops::stats::znormalize(&r)
}

fn stack(feats: &[Vec<f64>], idxs: &[usize]) -> Tensor {
    let f = feats[idxs[0]].len();
    let mut data = Vec::with_capacity(idxs.len() * f);
    for &i in idxs {
        data.extend(feats[i].iter().map(|&v| v as f32));
    }
    Tensor::from_vec(&[idxs.len(), f], data)
}

impl Detector for MtgFlowLite {
    fn name(&self) -> String {
        "MTGFlow".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let seg = make_segmenter(train);
        let (_, slices) = znorm_windows(train, &seg);
        let feats: Vec<Vec<f64>> = slices
            .iter()
            .map(|w| featurize(w, self.cfg.features))
            .collect();

        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let flow = Flow::new(&mut rng, &self.cfg);
        let mut opt = Adam::new(flow.params(), self.cfg.lr as f32);

        let mut idxs: Vec<usize> = (0..feats.len()).collect();
        for _ in 0..self.cfg.epochs {
            idxs.shuffle(&mut rng);
            for chunk in idxs.chunks(self.cfg.batch) {
                let batch = stack(&feats, chunk);
                let mut g = Graph::new();
                let x = g.input(batch);
                let lp = flow.log_prob(&mut g, x);
                let mean_lp = g.mean_all(lp);
                let loss = g.neg(mean_lp); // maximise likelihood
                if g.value(loss).item().is_finite() {
                    g.backward(loss);
                    opt.step();
                } else {
                    opt.zero_grad();
                }
            }
        }

        // Score: −log p per test window, spread over covered points.
        let (windows, tslices) = znorm_windows(test, &seg);
        let tfeats: Vec<Vec<f64>> = tslices
            .iter()
            .map(|w| featurize(w, self.cfg.features))
            .collect();
        let mut scores = Vec::with_capacity(tfeats.len());
        for chunk in (0..tfeats.len()).collect::<Vec<_>>().chunks(32) {
            let batch = stack(&tfeats, chunk);
            let mut g = Graph::new();
            let x = g.input(batch);
            let lp = flow.log_prob(&mut g, x);
            for i in 0..chunk.len() {
                scores.push(-(g.value(lp).data()[i] as f64));
            }
        }
        scatter_window_scores(&windows, &scores, test.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn quick() -> MtgFlowConfig {
        MtgFlowConfig {
            features: 16,
            couplings: 3,
            hidden: 24,
            epochs: 10,
            batch: 4,
            ..Default::default()
        }
    }

    fn dataset() -> (Vec<f64>, Vec<f64>, std::ops::Range<usize>) {
        let p = 25.0;
        let full: Vec<f64> = (0..900).map(|i| (2.0 * PI * i as f64 / p).sin()).collect();
        let mut test = full[500..].to_vec();
        for i in 150..220 {
            test[i] = (2.0 * PI * i as f64 / 6.0).sin(); // frequency shift
        }
        (full[..500].to_vec(), test, 150..220)
    }

    #[test]
    fn featurize_is_fixed_size_and_normalised() {
        let f = featurize(&(0..55).map(|i| i as f64).collect::<Vec<_>>(), 16);
        assert_eq!(f.len(), 16);
        assert!(tsops::stats::mean(&f).abs() < 1e-9);
    }

    #[test]
    fn training_raises_normal_likelihood() {
        let (train, test, _) = dataset();
        // Untrained flow NLL on normal test windows vs trained.
        let mut untrained = MtgFlowLite::new(MtgFlowConfig {
            epochs: 0,
            ..quick()
        });
        let mut trained = MtgFlowLite::new(quick());
        let su = untrained.score(&train, &test);
        let st = trained.score(&train, &test);
        // Compare mean NLL over the *normal* prefix.
        let mu: f64 = su[..100].iter().sum::<f64>() / 100.0;
        let mt: f64 = st[..100].iter().sum::<f64>() / 100.0;
        assert!(mt < mu, "training did not raise likelihood: {mt} !< {mu}");
    }

    #[test]
    fn anomaly_gets_lower_density() {
        let (train, test, anom) = dataset();
        let s = MtgFlowLite::new(quick()).score(&train, &test);
        let in_mean: f64 = s[anom.clone()].iter().sum::<f64>() / anom.len() as f64;
        let out: Vec<f64> = s
            .iter()
            .enumerate()
            .filter(|(i, _)| !anom.contains(i))
            .map(|(_, &v)| v)
            .collect();
        let out_mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!(in_mean > out_mean, "NLL {in_mean} vs {out_mean}");
    }

    #[test]
    fn deterministic() {
        let (train, test, _) = dataset();
        let a = MtgFlowLite::new(quick()).score(&train, &test);
        let b = MtgFlowLite::new(quick()).score(&train, &test);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_features_rejected() {
        MtgFlowLite::new(MtgFlowConfig {
            features: 7,
            ..quick()
        });
    }
}
