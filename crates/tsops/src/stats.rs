//! Descriptive statistics and normalisation helpers.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population standard deviation; `0.0` for slices shorter than 1.
pub fn std_dev(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
}

/// Z-normalise in place: zero mean, unit variance. A (near-)constant slice is
/// zeroed rather than divided by ~0 — constant subsequences carry no shape
/// information and must not explode distances.
pub fn znormalize_mut(x: &mut [f64]) {
    let m = mean(x);
    let s = std_dev(x);
    if s < 1e-12 {
        for v in x.iter_mut() {
            *v = 0.0;
        }
    } else {
        let inv = 1.0 / s;
        for v in x.iter_mut() {
            *v = (*v - m) * inv;
        }
    }
}

/// Z-normalised copy of the input. See [`znormalize_mut`].
pub fn znormalize(x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    znormalize_mut(&mut out);
    out
}

/// Min–max scale to `[0, 1]`; constants map to `0.5`.
pub fn minmax_scale(x: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !(hi - lo).is_finite() || hi - lo < 1e-12 {
        return vec![0.5; x.len()];
    }
    let inv = 1.0 / (hi - lo);
    x.iter().map(|v| (v - lo) * inv).collect()
}

/// Rolling mean and standard deviation of every length-`w` subsequence,
/// computed in O(n) with compensated cumulative sums.
///
/// Returns `(means, stds)` of length `n − w + 1`. This is the backbone of the
/// z-normalised distance used throughout discord discovery; the `max(0)` guard
/// absorbs the tiny negative variances cumulative sums can produce.
pub fn rolling_mean_std(x: &[f64], w: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(w >= 1, "window must be ≥ 1");
    let n = x.len();
    if n < w {
        return (Vec::new(), Vec::new());
    }
    let count = n - w + 1;
    let mut means = Vec::with_capacity(count);
    let mut stds = Vec::with_capacity(count);

    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in &x[..w] {
        sum += v;
        sum_sq += v * v;
    }
    let wf = w as f64;
    for i in 0..count {
        let m = sum / wf;
        let var = (sum_sq / wf - m * m).max(0.0);
        means.push(m);
        stds.push(var.sqrt());
        if i + w < n {
            let out = x[i];
            let inc = x[i + w];
            sum += inc - out;
            sum_sq += inc * inc - out * out;
        }
    }
    (means, stds)
}

/// Autocorrelation at integer lags `0..=max_lag` (biased estimator,
/// normalised so `acf[0] == 1` when variance is non-zero).
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    let m = mean(x);
    let var: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
    let max_lag = max_lag.min(n.saturating_sub(1));
    let mut acf = Vec::with_capacity(max_lag + 1);
    if var < 1e-12 {
        acf.push(1.0);
        acf.extend(std::iter::repeat(0.0).take(max_lag));
        return acf;
    }
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += (x[i] - m) * (x[i + lag] - m);
        }
        acf.push(acc / var);
    }
    acf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[1.0, 1.0, 1.0])).abs() < 1e-15);
        assert!((std_dev(&[0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znorm_has_zero_mean_unit_std() {
        let x: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.1).sin() * 3.0 + 7.0)
            .collect();
        let z = znormalize(&x);
        assert!(mean(&z).abs() < 1e-10);
        assert!((std_dev(&z) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn znorm_of_constant_is_zero() {
        let z = znormalize(&[4.0; 10]);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn minmax_bounds() {
        let s = minmax_scale(&[3.0, -1.0, 5.0]);
        assert_eq!(s, vec![0.5 + 1.0 / 6.0, 0.0, 1.0]);
        assert_eq!(minmax_scale(&[2.0, 2.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn rolling_stats_match_direct_computation() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) * 0.5 - 2.0).collect();
        let w = 8;
        let (ms, ss) = rolling_mean_std(&x, w);
        assert_eq!(ms.len(), x.len() - w + 1);
        for i in 0..ms.len() {
            let seg = &x[i..i + w];
            assert!((ms[i] - mean(seg)).abs() < 1e-10);
            assert!((ss[i] - std_dev(seg)).abs() < 1e-10);
        }
    }

    #[test]
    fn rolling_stats_degenerate_cases() {
        let (m, s) = rolling_mean_std(&[1.0, 2.0], 5);
        assert!(m.is_empty() && s.is_empty());
        let (m, s) = rolling_mean_std(&[1.0, 2.0, 3.0], 3);
        assert_eq!(m.len(), 1);
        assert!((m[0] - 2.0).abs() < 1e-12);
        assert!(s[0] > 0.0);
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let p = 25usize;
        let x: Vec<f64> = (0..500)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / p as f64).sin())
            .collect();
        let acf = autocorrelation(&x, 100);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        // Local max at lag = p, and it should be large.
        assert!(acf[p] > 0.9);
        assert!(acf[p] > acf[p - 2] && acf[p] > acf[p + 2]);
    }

    #[test]
    fn acf_of_constant_is_defined() {
        let acf = autocorrelation(&[3.3; 20], 5);
        assert_eq!(acf[0], 1.0);
        assert!(acf[1..].iter().all(|&v| v == 0.0));
    }
}
