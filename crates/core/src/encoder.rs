//! The tri-domain encoder (Sec. III-B).
//!
//! Each domain owns a stack of [`neuro::layers::ResidualBlock`]s whose
//! dilation doubles per block (1, 2, 4, …), mapping `[B, C, L] → [B, h_d, L]`
//! with same padding throughout. A *projection head shared across the three
//! domains* ("two shared dense layers") then compresses the channel dimension
//! to one, yielding the window embedding `r ∈ ℝ^L`. The per-timestep dense
//! layers are realised as 1×1 convolutions — identical math, and the
//! `[B, h_d, L]` layout never needs permuting.
//!
//! Embeddings are L2-normalised rows (the InfoNCE stabilisation documented in
//! DESIGN.md) — similarity between windows is then a plain dot product.

use neuro::graph::{Graph, NodeId, Param};
use neuro::layers::{Conv1d, ResidualBlock};
use neuro::Tensor;
use rand::Rng;

/// One domain's dilated-convolution encoder.
pub struct DomainEncoder {
    blocks: Vec<ResidualBlock>,
}

impl DomainEncoder {
    /// `depth` residual blocks, `c_in → hidden` at the first block, dilation
    /// `2^i` at block `i`.
    pub fn new<R: Rng>(
        rng: &mut R,
        c_in: usize,
        hidden: usize,
        depth: usize,
        kernel: usize,
    ) -> Self {
        assert!(depth >= 1);
        let mut blocks = Vec::with_capacity(depth);
        for i in 0..depth {
            let cin = if i == 0 { c_in } else { hidden };
            // Cap the dilation so tiny windows still see in-bounds taps.
            let dilation = 1usize << i.min(10);
            blocks.push(ResidualBlock::new(rng, cin, hidden, kernel, dilation));
        }
        DomainEncoder { blocks }
    }

    /// `[B, C, L] → [B, hidden, L]`.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = x;
        for b in &self.blocks {
            h = b.forward(g, h);
        }
        h
    }

    pub fn params(&self) -> Vec<Param> {
        self.blocks.iter().flat_map(|b| b.params()).collect()
    }

    pub fn depth(&self) -> usize {
        self.blocks.len()
    }
}

/// The two dense layers shared across domains, as 1×1 convolutions:
/// `[B, h_d, L] → [B, 1, L] → [B, L]`, L2-normalised.
pub struct ProjectionHead {
    l1: Conv1d,
    l2: Conv1d,
}

impl ProjectionHead {
    pub fn new<R: Rng>(rng: &mut R, hidden: usize) -> Self {
        ProjectionHead {
            l1: Conv1d::new(rng, hidden, hidden, 1, 1),
            l2: Conv1d::new(rng, hidden, 1, 1, 1),
        }
    }

    /// `[B, hidden, L] → [B, L]` with unit-norm rows.
    pub fn forward(&self, g: &mut Graph, h: NodeId) -> NodeId {
        let bsz = g.value(h).shape()[0];
        let l = g.value(h).shape()[2];
        let z = self.l1.forward(g, h);
        let z = g.relu(z);
        let z = self.l2.forward(g, z);
        let flat = g.reshape(z, &[bsz, l]);
        g.l2_normalize_rows(flat)
    }

    pub fn params(&self) -> Vec<Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }
}

/// Run encoder + head outside any training loop and return the embedding
/// matrix `[B, L]` as a tensor (inference convenience).
pub fn embed(encoder: &DomainEncoder, head: &ProjectionHead, batch: Tensor) -> Tensor {
    let mut g = Graph::new();
    let x = g.input(batch);
    let h = encoder.forward(&mut g, x);
    let r = head.forward(&mut g, h);
    g.value(r).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoder_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = DomainEncoder::new(&mut rng, 3, 16, 4, 3);
        assert_eq!(enc.depth(), 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 30]));
        let h = enc.forward(&mut g, x);
        assert_eq!(g.value(h).shape(), &[2, 16, 30]);
    }

    #[test]
    fn head_produces_unit_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = DomainEncoder::new(&mut rng, 1, 8, 3, 3);
        let head = ProjectionHead::new(&mut rng, 8);
        let batch = neuro::init::he_normal(&mut rng, &[4, 1, 25], 25);
        let r = embed(&enc, &head, batch);
        assert_eq!(r.shape(), &[4, 25]);
        for i in 0..4 {
            let n: f32 = r.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {i} norm {n}");
        }
    }

    #[test]
    fn param_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = DomainEncoder::new(&mut rng, 1, 8, 2, 3);
        // Block 0: conv(1→8), conv(8→8), skip(1→8): 3 convs × 2 params.
        // Block 1: conv(8→8) × 2, no skip: 2 convs × 2 params.
        assert_eq!(enc.params().len(), 6 + 4);
        let head = ProjectionHead::new(&mut rng, 8);
        assert_eq!(head.params().len(), 4);
    }

    #[test]
    fn different_inputs_give_different_embeddings() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = DomainEncoder::new(&mut rng, 1, 8, 3, 3);
        let head = ProjectionHead::new(&mut rng, 8);
        let a = neuro::init::he_normal(&mut rng, &[1, 1, 40], 40);
        let b = neuro::init::he_normal(&mut rng, &[1, 1, 40], 40);
        let ra = embed(&enc, &head, a);
        let rb = embed(&enc, &head, b);
        let diff: f32 = ra
            .data()
            .iter()
            .zip(rb.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn deep_dilation_is_capped_for_stability() {
        let mut rng = StdRng::seed_from_u64(4);
        // depth 12 → dilation would hit 2^11; cap keeps it finite & runnable.
        let enc = DomainEncoder::new(&mut rng, 1, 4, 12, 3);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 16]));
        let h = enc.forward(&mut g, x);
        assert_eq!(g.value(h).shape(), &[1, 4, 16]);
    }
}
