//! Experiment harness shared by the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library holds the common
//! machinery: metric bundles, TriAD/baseline runners, a tiny CLI-flag
//! parser, crossbeam-scoped parallel map, and plain-text table/series
//! printers (figures are emitted as gnuplot-ready columns).
//!
//! Scale note: the paper trains 250 datasets × 5 seeds on GPUs; the binaries
//! default to a laptop-scale subset and expose `--datasets`, `--seeds`,
//! `--epochs` to reproduce the full protocol when compute allows. Defaults
//! and paper-scale flags are recorded per experiment in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod perf;

use baselines::Detector;
use evalkit::pak::PakAuc;
use evalkit::Prf;
use triad_core::{TriadConfig, TriadDetection};
use ucrgen::UcrDataset;

/// One row of a Table II/III-style result: every metric family the paper
/// reports for a model on one dataset.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricRow {
    pub pw: Prf,
    pub pa: Prf,
    pub pak: PakAuc,
    pub affiliation: Prf,
}

impl MetricRow {
    /// Compute all metric families from boolean predictions.
    pub fn from_predictions(pred: &[bool], labels: &[bool]) -> MetricRow {
        MetricRow {
            pw: evalkit::pointwise::prf(pred, labels),
            pa: evalkit::pa::prf_pa(pred, labels),
            pak: evalkit::pak::pak_auc(pred, labels),
            affiliation: evalkit::affiliation::affiliation_prf(pred, labels),
        }
    }

    /// Score-based models: binarise with the best-point-wise-F1 threshold
    /// (the most favourable protocol for the baselines; the paper likewise
    /// tunes each baseline's own thresholding).
    pub fn from_scores(scores: &[f64], labels: &[bool]) -> MetricRow {
        let (thr, _) = evalkit::threshold::best_f1(scores, labels);
        let pred = evalkit::threshold::apply(scores, thr);
        MetricRow::from_predictions(&pred, labels)
    }

    /// Deployment-style protocol (Table II): the threshold is calibrated on
    /// the model's *training-split* scores (mean + 3σ) — no test labels are
    /// consulted. This is what exposes the random-vs-trained pathology that
    /// the oracle best-F1 sweep hides.
    pub fn from_scores_calibrated(
        test_scores: &[f64],
        train_scores: &[f64],
        labels: &[bool],
    ) -> MetricRow {
        let m = train_scores.iter().sum::<f64>() / train_scores.len().max(1) as f64;
        let v = train_scores.iter().map(|s| (s - m) * (s - m)).sum::<f64>()
            / train_scores.len().max(1) as f64;
        let thr = m + 3.0 * v.sqrt();
        let pred = evalkit::threshold::apply(test_scores, thr);
        MetricRow::from_predictions(&pred, labels)
    }

    pub fn add_assign(&mut self, o: &MetricRow) {
        fn acc(a: &mut Prf, b: &Prf) {
            a.precision += b.precision;
            a.recall += b.recall;
            a.f1 += b.f1;
        }
        acc(&mut self.pw, &o.pw);
        acc(&mut self.pa, &o.pa);
        acc(&mut self.affiliation, &o.affiliation);
        self.pak.precision_auc += o.pak.precision_auc;
        self.pak.recall_auc += o.pak.recall_auc;
        self.pak.f1_auc += o.pak.f1_auc;
    }

    pub fn scale(&mut self, k: f64) {
        fn sc(a: &mut Prf, k: f64) {
            a.precision *= k;
            a.recall *= k;
            a.f1 *= k;
        }
        sc(&mut self.pw, k);
        sc(&mut self.pa, k);
        sc(&mut self.affiliation, k);
        self.pak.precision_auc *= k;
        self.pak.recall_auc *= k;
        self.pak.f1_auc *= k;
    }

    /// Mean over many rows.
    pub fn mean(rows: &[MetricRow]) -> MetricRow {
        let mut acc = MetricRow::default();
        for r in rows {
            acc.add_assign(r);
        }
        if !rows.is_empty() {
            acc.scale(1.0 / rows.len() as f64);
        }
        acc
    }
}

/// TriAD detection outcome on one dataset, with the window-accuracy
/// diagnostics Table III's footnote reports.
#[derive(Debug, Clone)]
pub struct TriadOutcome {
    pub metrics: MetricRow,
    /// Any of the (≤3) candidate windows intersects the anomaly ±window.
    pub tri_window_hit: bool,
    /// The selected single window intersects the anomaly ±window.
    pub single_window_hit: bool,
    pub detection: TriadDetection,
}

/// Run TriAD on one UCR dataset with the given config.
/// `Err` (untrainable series) is mapped to an all-zero outcome by callers
/// that need total counts.
pub fn run_triad(ds: &UcrDataset, cfg: &TriadConfig) -> Result<TriadOutcome, String> {
    let fitted = triad_core::TriAd::new(cfg.clone()).fit(ds.train())?;
    let det = fitted.detect(ds.test());
    let labels = ds.test_labels();
    let metrics = MetricRow::from_predictions(&det.prediction, &labels);
    let anomaly = ds.anomaly_in_test();
    let w = fitted.window_len();
    let near = |r: &std::ops::Range<usize>| evalkit::eventwise::event_detected(r, &anomaly, w);
    let tri_window_hit = det.candidates.iter().any(near);
    let single_window_hit = near(&det.selected_window);
    Ok(TriadOutcome {
        metrics,
        tri_window_hit,
        single_window_hit,
        detection: det,
    })
}

/// Run a score-based detector on one dataset with the oracle best-F1
/// threshold (upper-bounds the baseline).
pub fn run_detector(det: &mut dyn Detector, ds: &UcrDataset) -> MetricRow {
    let scores = det.score(ds.train(), ds.test());
    MetricRow::from_scores(&scores, &ds.test_labels())
}

/// Run a score-based detector with the deployment protocol: threshold
/// calibrated at mean + 3σ of the detector's own scores over the (normal)
/// training split. `factory` builds a fresh detector per pass so the two
/// scoring runs are independent and deterministic.
pub fn run_detector_calibrated(
    factory: &dyn Fn() -> Box<dyn Detector>,
    ds: &UcrDataset,
) -> MetricRow {
    let test_scores = factory().score(ds.train(), ds.test());
    let train_scores = factory().score(ds.train(), ds.train());
    MetricRow::from_scores_calibrated(&test_scores, &train_scores, &ds.test_labels())
}

/// Tiny flag parser: `--key value` pairs from `std::env::args`.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    pub fn parse() -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let val = argv.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), val));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Parallel map over items (order-preserving), delegating to the
/// deterministic pool: the thread count comes from `parallel::ambient()`
/// (TRIAD_THREADS / `with_ambient`), not a private `available_parallelism`
/// read, so bench runs honor the same single source of truth as the rest
/// of the workspace.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel::map_indexed(parallel::ambient(), items, |_, item| f(item))
}

/// Fixed-width table printer.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Print an (x, y) series in gnuplot-ready columns — the "figure" output
/// format of the fig* binaries.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, points: &[(f64, f64)]) {
    println!("\n# {title}");
    println!("# {xlabel}\t{ylabel}");
    for (x, y) in points {
        println!("{x:.6}\t{y:.6}");
    }
}

/// Format helpers.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let m = values.iter().sum::<f64>() / values.len() as f64;
    let v = values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / values.len() as f64;
    (m, v.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_row_from_predictions() {
        let labels = [false, true, true, false];
        let row = MetricRow::from_predictions(&[false, true, true, false], &labels);
        assert_eq!(row.pw.f1, 1.0);
        assert_eq!(row.pa.f1, 1.0);
        assert!((row.pak.f1_auc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metric_row_mean() {
        let a = MetricRow::from_predictions(&[true, false], &[true, false]);
        let b = MetricRow::from_predictions(&[false, false], &[true, false]);
        let m = MetricRow::mean(&[a, b]);
        assert!((m.pw.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn args_parse_defaults() {
        let a = Args {
            pairs: vec![("datasets".into(), "12".into())],
        };
        assert_eq!(a.get("datasets", 5usize), 12);
        assert_eq!(a.get("missing", 7usize), 7);
    }
}
