//@ path: crates/serve/src/fixture.rs
//@ expect: relaxed-ok
// Seeded violation: an unjustified Relaxed next to a justified one.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_justified(counter: &AtomicU64) {
    // relaxed-ok: monotonic counter, read only by the metrics reporter
    counter.fetch_add(1, Ordering::Relaxed);
}
