//! Deterministic, work-stealing-free data parallelism for the TriAD
//! workspace.
//!
//! The design goal is **thread-count invariance**: every combinator here
//! produces bit-identical results whether it runs on 1, 2, 4, or 8 workers,
//! so `TRIAD_THREADS` is a pure performance knob that can never change a
//! detection. Three rules make that hold:
//!
//! 1. **Static partitioning.** Work is split into contiguous index ranges
//!    decided only by `(n, workers)` — never by which worker finishes first.
//!    There is no work stealing and no shared counter; the schedule is a
//!    pure function of the input size.
//! 2. **Ordered assembly.** Results come back tagged with their input index
//!    (over a `crossbeam` channel) and are reassembled in index order, so
//!    the output vector is independent of completion order.
//! 3. **Caller-side exact reduction.** Combinators only *map*; any
//!    floating-point reduction stays at the call site, in a fixed serial
//!    order (or uses an exactly associative fold like `f64::min`).
//!
//! Thread counts are carried by an **ambient context** ([`with_ambient`])
//! rather than threaded through every call signature: pipeline entry points
//! set it once from their config, and the hot kernels deep inside `neuro`
//! pick it up with [`ambient`]. Worker threads are flagged so nested
//! parallel regions degrade to serial instead of oversubscribing.

pub mod reduce;

use std::cell::Cell;
use std::ops::Range;

/// Environment variable consulted when no explicit thread count is set
/// anywhere (config field 0 and no ambient override).
pub const THREADS_ENV: &str = "TRIAD_THREADS";

/// Upper bound applied to *auto-detected* parallelism. Explicit requests
/// (config, env var) are honoured as given.
const AUTO_CAP: usize = 8;

thread_local! {
    /// Requested thread count for the current scope (`None` = unset).
    static AMBIENT: Cell<Option<usize>> = const { Cell::new(None) };
    /// True on pool worker threads: nested regions must run serial.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// A resolved degree of parallelism (`workers >= 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
}

impl Parallelism {
    /// Resolve a requested thread count. `0` means *auto*: take
    /// [`THREADS_ENV`] if set and positive, otherwise the machine's
    /// available parallelism (capped at 8). Inside a pool worker the answer
    /// is always 1 — nested regions serialise instead of oversubscribing.
    pub fn resolve(requested: usize) -> Self {
        if IN_POOL.with(|c| c.get()) {
            return Parallelism { workers: 1 };
        }
        let workers = if requested > 0 {
            requested
        } else if let Some(n) = env_threads() {
            n
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(AUTO_CAP)
        };
        Parallelism {
            workers: workers.max(1),
        }
    }

    /// Exactly one worker: every combinator runs inline.
    pub fn serial() -> Self {
        Parallelism { workers: 1 }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Cap the worker count so each worker gets at least `min_per_worker`
    /// units out of `work` total — the threshold gate that keeps tiny
    /// kernels serial (spawning threads for microseconds of math is a
    /// slowdown, not a speedup). Never returns more workers than `self`.
    pub fn for_work(self, work: usize, min_per_worker: usize) -> Self {
        let useful = if min_per_worker == 0 {
            self.workers
        } else {
            work / min_per_worker
        };
        Parallelism {
            workers: self.workers.min(useful.max(1)),
        }
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Run `f` with the ambient requested thread count set to `requested`
/// (restored afterwards, including on unwind). Entry points — `fit`,
/// `detect`, stream scoring, the bench harness — wrap their bodies in this;
/// kernels read it back with [`ambient`].
pub fn with_ambient<R>(requested: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|a| a.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT.with(|a| a.replace(Some(requested))));
    f()
}

/// The ambient parallelism for the current thread: the innermost
/// [`with_ambient`] request, resolved. Without any enclosing scope this is
/// `resolve(0)` (env var, then auto-detect).
pub fn ambient() -> Parallelism {
    Parallelism::resolve(AMBIENT.with(|a| a.get()).unwrap_or(0))
}

/// Balanced contiguous partition of `0..n` into `workers` ranges (the first
/// `n % workers` ranges get one extra item). Ranges may be empty when
/// `n < workers`; concatenated in order they cover `0..n` exactly.
pub fn split_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let w = workers.max(1);
    let base = n / w;
    let extra = n % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0usize;
    for i in 0..w {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Propagate a worker panic out of a [`crossbeam::scope`] result.
fn check_scope<R>(r: Result<R, Box<dyn std::any::Any + Send>>) -> R {
    match r {
        Ok(v) => v,
        // lint-allow(no-panic): a worker panicked; re-raising on the caller
        // thread preserves std::thread::scope semantics.
        Err(_) => panic!("parallel worker panicked"),
    }
}

/// Map `f` over `items`, returning results in input order regardless of
/// worker count or completion order. Worker `w` owns the `w`-th contiguous
/// range of indices and walks it in ascending order; results travel back
/// tagged with their index over a `crossbeam` channel and are reassembled
/// positionally. `f(i, &items[i])` must be pure for thread-count invariance.
pub fn map_indexed<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let w = par.workers().min(n.max(1));
    if w <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ranges = split_ranges(n, w);
    // lint-allow(no-unwrap): split_ranges returns exactly w >= 2 ranges here
    let (own, spawned) = ranges.split_first().expect("w >= 1 ranges");
    let mut region = obs::span("parallel-region");
    region.add_field("kind", "map_indexed");
    region.add_field("workers", w);
    region.add_field("items", n);
    let region_id = region.id();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let f = &f;
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    check_scope(crossbeam::scope(|s| {
        for range in spawned.iter().cloned() {
            let tx = tx.clone();
            s.spawn(move |_| {
                let _pool = PoolGuard::enter();
                let mut worker = obs::span_with_parent("worker", region_id);
                worker.add_field("items", range.len());
                for i in range {
                    // A send only fails when the receiver is gone, i.e. the
                    // caller side already panicked; results are moot then.
                    let _ = tx.send((i, f(i, &items[i])));
                }
            });
        }
        drop(tx);
        {
            let _pool = PoolGuard::enter();
            let mut worker = obs::span_with_parent("worker", region_id);
            worker.add_field("items", own.len());
            for i in own.clone() {
                slots[i] = Some(f(i, &items[i]));
            }
        }
        while let Ok((i, r)) = rx.recv() {
            slots[i] = Some(r);
        }
    }));
    slots
        .into_iter()
        // lint-allow(no-unwrap): the w ranges partition 0..n, so every slot
        // was filled by its owning worker (or the scope already panicked)
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

/// Apply `f` to each of the `workers` contiguous ranges of `0..n`,
/// returning the per-range results **in range order**. The intended use is
/// exact parallel reductions: each worker reduces its own range, and the
/// caller folds the returned partials in a fixed order (or with an exactly
/// associative operation such as `f64::min`).
pub fn map_ranges<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let w = par.workers().min(n.max(1)).max(1);
    if w <= 1 {
        return vec![f(0..n)];
    }
    let ranges = split_ranges(n, w);
    // lint-allow(no-unwrap): split_ranges returns exactly w >= 2 ranges here
    let (own, spawned) = ranges.split_first().expect("w >= 1 ranges");
    let mut region = obs::span("parallel-region");
    region.add_field("kind", "map_ranges");
    region.add_field("workers", w);
    region.add_field("items", n);
    let region_id = region.id();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let f = &f;
    let mut slots: Vec<Option<R>> = (0..w).map(|_| None).collect();
    check_scope(crossbeam::scope(|s| {
        for (k, range) in spawned.iter().cloned().enumerate() {
            let tx = tx.clone();
            s.spawn(move |_| {
                let _pool = PoolGuard::enter();
                let mut worker = obs::span_with_parent("worker", region_id);
                worker.add_field("items", range.len());
                let _ = tx.send((k + 1, f(range)));
            });
        }
        drop(tx);
        {
            let _pool = PoolGuard::enter();
            let mut worker = obs::span_with_parent("worker", region_id);
            worker.add_field("items", own.len());
            slots[0] = Some(f(own.clone()));
        }
        while let Ok((k, r)) = rx.recv() {
            slots[k] = Some(r);
        }
    }));
    slots
        .into_iter()
        // lint-allow(no-unwrap): slot k is filled by range k's worker, and a
        // worker panic already propagated through check_scope
        .map(|s| s.expect("every range produced exactly once"))
        .collect()
}

/// Fill a row-major buffer in parallel: `buf` is `rows × row_len`, each
/// worker receives a contiguous row range and the matching disjoint
/// `&mut` sub-slice. Because every row is written by exactly one worker and
/// row content depends only on the row index, the result is bit-identical
/// at any worker count.
pub fn fill_rows<T, F>(par: Parallelism, buf: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(buf.len() % row_len, 0, "buffer must be whole rows");
    let rows = buf.len() / row_len;
    let w = par.workers().min(rows.max(1)).max(1);
    if w <= 1 {
        f(0..rows, buf);
        return;
    }
    let ranges = split_ranges(rows, w);
    let mut parts: Vec<(Range<usize>, &mut [T])> = Vec::with_capacity(w);
    let mut rest = buf;
    for range in ranges {
        let take = range.len() * row_len;
        let (head, tail) = rest.split_at_mut(take);
        parts.push((range, head));
        rest = tail;
    }
    let f = &f;
    let mut region = obs::span("parallel-region");
    region.add_field("kind", "fill_rows");
    region.add_field("workers", w);
    region.add_field("items", rows);
    let region_id = region.id();
    check_scope(crossbeam::scope(|s| {
        let mut iter = parts.into_iter();
        // lint-allow(no-unwrap): parts has exactly w >= 2 entries by construction
        let own = iter.next().expect("w >= 1 parts");
        for (range, chunk) in iter {
            s.spawn(move |_| {
                let _pool = PoolGuard::enter();
                let mut worker = obs::span_with_parent("worker", region_id);
                worker.add_field("items", range.len());
                f(range, chunk);
            });
        }
        let _pool = PoolGuard::enter();
        let mut worker = obs::span_with_parent("worker", region_id);
        worker.add_field("items", own.0.len());
        f(own.0, own.1);
    }));
}

/// RAII marker flagging the current thread as a pool worker for its
/// lifetime, so [`Parallelism::resolve`] serialises nested regions.
struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> Self {
        PoolGuard {
            prev: IN_POOL.with(|c| c.replace(true)),
        }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for w in [1usize, 2, 3, 4, 8, 13] {
                let ranges = split_ranges(n, w);
                assert_eq!(ranges.len(), w);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (
                    *lens.iter().min().expect("w >= 1"),
                    *lens.iter().max().expect("w >= 1"),
                );
                assert!(hi - lo <= 1, "unbalanced split {lens:?}");
            }
        }
    }

    #[test]
    fn map_indexed_is_worker_count_invariant() {
        let items: Vec<f64> = (0..97).map(|i| (i as f64).sin()).collect();
        let serial = map_indexed(Parallelism::serial(), &items, |i, x| x * i as f64);
        for w in [2usize, 3, 4, 8] {
            let par = map_indexed(Parallelism { workers: w }, &items, |i, x| x * i as f64);
            assert_eq!(serial, par, "workers={w}");
        }
    }

    #[test]
    fn map_ranges_partials_fold_exactly_for_min() {
        let items: Vec<f64> = (0..1000).map(|i| ((i * 37) % 97) as f64).collect();
        let serial = items.iter().cloned().fold(f64::INFINITY, f64::min);
        for w in [1usize, 2, 4, 8] {
            let partials = map_ranges(Parallelism { workers: w }, items.len(), |r| {
                items[r].iter().cloned().fold(f64::INFINITY, f64::min)
            });
            assert_eq!(partials.len(), w.min(items.len()));
            let m = partials.into_iter().fold(f64::INFINITY, f64::min);
            assert_eq!(m, serial);
        }
    }

    #[test]
    fn fill_rows_matches_serial() {
        let rows = 33usize;
        let row_len = 7usize;
        let mut serial = vec![0.0f32; rows * row_len];
        fill_rows(Parallelism::serial(), &mut serial, row_len, |range, out| {
            for (k, row) in range.clone().zip(out.chunks_mut(row_len)) {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (k * 31 + j) as f32;
                }
            }
        });
        for w in [2usize, 4, 8] {
            let mut buf = vec![0.0f32; rows * row_len];
            fill_rows(
                Parallelism { workers: w },
                &mut buf,
                row_len,
                |range, out| {
                    for (k, row) in range.clone().zip(out.chunks_mut(row_len)) {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = (k * 31 + j) as f32;
                        }
                    }
                },
            );
            assert_eq!(serial, buf, "workers={w}");
        }
    }

    #[test]
    fn nested_regions_serialise() {
        let outer = Parallelism { workers: 4 };
        let depths = map_indexed(outer, &[(); 8], |_, _| ambient().workers());
        // Every item observed ambient()==1: either it ran on a pool worker
        // (flagged) or on the caller thread *inside* no with_ambient scope —
        // pin that down by wrapping in an explicit serial ambient.
        with_ambient(1, || {
            let depths = map_indexed(outer, &[(); 8], |_, _| ambient().workers());
            assert!(depths.iter().all(|&d| d == 1), "{depths:?}");
        });
        // Pool workers are always serial regardless of the ambient request.
        with_ambient(8, || {
            let on_workers = map_indexed(outer, &[(); 8], |_, _| ambient().workers());
            assert!(on_workers.iter().all(|&d| d == 1), "{on_workers:?}");
        });
        drop(depths);
    }

    #[test]
    fn ambient_scope_sets_and_restores() {
        with_ambient(3, || {
            assert_eq!(ambient().workers(), 3);
            with_ambient(5, || assert_eq!(ambient().workers(), 5));
            assert_eq!(ambient().workers(), 3);
        });
    }

    #[test]
    fn ambient_restored_after_panic() {
        with_ambient(2, || {
            let r = std::panic::catch_unwind(|| with_ambient(7, || panic!("boom")));
            assert!(r.is_err());
            assert_eq!(ambient().workers(), 2);
        });
    }

    #[test]
    fn worker_panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            map_indexed(
                Parallelism { workers: 4 },
                &[1u32, 2, 3, 4, 5, 6],
                |i, _| {
                    if i == 5 {
                        panic!("worker down");
                    }
                    i
                },
            )
        });
        assert!(r.is_err());
    }

    #[test]
    fn for_work_gates_small_kernels() {
        let par = Parallelism { workers: 8 };
        assert_eq!(par.for_work(100, 1000).workers(), 1);
        assert_eq!(par.for_work(4000, 1000).workers(), 4);
        assert_eq!(par.for_work(1_000_000, 1000).workers(), 8);
        assert_eq!(par.for_work(123, 0).workers(), 8);
    }

    #[test]
    fn resolve_honours_explicit_requests() {
        assert_eq!(Parallelism::resolve(3).workers(), 3);
        assert!(Parallelism::resolve(0).workers() >= 1);
    }
}
