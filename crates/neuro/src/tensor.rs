//! Dense row-major `f32` tensors.
//!
//! Deliberately simple: owned contiguous storage, shape as a `Vec<usize>`,
//! no views or broadcasting rules beyond what the graph ops implement
//! explicitly. All hot loops live in the graph ops; `Tensor` is the data
//! carrier plus a few shape-checked constructors and accessors.

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Build from existing data; panics if `data.len()` ≠ product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// 1-D tensor from an `f64` slice (the signal-processing crates use f64).
    pub fn from_f64(values: &[f64]) -> Self {
        Tensor {
            shape: vec![values.len()],
            // lint-allow(lossy-cast): the f64→f32 narrowing is this
            // constructor's documented purpose — the network is f32.
            data: values.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Scalar (shape `[1]`) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            shape: vec![1],
            data: vec![v],
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Extract the scalar value of a shape-`[1]` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on non-scalar shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Row-major index helpers for the common ranks.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[i * self.shape[1] + j]
    }

    #[inline]
    pub fn at3(&self, i: usize, j: usize, k: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 3);
        let (d1, d2) = (self.shape[1], self.shape[2]);
        self.data[(i * d1 + j) * d2 + k]
    }

    /// In-place element-wise accumulation; shapes must match exactly.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Set all elements to zero (gradient reset).
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Row `i` of a 2-D tensor as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2);
        let c = self.shape[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Copy out as `f64` (interfacing back to the signal-processing crates).
    pub fn to_f64(&self) -> Vec<f64> {
        self.data.iter().map(|&v| v as f64).collect()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
    }

    #[test]
    fn at3_indexing() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        assert_eq!(t.at3(1, 0, 1), 5.0);
        assert_eq!(t.at3(0, 1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(&[2, 2], vec![1.0; 5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[4], vec![1., 2., 3., 4.]).reshaped(&[2, 2]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    fn add_assign_and_zero() {
        let mut a = Tensor::full(&[3], 1.0);
        let b = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2., 3., 4.]);
        a.zero_();
        assert_eq!(a.data(), &[0., 0., 0.]);
    }

    #[test]
    fn scalar_and_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn f64_round_trip() {
        let t = Tensor::from_f64(&[1.5, -2.0]);
        assert_eq!(t.to_f64(), vec![1.5, -2.0]);
    }
}
