//@ path: crates/serve/src/fixture.rs
//@ expect: raw-instant
// Seeded violation: a raw Instant::now() next to the sanctioned obs
// wrappers and a suppressed call with a recorded reason.

pub fn stopwatch_start() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn trace_aligned_start() -> std::time::Instant {
    obs::now_instant()
}

pub fn trace_aligned_ns() -> u64 {
    obs::now_ns()
}

pub fn justified() -> std::time::Instant {
    // lint-allow(raw-instant): comparing against a pre-epoch Instant captured by a dependency
    std::time::Instant::now()
}
