//! Sliding (hopping-free) DFT: O(1)-per-sample updates of selected bins.
//!
//! The batch [`fft`](crate::fft) recomputes every bin of a window from
//! scratch in O(n log n). A streaming consumer that advances one sample at a
//! time only needs a handful of bins kept *current* — the classic sliding-DFT
//! recurrence does that in O(1) per tracked bin per sample:
//!
//! ```text
//! X'ₖ = (Xₖ − x_out + x_in) · e^{+2πik/n}
//! ```
//!
//! where `x_out` is the sample leaving the window and `x_in` the one
//! entering. The convention matches [`crate::fft::fft`] (`X[k] = Σ
//! x[m]·e^{-2πikm/n}` with `x[0]` the oldest sample), so a tracked bin always
//! equals the corresponding bin of a batch FFT over the current window — up
//! to floating-point drift that grows linearly in the number of slides
//! (`tests/properties.rs` pins the agreement at 1e-9 over test-sized
//! streams). Long-lived streams can call [`SlidingDft::reset`] periodically
//! to re-anchor the state from the raw window.

use crate::fft::Complex;
use std::f64::consts::PI;

/// Sliding DFT over a fixed-length window, tracking a chosen subset of bins.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    window: usize,
    bins: Vec<usize>,
    /// Per-bin twiddle `e^{+2πik/n}`, precomputed once.
    twiddles: Vec<Complex>,
    /// Current bin values, aligned with `bins`.
    state: Vec<Complex>,
}

impl SlidingDft {
    /// Track `bins` (each `< window`) over an all-zero initial window.
    pub fn new(window: usize, bins: &[usize]) -> Self {
        assert!(window >= 1, "sliding DFT window must be ≥ 1");
        for &k in bins {
            assert!(
                k < window,
                "tracked bin {k} out of range for window {window}"
            );
        }
        let twiddles = bins
            .iter()
            .map(|&k| Complex::cis(2.0 * PI * k as f64 / window as f64))
            .collect();
        SlidingDft {
            window,
            bins: bins.to_vec(),
            twiddles,
            state: vec![Complex::ZERO; bins.len()],
        }
    }

    /// Track `bins` with the state initialised from an existing full window
    /// (`window[0]` is the oldest sample).
    pub fn from_window(window: &[f64], bins: &[usize]) -> Self {
        let mut s = SlidingDft::new(window.len(), bins);
        s.reset(window);
        s
    }

    /// Re-anchor every tracked bin by a direct DFT of `window`, discarding
    /// accumulated floating-point drift.
    pub fn reset(&mut self, window: &[f64]) {
        assert_eq!(
            window.len(),
            self.window,
            "reset window length must match the configured window"
        );
        let n = self.window as u64;
        for (bi, &k) in self.bins.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (m, &x) in window.iter().enumerate() {
                // k·m mod n keeps the angle small for long windows.
                let km = (k as u64 * m as u64) % n;
                let ang = -2.0 * PI * km as f64 / n as f64;
                acc = acc + Complex::cis(ang).scale(x);
            }
            self.state[bi] = acc;
        }
    }

    /// Advance the window by one sample: `outgoing` leaves (the caller's
    /// ring buffer supplies it), `incoming` enters. O(tracked bins).
    pub fn slide(&mut self, outgoing: f64, incoming: f64) {
        let delta = incoming - outgoing;
        for (s, w) in self.state.iter_mut().zip(&self.twiddles) {
            let shifted = Complex::new(s.re + delta, s.im);
            *s = shifted * *w;
        }
    }

    /// Window length `n`.
    pub fn window_len(&self) -> usize {
        self.window
    }

    /// The tracked bin indices, in construction order.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Current values of the tracked bins, aligned with [`bins`](Self::bins).
    pub fn spectrum(&self) -> &[Complex] {
        &self.state
    }

    /// Current value of bin `k`, if tracked.
    pub fn bin(&self, k: usize) -> Option<Complex> {
        self.bins
            .iter()
            .position(|&b| b == k)
            .map(|i| self.state[i])
    }

    /// Overwrite the tracked-bin state (checkpoint restore); lengths must
    /// match the construction-time bin set.
    pub fn set_spectrum(&mut self, state: &[Complex]) {
        assert_eq!(
            state.len(),
            self.state.len(),
            "restored spectrum length must match the tracked bin count"
        );
        self.state.copy_from_slice(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::rfft;

    /// Deterministic pseudo-random-ish series without pulling in `rand`.
    fn wiggly(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.37).sin() + 0.5 * (t * 0.11).cos() + 0.01 * ((i * 2654435761) % 97) as f64
            })
            .collect()
    }

    fn assert_bin_close(a: Complex, b: Complex, tol: f64, ctx: &str) {
        assert!((a - b).abs() < tol, "{ctx}: {a:?} vs {b:?}");
    }

    #[test]
    fn slide_tracks_batch_fft_bins() {
        let series = wiggly(300);
        let cases: [(usize, Vec<usize>); 3] = [
            (16, vec![0, 1, 3, 7]),
            (25, vec![0, 2, 5, 12, 24]),
            (31, vec![1, 30]),
        ];
        for (w, bins) in &cases {
            let (w, bins) = (*w, bins.as_slice());
            let mut sd = SlidingDft::from_window(&series[..w], bins);
            for start in 1..series.len() - w + 1 {
                sd.slide(series[start - 1], series[start + w - 1]);
                let spec = rfft(&series[start..start + w]);
                for &k in bins {
                    let got = sd.bin(k).expect("tracked");
                    assert_bin_close(got, spec[k], 1e-9, &format!("w={w} k={k} start={start}"));
                }
            }
        }
    }

    #[test]
    fn reset_discards_drift() {
        let series = wiggly(120);
        let w = 20;
        let bins = [0usize, 3, 9];
        let mut sd = SlidingDft::from_window(&series[..w], &bins);
        for start in 1..=50usize {
            sd.slide(series[start - 1], series[start + w - 1]);
        }
        let before: Vec<Complex> = sd.spectrum().to_vec();
        sd.reset(&series[50..50 + w]);
        let spec = rfft(&series[50..50 + w]);
        for (i, &k) in bins.iter().enumerate() {
            assert_bin_close(sd.spectrum()[i], spec[k], 1e-10, "post-reset");
            // and the pre-reset value was already close (drift is tiny here)
            assert_bin_close(before[i], spec[k], 1e-9, "pre-reset");
        }
    }

    #[test]
    fn untracked_bin_is_none_and_zero_window_state_is_zero() {
        let sd = SlidingDft::new(8, &[2]);
        assert!(sd.bin(3).is_none());
        assert_eq!(sd.window_len(), 8);
        assert!(sd.bin(2).expect("tracked").abs() < 1e-15);
    }

    #[test]
    fn set_spectrum_round_trips() {
        let series = wiggly(40);
        let mut a = SlidingDft::from_window(&series[..16], &[1, 5]);
        a.slide(series[0], series[16]);
        let saved: Vec<Complex> = a.spectrum().to_vec();
        let mut b = SlidingDft::new(16, &[1, 5]);
        b.set_spectrum(&saved);
        // Identical state → identical continued evolution.
        a.slide(series[1], series[17]);
        b.slide(series[1], series[17]);
        for (x, y) in a.spectrum().iter().zip(b.spectrum()) {
            assert!(x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
        }
    }
}
