//! Point adjustment (PA) — the protocol the paper argues is ill-posed
//! (Sec. II-B), implemented faithfully so its inflation is measurable.
//!
//! Under PA, if *any* point of a ground-truth anomaly segment is predicted
//! positive, **every** point of that segment is rewritten to positive before
//! scoring. Since the rewrite consults the test labels, it leaks ground truth
//! into the prediction — which is exactly why a random detector can look
//! excellent under `F1(PA)` (Table II).

use crate::{pointwise, segments, Prf};

/// Apply point adjustment: returns the adjusted copy of `pred`.
pub fn adjust(pred: &[bool], labels: &[bool]) -> Vec<bool> {
    assert_eq!(pred.len(), labels.len(), "prediction/label length mismatch");
    let mut adjusted = pred.to_vec();
    for seg in segments(labels) {
        if seg.clone().any(|i| pred[i]) {
            for i in seg {
                adjusted[i] = true;
            }
        }
    }
    adjusted
}

/// `F1(PA)`: point-wise metrics after point adjustment.
pub fn prf_pa(pred: &[bool], labels: &[bool]) -> Prf {
    pointwise::prf(&adjust(pred, labels), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hit_fills_the_segment() {
        let labels = [false, true, true, true, false];
        let pred = [false, false, true, false, false];
        let adj = adjust(&pred, &labels);
        assert_eq!(adj, vec![false, true, true, true, false]);
        let m = prf_pa(&pred, &labels);
        assert_eq!((m.precision, m.recall, m.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn unhit_segments_stay_unhit() {
        let labels = [true, true, false, true, true];
        let pred = [true, false, false, false, false];
        let adj = adjust(&pred, &labels);
        assert_eq!(adj, vec![true, true, false, false, false]);
    }

    #[test]
    fn false_positives_survive_adjustment() {
        let labels = [false, false, true];
        let pred = [true, false, true];
        let adj = adjust(&pred, &labels);
        assert_eq!(adj, vec![true, false, true]);
        let m = prf_pa(&pred, &labels);
        assert!((m.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pa_inflates_relative_to_pointwise() {
        // A long event with a single detected point: PW recall tiny, PA = 1.
        let mut labels = vec![false; 100];
        for l in labels[40..90].iter_mut() {
            *l = true;
        }
        let mut pred = vec![false; 100];
        pred[60] = true;
        let pw = crate::pointwise::prf(&pred, &labels);
        let pa = prf_pa(&pred, &labels);
        assert!(pw.f1 < 0.05);
        assert_eq!(pa.f1, 1.0);
    }

    #[test]
    fn no_labels_is_identity() {
        let labels = [false; 5];
        let pred = [true, false, true, false, false];
        assert_eq!(adjust(&pred, &labels), pred.to_vec());
    }
}
