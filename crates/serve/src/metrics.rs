//! Lock-free observability: atomic counters and histograms.
//!
//! Every hot-path update is a single relaxed `AtomicU64` op — no locks, no
//! allocation — so instrumentation never serializes the worker pool. The
//! `stats` verb snapshots everything into JSON; [`Metrics::render_text`]
//! produces the plain-text dump.

use crate::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Fixed-bucket histogram (cumulative counts are derived at render time).
pub struct Histogram {
    /// Upper bounds, ascending; values beyond the last bound land in a final
    /// overflow bucket.
    bounds: &'static [u64],
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: independent monotone counters; no cross-counter ordering
        // is observable and snapshot readers tolerate torn totals.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        // relaxed-ok: monitoring read of one counter; staleness is fine.
        self.total.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            // relaxed-ok: approximate snapshot; sum/count may be torn by a
            // concurrent observe, which only perturbs the reported mean.
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(self.counts.len() + 2);
        for (i, c) in self.counts.iter().enumerate() {
            let label = if i < self.bounds.len() {
                format!("le_{}", self.bounds[i])
            } else {
                "inf".to_string()
            };
            // relaxed-ok: snapshot read; buckets may be torn vs. the totals.
            fields.push((label, Value::Num(c.load(Ordering::Relaxed) as f64)));
        }
        fields.push(("count".into(), Value::Num(self.count() as f64)));
        fields.push((
            "sum".into(),
            // relaxed-ok: snapshot read, same as the buckets above.
            Value::Num(self.sum.load(Ordering::Relaxed) as f64),
        ));
        Value::Obj(fields)
    }

    fn render(&self, name: &str, unit: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{name}_count {count}\n{name}_sum{unit} {sum}",
            count = self.count(),
            // relaxed-ok: exposition snapshot; torn vs. count is acceptable.
            sum = self.sum.load(Ordering::Relaxed),
        );
        for (i, c) in self.counts.iter().enumerate() {
            let bound = if i < self.bounds.len() {
                format!("{}", self.bounds[i])
            } else {
                "+inf".to_string()
            };
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{bound}\"}} {}",
                // relaxed-ok: exposition snapshot of one bucket counter.
                c.load(Ordering::Relaxed)
            );
        }
    }
}

macro_rules! metrics_struct {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// All serving counters; one instance shared by every layer.
        pub struct Metrics {
            $($(#[$doc])* pub $name: AtomicU64,)*
            /// Detect end-to-end latency (queue + batch + pipeline), µs.
            pub detect_latency_us: Histogram,
            /// Time a detect request waited before its batch ran, µs.
            pub queue_wait_us: Histogram,
            /// Fit latency, ms.
            pub fit_latency_ms: Histogram,
            /// Executed batch sizes (requests per batch).
            pub batch_size: Histogram,
            started: Instant,
        }

        impl Metrics {
            pub fn new() -> Self {
                Metrics {
                    $($name: AtomicU64::new(0),)*
                    detect_latency_us: Histogram::new(&[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]),
                    queue_wait_us: Histogram::new(&[100, 1_000, 10_000, 100_000, 1_000_000]),
                    fit_latency_ms: Histogram::new(&[10, 100, 1_000, 10_000, 60_000]),
                    batch_size: Histogram::new(&[1, 2, 4, 8, 16, 32]),
                    started: Instant::now(),
                }
            }

            /// Counter snapshot as JSON (the `stats` verb payload).
            pub fn to_json(&self) -> Value {
                let mut fields: Vec<(String, Value)> = vec![
                    $( (stringify!($name).to_string(),
                        // relaxed-ok: stats snapshot of independent counters.
                        Value::Num(self.$name.load(Ordering::Relaxed) as f64)), )*
                ];
                fields.push(("uptime_ms".into(),
                    Value::Num(self.started.elapsed().as_millis() as f64)));
                for (name, h) in [
                    ("detect_latency_us", &self.detect_latency_us),
                    ("queue_wait_us", &self.queue_wait_us),
                    ("fit_latency_ms", &self.fit_latency_ms),
                    ("batch_size", &self.batch_size),
                ] {
                    fields.push((name.to_string(), h.to_json()));
                }
                Value::Obj(fields)
            }

            /// Plain-text dump (Prometheus-flavoured exposition format).
            pub fn render_text(&self) -> String {
                use std::fmt::Write;
                let mut out = String::new();
                $(
                    let _ = writeln!(
                        out,
                        "triad_{} {}",
                        stringify!($name),
                        // relaxed-ok: exposition snapshot of one counter.
                        self.$name.load(Ordering::Relaxed)
                    );
                )*
                let _ = writeln!(out, "triad_uptime_ms {}", self.started.elapsed().as_millis());
                self.detect_latency_us.render("triad_detect_latency_us", "_us", &mut out);
                self.queue_wait_us.render("triad_queue_wait_us", "_us", &mut out);
                self.fit_latency_ms.render("triad_fit_latency_ms", "_ms", &mut out);
                self.batch_size.render("triad_batch_size", "", &mut out);
                out
            }
        }
    };
}

metrics_struct! {
    /// Accepted TCP connections.
    connections_total,
    /// Requests parsed off the wire (all verbs).
    requests_total,
    /// Responses written back (success or error).
    responses_total,
    /// Requests answered with `ok:false`.
    errors_total,
    /// `fit` requests served.
    fit_total,
    /// `detect` requests served.
    detect_total,
    /// `list` requests served.
    list_total,
    /// `evict` requests served.
    evict_total,
    /// `stats` requests served.
    stats_total,
    /// `health` requests served.
    health_total,
    /// `shutdown` requests served.
    shutdown_total,
    /// Detect answered from an already-deserialized model slot.
    cache_hits,
    /// Detect that had to deserialize the model from disk first.
    cache_misses,
    /// Deserialized models dropped by LRU pressure or `evict`.
    cache_evictions,
    /// Batches executed by the scheduling layer.
    batches_total,
    /// Detect requests that went through batches.
    batched_requests,
    /// Batches that grouped ≥ 2 concurrent requests.
    batches_multi,
    /// Within-batch duplicate payloads answered by a shared pipeline run.
    batch_dedup_hits,
    /// Detect requests that timed out before execution.
    timeouts_total,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Convenience: relaxed increment.
pub fn inc(counter: &AtomicU64) {
    // relaxed-ok: counters are independent monotone tallies; nothing is
    // published through them, so no ordering is needed.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Convenience: relaxed read.
pub fn get(counter: &AtomicU64) -> u64 {
    // relaxed-ok: monitoring read; a stale value is acceptable.
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 99, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - (5 + 10 + 11 + 99 + 5000) as f64 / 5.0).abs() < 1e-9);
        let j = h.to_json();
        assert_eq!(j.get("le_10").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("le_100").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("le_1000").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("inf").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_snapshot_and_text() {
        let m = Metrics::new();
        inc(&m.requests_total);
        inc(&m.requests_total);
        inc(&m.cache_hits);
        m.batch_size.observe(3);
        let j = m.to_json();
        assert_eq!(j.get("requests_total").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("cache_hits").unwrap().as_u64(), Some(1));
        assert!(j.get("uptime_ms").unwrap().as_f64().unwrap() >= 0.0);
        let text = m.render_text();
        assert!(text.contains("triad_requests_total 2"), "{text}");
        assert!(
            text.contains("triad_batch_size_bucket{le=\"4\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        inc(&m.detect_total);
                        m.detect_latency_us.observe(42);
                    }
                });
            }
        });
        assert_eq!(get(&m.detect_total), 8000);
        assert_eq!(m.detect_latency_us.count(), 8000);
    }
}
