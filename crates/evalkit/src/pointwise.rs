//! Plain point-wise precision / recall / F1 — `F1(PW)` in the paper's tables.

use crate::Prf;

/// Confusion counts of a binary prediction against binary labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
    pub tn: usize,
}

/// Count the confusion matrix; panics on length mismatch.
pub fn confusion(pred: &[bool], labels: &[bool]) -> Confusion {
    assert_eq!(pred.len(), labels.len(), "prediction/label length mismatch");
    let mut c = Confusion::default();
    for (&p, &l) in pred.iter().zip(labels) {
        match (p, l) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// Point-wise precision / recall / F1.
pub fn prf(pred: &[bool], labels: &[bool]) -> Prf {
    let c = confusion(pred, labels);
    Prf::from_counts(c.tp, c.fp, c.fn_)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let l = [false, true, true, false];
        let m = prf(&l, &l);
        assert_eq!((m.precision, m.recall, m.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn half_right() {
        let labels = [true, true, false, false];
        let pred = [true, false, true, false];
        let m = prf(&pred, &labels);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_negative_predictions() {
        let labels = [true, false];
        let pred = [false, false];
        let m = prf(&pred, &labels);
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn confusion_counts() {
        let c = confusion(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        prf(&[true], &[true, false]);
    }
}
