//! Cross-crate integration: the fast discord algorithms agree with the
//! brute-force matrix profile on realistic archive data, and they localise
//! the archive's injected anomalies.

use discord::matrix_profile::matrix_profile;
use discord::merlin::{merlin, MerlinConfig};
use discord::merlin_pp::merlin_pp;
use ucrgen::archive::generate_dataset;

#[test]
fn merlin_matches_brute_force_on_archive_test_splits() {
    for id in [2usize, 9, 17] {
        let ds = generate_dataset(11, id);
        let test = ds.test();
        let w = (ds.period / 2).max(8);
        let found = merlin(test, MerlinConfig::new(w, w)); // single length
        let truth = matrix_profile(test, w).top_discord();
        match (found.first(), truth) {
            (Some(f), Some(t)) => {
                assert!(
                    (f.distance - t.distance).abs() < 1e-6,
                    "dataset {id}: {f:?} vs {t:?}"
                );
            }
            (None, None) => {}
            (f, t) => panic!("dataset {id}: merlin {f:?} vs truth {t:?}"),
        }
    }
}

#[test]
fn merlin_pp_is_exactly_merlin_on_archive_data() {
    let ds = generate_dataset(11, 23);
    let sweep = MerlinConfig::new(10, 40).with_step(10);
    let a = merlin(ds.test(), sweep);
    let b = merlin_pp(ds.test(), sweep);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.index, x.length), (y.index, y.length));
        assert!((x.distance - y.distance).abs() < 1e-9);
    }
}

#[test]
fn discords_localise_injected_anomalies_on_most_datasets() {
    // Discord discovery alone (no learning) should hit a clear majority of
    // archive anomalies when scanning the whole test split — the baseline
    // behaviour Table IV quantifies.
    let mut hits = 0;
    let mut total = 0;
    for id in 0..10usize {
        let ds = generate_dataset(13, id);
        let test = ds.test();
        let w = ds.period.clamp(8, test.len() / 4);
        let Some(top) = matrix_profile(test, w).top_discord() else {
            continue;
        };
        total += 1;
        let anomaly = ds.anomaly_in_test();
        if evalkit::eventwise::event_detected(&top.range(), &anomaly, 100) {
            hits += 1;
        }
    }
    assert!(total >= 8, "degenerate archive sample");
    assert!(
        hits * 2 > total,
        "matrix profile hit only {hits}/{total} anomalies"
    );
}
