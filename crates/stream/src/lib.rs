//! # triad-stream — incremental online detection for TriAD
//!
//! The batch pipeline (`triad_core::detect`) needs the whole test series up
//! front. This crate scores points *as they arrive*:
//!
//! * [`ring`] — fixed-capacity ring buffer with absolute sequence numbers;
//!   memory is bounded no matter how long the stream runs.
//! * [`engine`] — the per-stream [`StreamEngine`]: maintains the tri-domain
//!   view incrementally (rolling mean/variance for the temporal view, a
//!   sliding DFT keeping selected frequency bins current in O(k) per point,
//!   per-phase running means for the residual view), embeds each completed
//!   stride with the trained encoders through
//!   [`triad_core::OnlineRanker`], and emits anomaly [`StreamEvent`]s with
//!   enter/exit hysteresis instead of per-point flapping. Closing a stream
//!   with [`StreamEngine::finalize`] reproduces the offline
//!   `core::detect` result *bit-exactly* when the full history is retained.
//! * [`checkpoint`] — persist/restore per-stream state in the hardened
//!   TRIAD2 style (magic, bounded lengths, CRC-32 trailer) so a restarted
//!   server resumes mid-stream bit-identically.
//! * [`shard`] — the multi-stream [`StreamManager`]: streams hash to worker
//!   shards, each with a bounded ingest queue (explicit backpressure and
//!   drop accounting) and per-shard [`metrics`].
//! * [`metrics`] — atomic counters plus a fixed-bucket [`Histogram`] with
//!   bucket-derived quantile estimates (p50/p95/p99).
//!
//! The stride policy (paper Sec. IV-A2: stride = L/4, overlapping) is kept
//! for online scoring so the offline and online window sets coincide; see
//! DESIGN.md "Streaming layer" for the overlap-vs-disjoint trade-off.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod engine;
pub mod metrics;
pub mod ring;
pub mod shard;

pub use engine::{
    LiveView, PushOutcome, StreamConfig, StreamEngine, StreamEvent, StreamStatus, WindowScore,
};
pub use metrics::{Histogram, HistogramSnapshot, ShardMetrics};
pub use ring::RingBuffer;
pub use shard::{CloseReport, ManagerConfig, ModelLoader, PushTicket, StreamManager};

use std::fmt;
use triad_core::PersistError;

/// Failure surface of the streaming layer.
#[derive(Debug)]
pub enum StreamError {
    /// A pushed sample was NaN/Inf; the point was rejected, the stream
    /// stays usable.
    NonFinite { seq: u64 },
    /// `finalize` was called on an empty stream.
    Empty,
    /// `finalize` needs the full history, but `dropped` oldest points were
    /// evicted from the ring; only hysteresis events are available.
    HistoryDropped { dropped: u64 },
    /// Checkpoint serialization/deserialization failed (I/O, truncation,
    /// CRC mismatch — see the wrapped [`PersistError`]).
    Checkpoint(PersistError),
    /// A checkpoint was structurally valid but does not match the model it
    /// was asked to resume with (window/stride/period/domain mismatch).
    ModelMismatch(String),
    /// The named stream is not open on this manager.
    UnknownStream(String),
    /// A stream with that name is already open.
    DuplicateStream(String),
    /// Stream/model name failed validation (empty, too long, bad chars).
    BadName(String),
    /// The model loader could not produce the requested model.
    ModelLoad(String),
    /// The shard worker is gone (manager shut down or worker died).
    ShardUnavailable,
    /// The engine was rebound to a refreshed model mid-stream (fleet refit),
    /// so an offline-equivalent `finalize` no longer exists: the incremental
    /// rankings cover only the windows scored since the swap. Live scores
    /// and hysteresis events remain valid.
    ModelSwapped,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NonFinite { seq } => {
                write!(f, "stream: non-finite sample at sequence {seq} rejected")
            }
            StreamError::Empty => write!(f, "stream: finalize on an empty stream"),
            StreamError::HistoryDropped { dropped } => write!(
                f,
                "stream: finalize needs full history but {dropped} oldest points were evicted"
            ),
            StreamError::Checkpoint(e) => write!(f, "stream checkpoint: {e}"),
            StreamError::ModelMismatch(msg) => write!(f, "stream checkpoint: {msg}"),
            StreamError::UnknownStream(name) => write!(f, "stream: no open stream named {name:?}"),
            StreamError::DuplicateStream(name) => {
                write!(f, "stream: stream {name:?} is already open")
            }
            StreamError::BadName(msg) => write!(f, "stream: {msg}"),
            StreamError::ModelLoad(msg) => write!(f, "stream: model load failed: {msg}"),
            StreamError::ShardUnavailable => write!(f, "stream: shard worker unavailable"),
            StreamError::ModelSwapped => write!(
                f,
                "stream: model was swapped mid-stream; offline-equivalent finalize unavailable"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for StreamError {
    fn from(e: PersistError) -> Self {
        StreamError::Checkpoint(e)
    }
}

/// Shared fixtures for the in-crate tests: a quickly trained model and a
/// test series with a known frequency-shift anomaly.
#[cfg(test)]
pub(crate) mod testutil {
    use std::f64::consts::PI;
    use triad_core::{FittedTriad, TriAd, TriadConfig};

    pub(crate) fn quick_cfg() -> TriadConfig {
        TriadConfig {
            epochs: 2,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        }
    }

    /// Periodic series of `n` points with period `p`, plus deterministic
    /// jitter so windows are not exactly alike.
    pub(crate) fn periodic(n: usize, p: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * PI * i as f64 / p).sin()
                    + 0.3 * (4.0 * PI * i as f64 / p).sin()
                    + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
            })
            .collect()
    }

    /// A test split carrying a frequency-shift anomaly at [200, 260).
    pub(crate) fn anomalous_test(n: usize, p: f64) -> Vec<f64> {
        let mut test = periodic(n, p);
        for (i, v) in test.iter_mut().enumerate().take(260).skip(200) {
            *v = (8.0 * PI * i as f64 / p).sin();
        }
        test
    }

    pub(crate) fn quick_fitted() -> FittedTriad {
        TriAd::new(quick_cfg())
            .fit(&periodic(560, 32.0))
            .expect("fit")
    }
}
