//! Request batching/scheduling: concurrent `detect` requests against the
//! same model are grouped and run together.
//!
//! Inference-time windowing/batching policy is a first-class axis for a
//! reconstruction-style detector service; here the policy is the classic
//! `max_batch` / `max_delay` pair: a batch closes as soon as it holds
//! `max_batch` requests, or `max_delay` after its oldest request arrived,
//! whichever comes first. Within a batch the model slot is locked once, the
//! model deserialized at most once, and duplicate payloads (hot series
//! polled by many clients) run the pipeline once and fan the result out.
//!
//! Executor threads pull due batches; different models execute in parallel,
//! one batch per model at a time (the slot mutex serializes the non-`Sync`
//! model anyway — see `registry`).

use crate::json::Value;
use crate::metrics::{inc, Metrics};
use crate::proto::detection_fields;
use crate::registry::ModelRegistry;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Batch-closing policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Close a batch at this many requests.
    pub max_batch: usize,
    /// …or this long after its oldest request, whichever comes first.
    pub max_delay: Duration,
    /// Requests still queued after this long are answered with a timeout
    /// error instead of being executed.
    pub request_timeout: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_delay: Duration::from_millis(20),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// One queued detect request.
pub struct DetectJob {
    pub series: Vec<f64>,
    pub enqueued: Instant,
    /// Span open on the submitting thread (0 = tracing off): the executor
    /// parents its `registry`/`detect` spans here so a request's trace is
    /// one connected tree even though the pipeline runs on another thread.
    pub trace_parent: u64,
    pub reply: mpsc::Sender<Result<Value, String>>,
}

struct Queues {
    /// Pending jobs per model. BTreeMap so the dispatch scan in
    /// `next_batch` visits models in a stable order.
    pending: BTreeMap<String, Vec<DetectJob>>,
    /// Models with a batch currently executing (at most one per model).
    busy: HashSet<String>,
}

/// The shared batch scheduler.
pub struct Batcher {
    state: Mutex<Queues>,
    work: Condvar,
    policy: BatchPolicy,
    draining: AtomicBool,
}

impl Batcher {
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher {
            state: Mutex::new(Queues {
                pending: BTreeMap::new(),
                busy: HashSet::new(),
            }),
            work: Condvar::new(),
            policy,
            draining: AtomicBool::new(false),
        }
    }

    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Lock the queue state, recovering from poisoning: the queues are plain
    /// bookkeeping (pending jobs, busy set), consistent after any panic, and
    /// refusing to serve because one executor died would turn a single bad
    /// request into a total outage.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, Queues> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a detect request; the result arrives on the returned channel.
    pub fn submit(&self, model: &str, series: Vec<f64>) -> mpsc::Receiver<Result<Value, String>> {
        let (tx, rx) = mpsc::channel();
        let job = DetectJob {
            series,
            enqueued: obs::now_instant(),
            trace_parent: obs::current_span_id(),
            reply: tx,
        };
        let mut st = self.lock_state();
        st.pending.entry(model.to_string()).or_default().push(job);
        drop(st);
        self.work.notify_all();
        rx
    }

    /// Begin drain: every queued request becomes immediately due, and
    /// executors exit once the queues are empty. Call only after request
    /// producers have stopped.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Block until a batch is due (returns it) or the batcher has drained
    /// (returns `None`).
    fn next_batch(&self) -> Option<(String, Vec<DetectJob>)> {
        let mut st = self.lock_state();
        loop {
            let now = obs::now_instant();
            let mut due: Option<String> = None;
            let mut next_deadline: Option<Instant> = None;
            for (name, jobs) in st.pending.iter() {
                if jobs.is_empty() || st.busy.contains(name) {
                    continue;
                }
                let Some(oldest) = jobs.iter().map(|j| j.enqueued).min() else {
                    continue; // unreachable: emptiness checked above
                };
                if jobs.len() >= self.policy.max_batch
                    || self.draining()
                    || now >= oldest + self.policy.max_delay
                {
                    due = Some(name.clone());
                    break;
                }
                let deadline = oldest + self.policy.max_delay;
                next_deadline = Some(next_deadline.map_or(deadline, |d: Instant| d.min(deadline)));
            }

            if let Some(name) = due {
                let Some(jobs) = st.pending.get_mut(&name) else {
                    continue; // unreachable: `due` was picked from `pending`
                };
                let take = jobs.len().min(self.policy.max_batch);
                let batch: Vec<DetectJob> = jobs.drain(..take).collect();
                if jobs.is_empty() {
                    st.pending.remove(&name);
                }
                st.busy.insert(name.clone());
                return Some((name, batch));
            }

            if self.draining() && st.pending.values().all(|v| v.is_empty()) {
                return None;
            }

            let wait = match next_deadline {
                Some(dl) => {
                    let now = obs::now_instant();
                    if dl <= now {
                        continue;
                    }
                    dl - now
                }
                // Nothing queued (or everything busy): park until notified;
                // the timeout is a safety net for missed wakeups.
                None => Duration::from_millis(50),
            };
            // Poison recovery mirrors `lock_state`.
            st = self
                .work
                .wait_timeout(st, wait)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn finish(&self, model: &str) {
        let mut st = self.lock_state();
        st.busy.remove(model);
        drop(st);
        self.work.notify_all();
    }

    /// Executor thread body: pull due batches and run them until drained.
    pub fn run_executor(&self, registry: &RwLock<ModelRegistry>, metrics: &Metrics) {
        while let Some((model, batch)) = self.next_batch() {
            self.execute(registry, metrics, &model, batch);
            self.finish(&model);
        }
    }

    fn execute(
        &self,
        registry: &RwLock<ModelRegistry>,
        metrics: &Metrics,
        model: &str,
        batch: Vec<DetectJob>,
    ) {
        inc(&metrics.batches_total);
        metrics.batch_size.observe(batch.len() as u64);
        metrics
            .batched_requests
            // relaxed-ok: monotone tally, no ordering with other counters.
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if batch.len() >= 2 {
            inc(&metrics.batches_multi);
        }

        // Expire requests that waited past their timeout budget.
        let mut live: Vec<DetectJob> = Vec::with_capacity(batch.len());
        for job in batch {
            metrics
                .queue_wait_us
                .observe(job.enqueued.elapsed().as_micros() as u64);
            if job.enqueued.elapsed() > self.policy.request_timeout {
                inc(&metrics.timeouts_total);
                let _ = job.reply.send(Err(format!(
                    "request timed out after {:?} in queue",
                    self.policy.request_timeout
                )));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            return;
        }

        // Resolve the slot with a brief registry read lock, then release it
        // before the (potentially long) pipeline run. The span parents to
        // the first live request so the batch shows up in its trace tree.
        let mut registry_span = obs::span_with_parent("registry", live[0].trace_parent);
        registry_span.add_field("model", model);
        let slot = match registry.read() {
            Ok(reg) => reg.slot(model),
            Err(_) => None,
        };
        let Some(slot) = slot else {
            for job in live {
                let _ = job.reply.send(Err(format!("no such model {model:?}")));
            }
            return;
        };

        // Lock the model once for the whole batch (loading it on a miss).
        // The guard borrows `slot`, not the registry, so the read lock drops
        // right after.
        let guard = {
            let reg = match registry.read() {
                Ok(r) => r,
                Err(_) => {
                    for job in live {
                        let _ = job.reply.send(Err("registry poisoned".into()));
                    }
                    return;
                }
            };
            match reg.lock_loaded(&slot) {
                Ok(g) => g,
                Err(e) => {
                    for job in live {
                        let _ = job.reply.send(Err(e.clone()));
                    }
                    return;
                }
            }
        };
        let Some(fitted) = guard.as_ref() else {
            for job in live {
                let _ = job.reply.send(Err("model slot empty after load".into()));
            }
            return;
        };
        drop(registry_span);

        // Group identical payloads: one pipeline run per distinct series.
        let mut groups: Vec<(u64, Vec<DetectJob>)> = Vec::new();
        for job in live {
            let h = hash_series(&job.series);
            match groups
                .iter_mut()
                .find(|(gh, gjobs)| *gh == h && gjobs[0].series == job.series)
            {
                Some((_, gjobs)) => {
                    inc(&metrics.batch_dedup_hits);
                    gjobs.push(job);
                }
                None => groups.push((h, vec![job])),
            }
        }

        for (_, gjobs) in groups {
            let mut detect_span = obs::span_with_parent("detect", gjobs[0].trace_parent);
            detect_span.add_field("model", model);
            detect_span.add_field("n", gjobs[0].series.len());
            detect_span.add_field("fanout", gjobs.len());
            // try_detect: a hostile payload (empty / NaN series) must come
            // back as an error envelope, not kill the executor thread.
            let result = fitted
                .try_detect(&gjobs[0].series)
                .map(|det| detection_fields(model, &det))
                .map_err(|e| e.to_string());
            drop(detect_span);
            for job in gjobs {
                metrics
                    .detect_latency_us
                    .observe(job.enqueued.elapsed().as_micros() as u64);
                let _ = job.reply.send(result.clone());
            }
        }
    }
}

fn hash_series(xs: &[f64]) -> u64 {
    // FNV-1a over the raw f64 bits.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::get;
    use std::f64::consts::PI;
    use std::path::PathBuf;
    use std::sync::Arc;
    use triad_core::{TriAd, TriadConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("triad_batch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fixture(dir: &PathBuf, metrics: &Arc<Metrics>) -> Arc<RwLock<ModelRegistry>> {
        let train: Vec<f64> = (0..600)
            .map(|i| (2.0 * PI * i as f64 / 40.0).sin())
            .collect();
        let cfg = TriadConfig {
            epochs: 2,
            depth: 2,
            hidden: 6,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        };
        let fitted = TriAd::new(cfg).fit(&train).expect("fit");
        let mut reg = ModelRegistry::open(dir, 4, Arc::clone(metrics)).unwrap();
        reg.save_fitted("m", fitted).unwrap();
        Arc::new(RwLock::new(reg))
    }

    fn test_series() -> Vec<f64> {
        (0..300)
            .map(|i| {
                (2.0 * PI * i as f64 / 40.0).sin() + if (120..160).contains(&i) { 0.9 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn concurrent_identical_requests_batch_and_dedup() {
        let dir = tmp_dir("dedup");
        let metrics = Arc::new(Metrics::new());
        let registry = fixture(&dir, &metrics);
        let batcher = Arc::new(Batcher::new(BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_millis(40),
            request_timeout: Duration::from_secs(10),
        }));

        let exec = {
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || batcher.run_executor(&registry, &metrics))
        };

        let series = test_series();
        let rxs: Vec<_> = (0..6)
            .map(|_| batcher.submit("m", series.clone()))
            .collect();
        let mut bodies = Vec::new();
        for rx in rxs {
            bodies.push(
                rx.recv_timeout(Duration::from_secs(60))
                    .expect("reply")
                    .expect("ok"),
            );
        }
        for b in &bodies {
            assert_eq!(b.to_string(), bodies[0].to_string());
        }
        assert!(get(&metrics.batches_multi) >= 1, "no multi-request batch");
        assert!(get(&metrics.batch_dedup_hits) >= 1, "no dedup");
        assert_eq!(get(&metrics.batched_requests), 6);

        batcher.drain();
        exec.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_and_drain() {
        let dir = tmp_dir("unknown");
        let metrics = Arc::new(Metrics::new());
        let registry = fixture(&dir, &metrics);
        let batcher = Arc::new(Batcher::new(BatchPolicy {
            max_delay: Duration::from_millis(5),
            ..Default::default()
        }));
        let exec = {
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || batcher.run_executor(&registry, &metrics))
        };
        let rx = batcher.submit("ghost", vec![1.0, 2.0]);
        let err = rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .unwrap_err();
        assert!(err.contains("no such model"), "{err}");
        batcher.drain();
        exec.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_flushes_pending_jobs_without_executor_waiting_full_delay() {
        let dir = tmp_dir("drainflush");
        let metrics = Arc::new(Metrics::new());
        let registry = fixture(&dir, &metrics);
        // Huge max_delay: only drain() makes the job due.
        let batcher = Arc::new(Batcher::new(BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_secs(3600),
            request_timeout: Duration::from_secs(3600),
        }));
        let rx = batcher.submit("m", test_series());
        batcher.drain();
        let exec = {
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || batcher.run_executor(&registry, &metrics))
        };
        let body = rx.recv_timeout(Duration::from_secs(60)).unwrap().unwrap();
        assert!(body.get("selected").is_some());
        exec.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
