//@ path: crates/core/src/fixture.rs
//@ expect: suppress-reason
// lint-allow(no-unwrap)
pub fn missing_reason() {}

// lint-allow(not-a-rule): the rule name is wrong on purpose
pub fn unknown_rule() {}

pub fn suppressed_cleanly(o: Option<u32>) -> u32 {
    // lint-allow(no-unwrap): seeded fixture demonstrating a valid suppression
    o.unwrap()
}
