//! Standalone discord discovery — using the `discord` crate without any
//! learning: matrix profile ground truth, DRAG at a chosen range, and the
//! MERLIN / MERLIN++ variable-length sweeps on the same series.
//!
//! ```sh
//! cargo run --release --example discord_search
//! ```

use discord::matrix_profile::matrix_profile;
use discord::merlin::{merlin, MerlinConfig};
use discord::merlin_pp::merlin_pp;
use std::time::Instant;

fn main() {
    // A periodic signal with a 40-point frequency-shift anomaly.
    let n = 2400;
    let p = 60.0;
    let mut series: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64;
            (2.0 * std::f64::consts::PI * t / p).sin()
                + 0.3 * (4.0 * std::f64::consts::PI * t / p).sin()
        })
        .collect();
    for i in 1500..1540 {
        series[i] = (6.0 * std::f64::consts::PI * i as f64 / p).sin();
    }
    println!("series: {n} pts, anomaly at 1500..1540");

    // Ground truth at one length.
    let t0 = Instant::now();
    let mp = matrix_profile(&series, 60);
    let top = mp.top_discord().expect("non-degenerate profile");
    println!(
        "\nmatrix profile (w=60): top discord at {} (d={:.3}) in {:?}",
        top.index,
        top.distance,
        t0.elapsed()
    );

    // DRAG with a range slightly below the known top distance.
    let t0 = Instant::now();
    let ds = discord::drag::drag(&series, 60, top.distance * 0.9);
    println!(
        "DRAG (r=0.9·d*):      {} discord(s), top at {} in {:?}",
        ds.len(),
        ds[0].index,
        t0.elapsed()
    );

    // Variable-length sweeps.
    let sweep = MerlinConfig::new(20, 100).with_step(10);
    let t0 = Instant::now();
    let m = merlin(&series, sweep);
    let t_merlin = t0.elapsed();
    let t0 = Instant::now();
    let mpp = merlin_pp(&series, sweep);
    let t_mpp = t0.elapsed();
    println!("\nMERLIN sweep 20..100 step 10   ({t_merlin:?}):");
    for d in &m {
        println!(
            "  len {:>3} → start {:>5}  d={:.3}",
            d.length, d.index, d.distance
        );
    }
    println!(
        "MERLIN++ same sweep            ({t_mpp:?}): identical results = {}",
        m.len() == mpp.len() && m.iter().zip(&mpp).all(|(a, b)| a.index == b.index)
    );

    let hits = m
        .iter()
        .filter(|d| d.index < 1540 && d.index + d.length > 1500)
        .count();
    println!(
        "\n{hits}/{} per-length discords intersect the true anomaly",
        m.len()
    );
}
