//! The [`FleetManager`]: sharded stream management under a memory budget.
//!
//! Same architecture as `triad_stream::StreamManager` — stream names
//! FNV-route to worker shards, each one OS thread owning its engines, fed
//! by a bounded queue — plus the fleet tier:
//!
//! * every command updates a [`BudgetLedger`]; when a shard exceeds its
//!   slice of the global budget (`budget / shards`), least-recently
//!   touched engines are **evicted** to the [`CheckpointStore`] and
//!   dropped from RAM (the stream being served is never evicted under
//!   itself mid-command);
//! * a `push`/`poll`/`close` on an evicted stream **rehydrates** it from
//!   the newest intact generation first — bit-identical, so scores and
//!   `finalize` cannot tell eviction ever happened;
//! * each completed window's deviance feeds a per-stream
//!   [`DriftDetector`]; a drift entry schedules a background refit through
//!   the [`Refitter`] callback, and the refreshed model is swapped in at a
//!   window boundary fixed at detection time (`swap_horizon` windows
//!   later), so the swap point is a property of the *stream*, not of
//!   thread timing.
//!
//! Everything per-stream that must survive eviction (drift state, refit
//! bookkeeping, checkpoint generation, byte estimate) lives in the shard's
//! slot table, which is never evicted — only engines are.

use crate::budget::BudgetLedger;
use crate::drift::{DriftBaseline, DriftDetector, DriftPolicy, DriftSignal};
use crate::store::CheckpointStore;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};
use triad_core::{FittedTriad, PersistError, TriadConfig};
use triad_stream::checkpoint;
use triad_stream::engine::{StreamConfig, StreamEngine, StreamStatus};
use triad_stream::metrics::ShardMetrics;
use triad_stream::shard::{fnv1a, validate_name, CloseReport, ModelLoader, PushTicket};
use triad_stream::StreamError;

/// Everything a background refit needs to produce the replacement model.
///
/// The callback must fit `config` on `train` and persist the result under
/// `new_model` so the fleet's [`ModelLoader`] can load it by that name.
/// The serve tier implements this with `ModelRegistry::save_fitted`.
#[derive(Debug, Clone)]
pub struct RefitRequest {
    /// Stream whose drift triggered the refit.
    pub stream: String,
    /// Model the stream is currently bound to.
    pub base_model: String,
    /// Name the refreshed model must be saved under.
    pub new_model: String,
    /// Deterministic training slice: the stream's retained tail at the
    /// moment drift was detected.
    pub train: Vec<f64>,
    /// Base model's config with `period_override` pinned, so the refit
    /// keeps the window/stride/period geometry the engine requires.
    pub config: TriadConfig,
}

/// Fits and persists a replacement model; runs on the fleet's single
/// background refit thread.
pub type Refitter = Arc<dyn Fn(&RefitRequest) -> Result<(), String> + Send + Sync>;

/// Fleet-tier configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker shard count (≥ 1).
    pub shards: usize,
    /// Bounded ingest-queue depth per shard, in commands.
    pub queue_capacity: usize,
    /// Where generation-numbered checkpoints live. Unlike the flat
    /// manager, the fleet *requires* a store: eviction without a durable
    /// home would lose state.
    pub store_dir: PathBuf,
    /// Global resident-engine byte budget (0 = unlimited). Each shard
    /// enforces `budget / shards`.
    pub budget_bytes: usize,
    /// Per-stream engine defaults for newly opened streams.
    pub stream_defaults: StreamConfig,
    /// Most fitted models each shard keeps cached (LRU beyond that).
    pub model_cache_cap: usize,
    /// Drift / refit policy.
    pub drift: DriftPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 2,
            queue_capacity: 1024,
            store_dir: PathBuf::from("fleet_ckpt"),
            budget_bytes: 0,
            stream_defaults: StreamConfig::default(),
            model_cache_cap: 8,
            drift: DriftPolicy::default(),
        }
    }
}

/// Fleet-wide counters (shard gauges are indexed by shard id).
#[derive(Debug)]
pub struct FleetMetrics {
    pub evictions: AtomicU64,
    pub rehydrations: AtomicU64,
    pub rehydrate_failures: AtomicU64,
    pub compacted_files: AtomicU64,
    pub drift_events: AtomicU64,
    pub refits_requested: AtomicU64,
    pub refits_completed: AtomicU64,
    pub refits_failed: AtomicU64,
    resident_bytes: Vec<AtomicU64>,
    resident_streams: Vec<AtomicU64>,
    evicted_streams: Vec<AtomicU64>,
}

impl FleetMetrics {
    fn new(shards: usize) -> FleetMetrics {
        FleetMetrics {
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
            rehydrate_failures: AtomicU64::new(0),
            compacted_files: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            refits_requested: AtomicU64::new(0),
            refits_completed: AtomicU64::new(0),
            refits_failed: AtomicU64::new(0),
            resident_bytes: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            resident_streams: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            evicted_streams: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Point-in-time snapshot of the fleet counters, for `stats` and the soak
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    pub budget_bytes: u64,
    pub resident_bytes: u64,
    pub resident_streams: u64,
    pub evicted_streams: u64,
    pub evictions: u64,
    pub rehydrations: u64,
    pub rehydrate_failures: u64,
    pub compacted_files: u64,
    pub drift_events: u64,
    pub refits_requested: u64,
    pub refits_completed: u64,
    pub refits_failed: u64,
}

// --------------------------------------------------------- refit plumbing

struct RefitJob {
    stream: String,
    request: RefitRequest,
}

/// Completion board for background refits: shard workers block on it at
/// the swap boundary, the refit thread posts results into it.
#[derive(Default)]
struct RefitLedger {
    inner: Mutex<BTreeMap<String, Option<Result<(), String>>>>,
    cv: Condvar,
}

impl RefitLedger {
    fn begin(&self, stream: &str) {
        if let Ok(mut map) = self.inner.lock() {
            map.insert(stream.to_string(), None);
        }
    }

    fn complete(&self, stream: &str, result: Result<(), String>) {
        if let Ok(mut map) = self.inner.lock() {
            map.insert(stream.to_string(), Some(result));
        }
        self.cv.notify_all();
    }

    /// Block until the stream's refit posts a result (bounded: ~600 s).
    fn wait(&self, stream: &str) -> Option<Result<(), String>> {
        let mut guard = self.inner.lock().ok()?;
        // 6000 × 100 ms: generous for a refit, but a lost refit thread
        // must surface as a failed swap, not a hung shard.
        for _ in 0..6000 {
            match guard.get(stream) {
                Some(Some(_)) => break,
                Some(None) => {}
                None => return None,
            }
            let (g, _timeout) = self
                .cv
                .wait_timeout(guard, std::time::Duration::from_millis(100))
                .ok()?;
            guard = g;
        }
        guard.get(stream).cloned().flatten()
    }

    fn clear(&self, stream: &str) {
        if let Ok(mut map) = self.inner.lock() {
            map.remove(stream);
        }
    }
}

// -------------------------------------------------------------- commands

enum Command {
    Open {
        stream: String,
        model: String,
        reply: Sender<Result<(), StreamError>>,
    },
    Push {
        stream: String,
        points: Vec<f64>,
    },
    Poll {
        stream: String,
        reply: Sender<Result<StreamStatus, StreamError>>,
    },
    Close {
        stream: String,
        reply: Sender<Result<CloseReport, StreamError>>,
    },
    Checkpoint {
        stream: Option<String>,
        reply: Sender<Result<usize, StreamError>>,
    },
    List {
        reply: Sender<Vec<String>>,
    },
    Shutdown,
}

/// Memory-budgeted sharded stream manager. See the module docs.
pub struct FleetManager {
    senders: Vec<Sender<Command>>,
    receivers: Vec<Receiver<Command>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    metrics: Vec<Arc<ShardMetrics>>,
    fleet: Arc<FleetMetrics>,
    refit_tx: Option<Sender<RefitJob>>,
    refit_handle: Option<std::thread::JoinHandle<()>>,
    budget_bytes: usize,
}

impl FleetManager {
    /// Spawn the shard workers (and, when a [`Refitter`] is supplied, the
    /// background refit worker). Streams with durable generations in the
    /// store are re-adopted as *evicted* slots before commands are
    /// accepted — a restarted fleet answers `poll` for every stream it
    /// knew, paying rehydration cost only when one is actually touched.
    pub fn new(
        cfg: FleetConfig,
        loader: ModelLoader,
        refitter: Option<Refitter>,
    ) -> Result<FleetManager, StreamError> {
        let shards = cfg.shards.max(1);
        let store = CheckpointStore::open(&cfg.store_dir)
            .map_err(|e| StreamError::Checkpoint(PersistError::Format(e)))?;
        let fleet = Arc::new(FleetMetrics::new(shards));
        let metrics: Vec<Arc<ShardMetrics>> =
            (0..shards).map(|_| Arc::new(ShardMetrics::new())).collect();

        let refit_ledger = Arc::new(RefitLedger::default());
        let (refit_tx, refit_handle) = match refitter {
            Some(refitter) => {
                let (tx, rx) = bounded::<RefitJob>(1024);
                let ledger = Arc::clone(&refit_ledger);
                let handle = std::thread::Builder::new()
                    .name("triad-fleet-refit".into())
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let mut span = obs::span("fleet-refit");
                            span.add_field("stream", &job.stream);
                            span.add_field("model", &job.request.new_model);
                            let result = refitter(&job.request);
                            span.add_field("ok", result.is_ok());
                            ledger.complete(&job.stream, result);
                        }
                    })
                    // lint-allow(no-unwrap): thread-spawn failure at startup
                    // is unrecoverable resource exhaustion
                    .expect("spawn fleet refit worker");
                (Some(tx), Some(handle))
            }
            None => (None, None),
        };

        // Route every durable stream to the shard its name hashes to.
        let mut adoptions: Vec<Vec<(String, u64)>> = vec![Vec::new(); shards];
        for (stream, generation) in store.list() {
            let shard = (fnv1a(&stream) % shards as u64) as usize;
            adoptions[shard].push((stream, generation));
        }

        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let per_shard_budget = if cfg.budget_bytes == 0 {
            0
        } else {
            (cfg.budget_bytes / shards).max(1)
        };
        for (shard_id, adopt) in adoptions.into_iter().enumerate() {
            let (tx, rx) = bounded::<Command>(cfg.queue_capacity.max(1));
            let worker_rx = rx.clone();
            // FittedTriad is !Send (Rc-based tape), so the model cache —
            // and with it the whole ShardCtx — must be built on the shard
            // thread; only Send ingredients cross.
            let init = ShardInit {
                shard_id,
                cache_cap: cfg.model_cache_cap.max(1),
                loader: Arc::clone(&loader),
                store: store.clone(),
                metrics: Arc::clone(&metrics[shard_id]),
                fleet: Arc::clone(&fleet),
                defaults: cfg.stream_defaults.clone(),
                policy: cfg.drift.clone(),
                budget: per_shard_budget,
                refit_tx: refit_tx.clone(),
                refit_ledger: Arc::clone(&refit_ledger),
            };
            let handle = std::thread::Builder::new()
                .name(format!("triad-fleet-shard-{shard_id}"))
                .spawn(move || shard_main(worker_rx, init, adopt))
                // lint-allow(no-unwrap): thread-spawn failure at startup is
                // unrecoverable resource exhaustion
                .expect("spawn fleet shard worker");
            senders.push(tx);
            receivers.push(rx);
            handles.push(handle);
        }

        Ok(FleetManager {
            senders,
            receivers,
            handles,
            metrics,
            fleet,
            refit_tx,
            refit_handle,
            budget_bytes: cfg.budget_bytes,
        })
    }

    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    pub fn shard_of(&self, stream: &str) -> usize {
        (fnv1a(stream) % self.senders.len() as u64) as usize
    }

    pub fn shard_metrics(&self) -> &[Arc<ShardMetrics>] {
        &self.metrics
    }

    pub fn fleet_metrics(&self) -> &FleetMetrics {
        &self.fleet
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Snapshot of the fleet counters (gauges summed over shards).
    pub fn fleet_stats(&self) -> FleetStats {
        let m = &self.fleet;
        let sum = |v: &[AtomicU64]| v.iter().map(ShardMetrics::get).sum::<u64>();
        FleetStats {
            budget_bytes: self.budget_bytes as u64,
            resident_bytes: sum(&m.resident_bytes),
            resident_streams: sum(&m.resident_streams),
            evicted_streams: sum(&m.evicted_streams),
            evictions: ShardMetrics::get(&m.evictions),
            rehydrations: ShardMetrics::get(&m.rehydrations),
            rehydrate_failures: ShardMetrics::get(&m.rehydrate_failures),
            compacted_files: ShardMetrics::get(&m.compacted_files),
            drift_events: ShardMetrics::get(&m.drift_events),
            refits_requested: ShardMetrics::get(&m.refits_requested),
            refits_completed: ShardMetrics::get(&m.refits_completed),
            refits_failed: ShardMetrics::get(&m.refits_failed),
        }
    }

    fn request<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Result<T, StreamError>>) -> Command,
    ) -> Result<T, StreamError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.senders[shard]
            .send(make(reply_tx))
            .map_err(|_| StreamError::ShardUnavailable)?;
        // Generous: Open may fit a model, Close may block on a refit swap.
        reply_rx
            .recv_timeout(std::time::Duration::from_secs(600))
            .map_err(|_| StreamError::ShardUnavailable)?
    }

    /// Open a stream bound to a registered model name. A stream with
    /// durable generations in the store resumes from them (the checkpoint
    /// records which model it was built with).
    pub fn open(&self, stream: &str, model: &str) -> Result<(), StreamError> {
        validate_name(stream, "stream")?;
        validate_name(model, "model")?;
        let shard = self.shard_of(stream);
        self.request(shard, |reply| Command::Open {
            stream: stream.to_string(),
            model: model.to_string(),
            reply,
        })
    }

    /// Enqueue a batch of points; never blocks (full queue sheds the batch
    /// with explicit accounting, exactly like the flat manager).
    pub fn push(&self, stream: &str, points: &[f64]) -> Result<PushTicket, StreamError> {
        validate_name(stream, "stream")?;
        let shard = self.shard_of(stream);
        let cmd = Command::Push {
            stream: stream.to_string(),
            points: points.to_vec(),
        };
        match self.senders[shard].try_send(cmd) {
            Ok(()) => {
                ShardMetrics::add(&self.metrics[shard].ingested, points.len() as u64);
                Ok(PushTicket {
                    queued: true,
                    dropped: 0,
                    queue_len: self.receivers[shard].len(),
                    shard,
                })
            }
            Err(TrySendError::Full(_)) => {
                ShardMetrics::add(
                    &self.metrics[shard].dropped_backpressure,
                    points.len() as u64,
                );
                Ok(PushTicket {
                    queued: false,
                    dropped: points.len(),
                    queue_len: self.receivers[shard].len(),
                    shard,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(StreamError::ShardUnavailable),
        }
    }

    /// Status snapshot; rehydrates an evicted stream first.
    pub fn poll(&self, stream: &str) -> Result<StreamStatus, StreamError> {
        validate_name(stream, "stream")?;
        let shard = self.shard_of(stream);
        self.request(shard, |reply| Command::Poll {
            stream: stream.to_string(),
            reply,
        })
    }

    /// Close a stream: final status + offline-equivalent detection (after
    /// rehydration when needed); all durable generations are removed.
    pub fn close(&self, stream: &str) -> Result<CloseReport, StreamError> {
        validate_name(stream, "stream")?;
        let shard = self.shard_of(stream);
        self.request(shard, |reply| Command::Close {
            stream: stream.to_string(),
            reply,
        })
    }

    /// Write a new generation for one stream (or sweep every shard when
    /// `None`, skipping clean and already-durable streams). Returns how
    /// many generations were written.
    pub fn checkpoint(&self, stream: Option<&str>) -> Result<usize, StreamError> {
        match stream {
            Some(name) => {
                validate_name(name, "stream")?;
                let shard = self.shard_of(name);
                self.request(shard, |reply| Command::Checkpoint {
                    stream: Some(name.to_string()),
                    reply,
                })
            }
            None => {
                let mut written = 0;
                for shard in 0..self.senders.len() {
                    written += self.request(shard, |reply| Command::Checkpoint {
                        stream: None,
                        reply,
                    })?;
                }
                Ok(written)
            }
        }
    }

    /// Names of every open stream (resident or evicted), across shards.
    pub fn streams(&self) -> Vec<String> {
        let mut all = Vec::new();
        for shard in 0..self.senders.len() {
            let (reply_tx, reply_rx) = bounded(1);
            if self.senders[shard]
                .send(Command::List { reply: reply_tx })
                .is_ok()
            {
                if let Ok(mut names) = reply_rx.recv_timeout(std::time::Duration::from_secs(600)) {
                    all.append(&mut names);
                }
            }
        }
        all.sort();
        all
    }
}

impl Drop for FleetManager {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Command::Shutdown);
        }
        self.senders.clear();
        self.receivers.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // All shard-held clones are gone now; dropping ours ends the refit
        // worker's receive loop.
        self.refit_tx = None;
        if let Some(handle) = self.refit_handle.take() {
            let _ = handle.join();
        }
    }
}

// ------------------------------------------------------------ shard worker

struct PendingRefit {
    new_model: String,
    /// Swap when `windows_seen` reaches this count — fixed at drift time,
    /// so the swap point is deterministic in stream coordinates.
    swap_at: u64,
}

/// Per-stream slot. Everything here survives eviction; only `engine` is
/// dropped to reclaim memory.
struct Slot {
    engine: Option<StreamEngine>,
    model: String,
    /// Original model name, before any `.{stream}.rN` refit suffixes.
    root_model: String,
    /// Last written checkpoint generation (0 = none yet).
    generation: u64,
    /// Engine stamp at the last written generation.
    saved: Option<(u64, u64)>,
    drift: Option<DriftDetector>,
    /// Monotone count of completed windows (the engine's own count resets
    /// on rebind; this one never does).
    windows_seen: u64,
    refits: u64,
    pending: Option<PendingRefit>,
}

struct CachedModel {
    fitted: Rc<FittedTriad>,
    baseline: DriftBaseline,
    last_used: u64,
}

/// The `Send` subset of shard state: crosses into the worker thread, which
/// builds the full [`ShardCtx`] (with its `!Send` model cache) locally.
struct ShardInit {
    shard_id: usize,
    cache_cap: usize,
    loader: ModelLoader,
    store: CheckpointStore,
    metrics: Arc<ShardMetrics>,
    fleet: Arc<FleetMetrics>,
    defaults: StreamConfig,
    policy: DriftPolicy,
    budget: usize,
    refit_tx: Option<Sender<RefitJob>>,
    refit_ledger: Arc<RefitLedger>,
}

struct ShardCtx {
    shard_id: usize,
    streams: BTreeMap<String, Slot>,
    models: BTreeMap<String, CachedModel>,
    model_clock: u64,
    cache_cap: usize,
    loader: ModelLoader,
    store: CheckpointStore,
    metrics: Arc<ShardMetrics>,
    fleet: Arc<FleetMetrics>,
    defaults: StreamConfig,
    policy: DriftPolicy,
    ledger: BudgetLedger,
    refit_tx: Option<Sender<RefitJob>>,
    refit_ledger: Arc<RefitLedger>,
}

/// `"base.r3"` → `("base", 3)`; anything else is its own root.
fn refit_root(model: &str) -> (&str, u64) {
    if let Some((root, digits)) = model.rsplit_once(".r") {
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = digits.parse() {
                return (root, n);
            }
        }
    }
    (model, 0)
}

impl ShardCtx {
    /// Load (or fetch cached) a model plus its drift baseline; LRU-bounded
    /// exactly like the flat manager's shard cache.
    fn model(&mut self, name: &str) -> Result<(Rc<FittedTriad>, DriftBaseline), StreamError> {
        self.model_clock += 1;
        if let Some(entry) = self.models.get_mut(name) {
            entry.last_used = self.model_clock;
            return Ok((Rc::clone(&entry.fitted), entry.baseline));
        }
        let fitted = (self.loader)(name).map_err(StreamError::ModelLoad)?;
        let baseline = DriftBaseline::from_model(&fitted);
        let rc = Rc::new(fitted);
        self.models.insert(
            name.to_string(),
            CachedModel {
                fitted: Rc::clone(&rc),
                baseline,
                last_used: self.model_clock,
            },
        );
        while self.models.len() > self.cache_cap {
            let victim = self
                .models
                .iter()
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.models.remove(&k);
                }
                None => break,
            }
        }
        Ok((rc, baseline))
    }

    /// Write a new generation for a resident stream when dirty (or always,
    /// when `force`), then compact superseded generations. Returns whether
    /// a file was written.
    fn write_generation(&mut self, name: &str, force: bool) -> Result<bool, StreamError> {
        let Some(slot) = self.streams.get(name) else {
            return Err(StreamError::UnknownStream(name.to_string()));
        };
        let Some(engine) = slot.engine.as_ref() else {
            // Evicted streams are durable by construction.
            return Ok(false);
        };
        let stamp = engine.state_stamp();
        if !force && slot.saved == Some(stamp) {
            return Ok(false);
        }
        let generation = slot.generation + 1;
        let mut payload = Vec::new();
        checkpoint::save(&mut payload, name, &slot.model, engine)?;
        self.store
            .put(name, generation, &payload)
            .map_err(|e| StreamError::Checkpoint(PersistError::Format(e)))?;
        let mut span = obs::span("fleet-compact");
        span.add_field("stream", name);
        let compacted = self.store.compact(name, generation);
        span.add_field("removed", compacted);
        drop(span);
        ShardMetrics::add(&self.fleet.compacted_files, compacted as u64);
        ShardMetrics::add(&self.metrics.checkpoints_written, 1);
        if let Some(slot) = self.streams.get_mut(name) {
            slot.generation = generation;
            slot.saved = Some(stamp);
        }
        Ok(true)
    }

    /// Evict one stream: persist its state (if dirty) and drop the engine.
    fn evict(&mut self, name: &str) -> Result<(), StreamError> {
        let mut span = obs::span("fleet-evict");
        span.add_field("stream", name);
        span.add_field("shard", self.shard_id);
        self.write_generation(name, false)?;
        if let Some(slot) = self.streams.get_mut(name) {
            slot.engine = None;
        }
        let freed = self.ledger.remove(name);
        span.add_field("freed_bytes", freed);
        ShardMetrics::add(&self.fleet.evictions, 1);
        Ok(())
    }

    /// Rehydrate an evicted stream from its newest intact generation.
    fn ensure_resident(&mut self, name: &str) -> Result<(), StreamError> {
        match self.streams.get(name) {
            None => return Err(StreamError::UnknownStream(name.to_string())),
            Some(slot) if slot.engine.is_some() => return Ok(()),
            Some(_) => {}
        }
        let mut span = obs::span("fleet-rehydrate");
        span.add_field("stream", name);
        span.add_field("shard", self.shard_id);
        let Some((generation, payload)) = self.store.latest(name) else {
            ShardMetrics::add(&self.fleet.rehydrate_failures, 1);
            return Err(StreamError::Checkpoint(PersistError::Format(format!(
                "no intact generation for evicted stream {name:?}"
            ))));
        };
        span.add_field("generation", generation);
        let state = checkpoint::load(payload.as_slice()).inspect_err(|_| {
            ShardMetrics::add(&self.fleet.rehydrate_failures, 1);
        })?;
        let model_name = state.model.clone();
        let (fitted, baseline) = self.model(&model_name).inspect_err(|_| {
            ShardMetrics::add(&self.fleet.rehydrate_failures, 1);
        })?;
        let engine = state.into_engine(&fitted).inspect_err(|_| {
            ShardMetrics::add(&self.fleet.rehydrate_failures, 1);
        })?;
        let stamp = engine.state_stamp();
        let bytes = engine.estimated_bytes();
        let policy = self.policy.clone();
        if let Some(slot) = self.streams.get_mut(name) {
            slot.model = model_name;
            slot.generation = generation;
            slot.saved = Some(stamp);
            if slot.drift.is_none() && policy.enabled {
                slot.drift = Some(DriftDetector::new(baseline, &policy));
            }
            slot.engine = Some(engine);
        }
        self.ledger.touch(name);
        self.ledger.set_bytes(name, bytes);
        ShardMetrics::add(&self.fleet.rehydrations, 1);
        Ok(())
    }

    /// Evict LRU streams until this shard is back under its byte cap.
    /// `protect` is the stream being served right now: with `Some`, every
    /// *other* resident engine can go but that one stays (a transient
    /// overshoot a later `enforce_budget(None)` at batch end settles).
    fn enforce_budget(&mut self, protect: Option<&str>) {
        while self.ledger.over_budget() {
            let Some(victim) = self.ledger.victim(protect) else {
                break;
            };
            if self.evict(&victim).is_err() {
                // Persist failed: dropping the engine would lose state, so
                // keep it resident and stop trying (the overshoot shows up
                // in the gauges rather than as silent data loss).
                break;
            }
        }
    }

    /// Refresh the published per-shard gauges after a command.
    fn publish_gauges(&self) {
        let resident = self.ledger.resident() as u64;
        ShardMetrics::set(
            &self.fleet.resident_bytes[self.shard_id],
            self.ledger.total() as u64,
        );
        ShardMetrics::set(&self.fleet.resident_streams[self.shard_id], resident);
        ShardMetrics::set(
            &self.fleet.evicted_streams[self.shard_id],
            self.streams.len() as u64 - resident.min(self.streams.len() as u64),
        );
        ShardMetrics::set(&self.metrics.open_streams, self.streams.len() as u64);
    }

    /// Adopt a durable stream at startup as an evicted slot (no engine
    /// loaded — rehydration happens on first touch).
    fn adopt(&mut self, name: &str, generation: u64) -> Result<(), StreamError> {
        let Some((_, payload)) = self.store.latest(name) else {
            return Err(StreamError::Checkpoint(PersistError::Format(format!(
                "no intact generation for {name:?}"
            ))));
        };
        let state = checkpoint::load(payload.as_slice())?;
        validate_name(&state.stream, "stream")?;
        validate_name(&state.model, "model")?;
        if state.stream != name {
            return Err(StreamError::Checkpoint(PersistError::Format(format!(
                "checkpoint for {name:?} names stream {:?}",
                state.stream
            ))));
        }
        let (root, refits) = refit_root(&state.model);
        // Refit names are `{root}.{stream}.rN` — recover the true base so
        // the next refit doesn't stack another stream scope on top.
        let root = root.strip_suffix(&format!(".{name}")).unwrap_or(root);
        self.streams.insert(
            name.to_string(),
            Slot {
                engine: None,
                model: state.model.clone(),
                root_model: root.to_string(),
                generation,
                saved: None,
                drift: None,
                windows_seen: 0,
                refits,
                pending: None,
            },
        );
        Ok(())
    }

    /// While a drift episode is open: build the deterministic refit request
    /// and hand it to the background worker. Returns whether a refit was
    /// actually dispatched (one per episode at most — `pending` gates).
    fn schedule_refit(&mut self, stream: &str) -> bool {
        let Some(tx) = self.refit_tx.clone() else {
            return false;
        };
        let Some(slot) = self.streams.get(stream) else {
            return false;
        };
        if slot.pending.is_some() || slot.refits >= self.policy.max_refits {
            return false;
        }
        let Some(engine) = slot.engine.as_ref() else {
            return false;
        };
        // Refit models are fitted on *this stream's* recent points, so the
        // name is scoped by stream: streams sharing a base model must never
        // race to (re)define the same refit name.
        let new_model = format!("{}.{}.r{}", slot.root_model, stream, slot.refits + 1);
        if validate_name(&new_model, "model").is_err() {
            return false; // combined name too long to suffix; refit impossible
        }
        let base_model = slot.model.clone();
        let train = engine.recent(self.policy.refit_train_len.max(engine.window_len() + 1));
        // The offline fit needs at least two full windows of training data;
        // with less retained history the refit would fail outright. Skip
        // for now — the episode is still open, so a later window retries.
        if train.len() < engine.window_len() * 2 {
            return false;
        }
        let swap_at = slot.windows_seen + self.policy.swap_horizon.max(1);
        let Ok((fitted, _)) = self.model(&base_model) else {
            return false;
        };
        let mut config = fitted.config().clone();
        // Pin the geometry: the engine can only rebind to a model with the
        // same window/stride/period.
        config.period_override = Some(fitted.period());
        let request = RefitRequest {
            stream: stream.to_string(),
            base_model,
            new_model: new_model.clone(),
            train,
            config,
        };
        self.refit_ledger.begin(stream);
        if tx
            .send(RefitJob {
                stream: stream.to_string(),
                request,
            })
            .is_err()
        {
            self.refit_ledger.clear(stream);
            return false;
        }
        ShardMetrics::add(&self.fleet.refits_requested, 1);
        if let Some(slot) = self.streams.get_mut(stream) {
            slot.pending = Some(PendingRefit { new_model, swap_at });
        }
        true
    }

    /// At the deterministic swap boundary: wait for the background refit,
    /// rebind the engine to the refreshed model, reset drift state against
    /// the new model's training baseline.
    fn apply_pending_swap(&mut self, stream: &str) {
        let due = match self.streams.get(stream) {
            Some(slot) => match (&slot.pending, &slot.engine) {
                (Some(p), Some(_)) => {
                    if slot.windows_seen >= p.swap_at {
                        Some(p.new_model.clone())
                    } else {
                        None
                    }
                }
                _ => None,
            },
            None => None,
        };
        let Some(new_model) = due else {
            return;
        };
        let mut span = obs::span("fleet-refit-swap");
        span.add_field("stream", stream);
        span.add_field("model", &new_model);
        let outcome = self.refit_ledger.wait(stream);
        self.refit_ledger.clear(stream);
        let swapped = match outcome {
            Some(Ok(())) => match self.model(&new_model) {
                Ok((fitted, baseline)) => {
                    let policy = self.policy.clone();
                    match self.streams.get_mut(stream) {
                        Some(slot) => match slot.engine.as_mut() {
                            Some(engine) => match engine.rebind(&fitted) {
                                Ok(()) => {
                                    slot.model = new_model;
                                    slot.refits += 1;
                                    slot.drift = Some(DriftDetector::new(baseline, &policy));
                                    // The swapped engine must reach disk
                                    // under its new model name eventually;
                                    // mark dirty so the next sweep/evict
                                    // writes it.
                                    slot.saved = None;
                                    true
                                }
                                Err(_) => false,
                            },
                            None => false,
                        },
                        None => false,
                    }
                }
                Err(_) => false,
            },
            _ => false,
        };
        span.add_field("ok", swapped);
        if let Some(slot) = self.streams.get_mut(stream) {
            slot.pending = None;
        }
        if swapped {
            ShardMetrics::add(&self.fleet.refits_completed, 1);
        } else {
            ShardMetrics::add(&self.fleet.refits_failed, 1);
        }
    }
}

fn shard_main(rx: Receiver<Command>, init: ShardInit, adopt: Vec<(String, u64)>) {
    let mut st = ShardCtx {
        shard_id: init.shard_id,
        streams: BTreeMap::new(),
        models: BTreeMap::new(),
        model_clock: 0,
        cache_cap: init.cache_cap,
        loader: init.loader,
        store: init.store,
        metrics: init.metrics,
        fleet: init.fleet,
        defaults: init.defaults,
        policy: init.policy,
        ledger: BudgetLedger::new(init.budget),
        refit_tx: init.refit_tx,
        refit_ledger: init.refit_ledger,
    };
    for (name, generation) in &adopt {
        if st.adopt(name, *generation).is_err() {
            ShardMetrics::add(&st.metrics.checkpoint_failures, 1);
        }
    }
    st.publish_gauges();

    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Open {
                stream,
                model,
                reply,
            } => {
                let mut span = obs::span("fleet-open");
                span.add_field("stream", &stream);
                let result = if st.streams.contains_key(&stream) {
                    Err(StreamError::DuplicateStream(stream.clone()))
                } else if st.store.latest(&stream).is_some() {
                    // Durable state exists (e.g. opened before a restart
                    // that missed adoption): resume it; the checkpoint
                    // knows its own model.
                    let gen = st.store.generations(&stream).last().copied().unwrap_or(0);
                    st.adopt(&stream, gen)
                        .and_then(|()| st.ensure_resident(&stream))
                } else {
                    st.model(&model).map(|(fitted, baseline)| {
                        let engine = StreamEngine::new(&fitted, st.defaults.clone());
                        let bytes = engine.estimated_bytes();
                        let drift = st
                            .policy
                            .enabled
                            .then(|| DriftDetector::new(baseline, &st.policy));
                        st.streams.insert(
                            stream.clone(),
                            Slot {
                                engine: Some(engine),
                                root_model: model.clone(),
                                model,
                                generation: 0,
                                saved: None,
                                drift,
                                windows_seen: 0,
                                refits: 0,
                                pending: None,
                            },
                        );
                        st.ledger.touch(&stream);
                        st.ledger.set_bytes(&stream, bytes);
                    })
                };
                if result.is_ok() {
                    st.enforce_budget(Some(&stream));
                    st.enforce_budget(None);
                }
                st.publish_gauges();
                let _ = reply.send(result);
            }
            Command::Push { stream, points } => {
                if !st.streams.contains_key(&stream) {
                    continue;
                }
                if st.ensure_resident(&stream).is_err() {
                    continue;
                }
                st.ledger.touch(&stream);
                let mut ingest_span = obs::span("fleet-ingest");
                ingest_span.add_field("stream", &stream);
                ingest_span.add_field("points", points.len());
                let events_before = st
                    .streams
                    .get(&stream)
                    .and_then(|s| s.engine.as_ref())
                    .map_or(0, |e| e.events().len());
                for &x in &points {
                    // Re-resolve the model every point: a swap applied at
                    // the previous point's window boundary means the rest
                    // of the batch must score under the refreshed model
                    // (cache hit + Rc clone — no refit cost here).
                    let Some(model_name) = st.streams.get(&stream).map(|s| s.model.clone()) else {
                        break;
                    };
                    let Ok((fitted, _)) = st.model(&model_name) else {
                        break;
                    };
                    let Some(slot) = st.streams.get_mut(&stream) else {
                        break;
                    };
                    let Some(engine) = slot.engine.as_mut() else {
                        break;
                    };
                    let t0 = obs::now_ns();
                    let mut drift_entered = false;
                    let mut drifting = false;
                    match engine.push(&fitted, x) {
                        Ok(outcome) => {
                            if let Some(w) = outcome.completed_window {
                                let end = obs::now_ns();
                                ShardMetrics::add(&st.metrics.windows_scored, 1);
                                st.metrics.score_latency_us.observe((end - t0) / 1_000);
                                obs::record_span("fleet-score", t0, end, Vec::new());
                                slot.windows_seen += 1;
                                if let (Some(det), Some(dev)) = (slot.drift.as_mut(), w.deviance) {
                                    drift_entered = det.observe(dev) == DriftSignal::Entered;
                                    drifting = det.drifting();
                                }
                            }
                        }
                        Err(_) => ShardMetrics::add(&st.metrics.dropped_nonfinite, 1),
                    }
                    if drift_entered {
                        ShardMetrics::add(&st.fleet.drift_events, 1);
                    }
                    // Schedule while the episode is open, not just at the
                    // entry edge: an entry with too little retained history
                    // to refit on gets retried at the next scored window.
                    if drifting {
                        let d0 = obs::now_ns();
                        if st.schedule_refit(&stream) {
                            obs::record_span(
                                "fleet-drift",
                                d0,
                                obs::now_ns(),
                                vec![("stream", stream.clone())],
                            );
                        }
                    }
                    st.apply_pending_swap(&stream);
                }
                let events_after = st
                    .streams
                    .get(&stream)
                    .and_then(|s| s.engine.as_ref())
                    .map_or(0, |e| e.events().len());
                ShardMetrics::add(
                    &st.metrics.events_opened,
                    events_after.saturating_sub(events_before) as u64,
                );
                drop(ingest_span);
                if let Some(bytes) = st
                    .streams
                    .get(&stream)
                    .and_then(|s| s.engine.as_ref())
                    .map(|e| e.estimated_bytes())
                {
                    st.ledger.set_bytes(&stream, bytes);
                }
                // First pass spares the stream just served; if it alone
                // exceeds the shard slice, the batch-end pass takes it too,
                // so published residency never exceeds the cap.
                st.enforce_budget(Some(&stream));
                st.enforce_budget(None);
                st.publish_gauges();
            }
            Command::Poll { stream, reply } => {
                let result = match st.ensure_resident(&stream) {
                    Err(e) => Err(e),
                    Ok(()) => {
                        st.ledger.touch(&stream);
                        st.streams
                            .get(&stream)
                            .and_then(|s| s.engine.as_ref())
                            .map(|e| e.status())
                            .ok_or(StreamError::UnknownStream(stream.clone()))
                    }
                };
                // Status is captured; if this stream alone busts the shard
                // slice, the second pass may evict it too — published
                // residency never exceeds the cap.
                st.enforce_budget(Some(&stream));
                st.enforce_budget(None);
                st.publish_gauges();
                let _ = reply.send(result);
            }
            Command::Close { stream, reply } => {
                let result = match st.ensure_resident(&stream) {
                    Err(e) => Err(e),
                    Ok(()) => match st.streams.get(&stream).map(|s| s.model.clone()) {
                        None => Err(StreamError::UnknownStream(stream.clone())),
                        Some(model_name) => {
                            let fitted = st.model(&model_name);
                            match st.streams.remove(&stream) {
                                Some(Slot {
                                    engine: Some(engine),
                                    ..
                                }) => {
                                    let status = engine.status();
                                    let (detection, finalize_error) = match &fitted {
                                        Ok((f, _)) => match engine.finalize(f) {
                                            Ok(det) => (Some(det), None),
                                            Err(e) => (None, Some(e.to_string())),
                                        },
                                        Err(e) => (None, Some(e.to_string())),
                                    };
                                    st.ledger.remove(&stream);
                                    st.refit_ledger.clear(&stream);
                                    st.store.remove_stream(&stream);
                                    Ok(CloseReport {
                                        status,
                                        detection,
                                        finalize_error,
                                    })
                                }
                                // ensure_resident guaranteed an engine, so
                                // a slot without one cannot be reached.
                                _ => Err(StreamError::UnknownStream(stream.clone())),
                            }
                        }
                    },
                };
                st.publish_gauges();
                let _ = reply.send(result);
            }
            Command::Checkpoint { stream, reply } => {
                let result = match stream {
                    Some(name) => {
                        if !st.streams.contains_key(&name) {
                            Err(StreamError::UnknownStream(name))
                        } else {
                            // Evicted streams are durable already; a
                            // resident one is written unconditionally.
                            st.write_generation(&name, true).map(usize::from)
                        }
                    }
                    None => {
                        let names: Vec<String> = st.streams.keys().cloned().collect();
                        let mut written = 0usize;
                        let mut first_err = None;
                        for name in names {
                            match st.write_generation(&name, false) {
                                Ok(true) => written += 1,
                                Ok(false) => {
                                    ShardMetrics::add(&st.metrics.checkpoints_skipped_clean, 1)
                                }
                                Err(e) => {
                                    ShardMetrics::add(&st.metrics.checkpoint_failures, 1);
                                    first_err.get_or_insert(e);
                                }
                            }
                        }
                        match first_err {
                            Some(e) if written == 0 && !st.streams.is_empty() => Err(e),
                            _ => Ok(written),
                        }
                    }
                };
                let _ = reply.send(result);
            }
            Command::List { reply } => {
                let _ = reply.send(st.streams.keys().cloned().collect());
            }
            Command::Shutdown => {
                let names: Vec<String> = st.streams.keys().cloned().collect();
                for name in names {
                    match st.write_generation(&name, false) {
                        Ok(true) => {}
                        Ok(false) => ShardMetrics::add(&st.metrics.checkpoints_skipped_clean, 1),
                        Err(_) => ShardMetrics::add(&st.metrics.checkpoint_failures, 1),
                    }
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use std::sync::Mutex;
    use std::time::Duration;
    use triad_core::TriAd;

    fn quick_cfg() -> TriadConfig {
        TriadConfig {
            epochs: 2,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        }
    }

    fn periodic(n: usize, p: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * PI * i as f64 / p).sin()
                    + 0.3 * (4.0 * PI * i as f64 / p).sin()
                    + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
            })
            .collect()
    }

    /// Refit recipes posted by the [`Refitter`], consumed by the loader:
    /// `FittedTriad` is `!Send`, so what crosses threads is (config, train),
    /// and the shard thread fits it on demand like any other model.
    type RecipeBook = Arc<Mutex<BTreeMap<String, (TriadConfig, Vec<f64>)>>>;

    fn loader_with(recipes: RecipeBook) -> ModelLoader {
        Arc::new(move |name: &str| {
            let recipe = recipes
                .lock()
                .map_err(|_| "recipe lock poisoned".to_string())?
                .get(name)
                .cloned();
            match recipe {
                Some((cfg, train)) => TriAd::new(cfg).fit(&train).map_err(|e| e.to_string()),
                None => TriAd::new(quick_cfg())
                    .fit(&periodic(560, 32.0))
                    .map_err(|e| e.to_string()),
            }
        })
    }

    fn base_loader() -> ModelLoader {
        loader_with(Arc::new(Mutex::new(BTreeMap::new())))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("triad_fleet_mgr_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn wait_for_seq(mgr: &FleetManager, stream: &str, want: u64) -> StreamStatus {
        for _ in 0..600 {
            let status = mgr.poll(stream).expect("poll");
            if status.seq >= want {
                return status;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("stream {stream} never reached seq {want}");
    }

    fn no_drift() -> DriftPolicy {
        DriftPolicy {
            enabled: false,
            ..DriftPolicy::default()
        }
    }

    #[test]
    fn aggressive_budget_evicts_but_outputs_match_unlimited_run() {
        let test = periodic(420, 32.0);
        let run = |budget: usize, tag: &str| {
            let dir = tmp_dir(tag);
            let mgr = FleetManager::new(
                FleetConfig {
                    shards: 2,
                    budget_bytes: budget,
                    store_dir: dir.clone(),
                    drift: no_drift(),
                    ..FleetConfig::default()
                },
                base_loader(),
                None,
            )
            .expect("fleet");
            let names = ["a0", "a1", "a2", "a3", "a4", "a5"];
            for name in names {
                mgr.open(name, "m").expect("open");
            }
            for chunk in test.chunks(48) {
                for name in names {
                    // Bounded retry: lossless delivery even if a queue
                    // momentarily fills.
                    for _ in 0..600 {
                        if mgr.push(name, chunk).expect("push").queued {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            let mut out = Vec::new();
            for name in names {
                let status = wait_for_seq(&mgr, name, test.len() as u64);
                out.push((name, status));
            }
            let stats = mgr.fleet_stats();
            let mut reports = Vec::new();
            for name in names {
                reports.push(mgr.close(name).expect("close"));
            }
            drop(mgr);
            let _ = std::fs::remove_dir_all(&dir);
            (out, reports, stats)
        };

        // ~6 engines of a few hundred KB each against a 64 KiB global
        // budget: every command ends with evictions.
        let (tight_status, tight_reports, tight_stats) = run(64 * 1024, "tight");
        let (loose_status, loose_reports, loose_stats) = run(0, "loose");

        assert!(
            tight_stats.evictions > 0,
            "64 KiB budget over 6 streams must evict"
        );
        assert!(tight_stats.rehydrations > 0);
        assert_eq!(loose_stats.evictions, 0, "unlimited budget must not evict");
        assert!(
            tight_stats.resident_bytes <= 64 * 1024,
            "published residency {} exceeds the budget",
            tight_stats.resident_bytes
        );

        // The gated outputs are bit-identical: eviction/rehydration is
        // invisible in statuses, events, and offline-equivalent detections.
        assert_eq!(tight_status, loose_status);
        for (t, l) in tight_reports.iter().zip(&loose_reports) {
            assert_eq!(t.status, l.status);
            assert_eq!(t.detection, l.detection);
            assert_eq!(t.finalize_error, l.finalize_error);
        }
    }

    #[test]
    fn checkpoint_sweep_skips_clean_streams_and_restart_resumes() {
        let dir = tmp_dir("restart");
        let test = periodic(400, 32.0);
        let cut = 217; // deliberately off-stride

        let cfg = FleetConfig {
            shards: 2,
            store_dir: dir.clone(),
            drift: no_drift(),
            ..FleetConfig::default()
        };
        {
            let mgr = FleetManager::new(cfg.clone(), base_loader(), None).expect("fleet");
            mgr.open("resume-me", "m").expect("open");
            for _ in 0..600 {
                if mgr.push("resume-me", &test[..cut]).expect("push").queued {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            wait_for_seq(&mgr, "resume-me", cut as u64);
            assert_eq!(mgr.checkpoint(None).expect("sweep"), 1);
            // Nothing changed since: the sweep must skip, not rewrite.
            assert_eq!(mgr.checkpoint(None).expect("sweep"), 0);
            let skipped: u64 = mgr
                .shard_metrics()
                .iter()
                .map(|m| ShardMetrics::get(&m.checkpoints_skipped_clean))
                .sum();
            assert!(skipped >= 1, "clean sweep must count a skip");
            // Several explicit generations, so the restart below resumes
            // from a *compacted* store (older generations removed).
            for _ in 0..3 {
                mgr.checkpoint(Some("resume-me")).expect("explicit");
            }
        } // Drop: shutdown sweep persists dirty state.

        // A new manager over the same store adopts the stream evicted.
        let mgr = FleetManager::new(cfg, base_loader(), None).expect("fleet");
        assert_eq!(mgr.streams(), vec!["resume-me".to_string()]);
        for _ in 0..600 {
            if mgr.push("resume-me", &test[cut..]).expect("push").queued {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        wait_for_seq(&mgr, "resume-me", test.len() as u64);
        let report = mgr.close("resume-me").expect("close");

        // Reference: the same series through one unbroken engine.
        let fitted = TriAd::new(quick_cfg())
            .fit(&periodic(560, 32.0))
            .expect("fit");
        let mut engine = StreamEngine::new(&fitted, StreamConfig::default());
        for &x in &test {
            engine.push(&fitted, x).expect("push");
        }
        assert_eq!(report.status, engine.status());
        assert_eq!(
            report.detection.expect("detection"),
            engine.finalize(&fitted).expect("finalize")
        );
        drop(mgr);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sustained_regime_shift_triggers_refit_and_deterministic_swap() {
        let dir = tmp_dir("drift");
        let recipes: RecipeBook = Arc::new(Mutex::new(BTreeMap::new()));
        let refit_book = Arc::clone(&recipes);
        let refitter: Refitter = Arc::new(move |req: &RefitRequest| {
            // "Persist" the refreshed model as a recipe the loader fits.
            refit_book
                .lock()
                .map_err(|_| "recipe lock poisoned".to_string())?
                .insert(
                    req.new_model.clone(),
                    (req.config.clone(), req.train.clone()),
                );
            Ok(())
        });
        let mgr = FleetManager::new(
            FleetConfig {
                shards: 1,
                store_dir: dir.clone(),
                drift: DriftPolicy {
                    slack_sigma: 1.0,
                    threshold: 0.3,
                    min_windows: 2,
                    swap_horizon: 2,
                    ..DriftPolicy::default()
                },
                ..FleetConfig::default()
            },
            loader_with(recipes),
            Some(refitter),
        )
        .expect("fleet");

        mgr.open("shifty", "m").expect("open");
        // In-regime prefix, then a sustained frequency shift the base model
        // was never trained on: deviance stays elevated window after
        // window, which is exactly what CUSUM accumulates.
        let mut series = periodic(300, 32.0);
        series.extend((300..800).map(|i| (2.0 * PI * i as f64 / 7.0).sin()));
        for chunk in series.chunks(50) {
            for _ in 0..600 {
                if mgr.push("shifty", chunk).expect("push").queued {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        wait_for_seq(&mgr, "shifty", series.len() as u64);

        let stats = mgr.fleet_stats();
        assert!(stats.drift_events >= 1, "regime shift must enter drift");
        assert!(stats.refits_requested >= 1);
        assert_eq!(stats.refits_failed, 0, "refit pipeline must succeed");
        assert!(
            stats.refits_completed >= 1,
            "swap must land at the horizon boundary"
        );

        // After a swap the offline-equivalent finalize is gone by design —
        // the close must say so, while live status and events survive.
        let report = mgr.close("shifty").expect("close");
        assert!(report.detection.is_none());
        assert!(report
            .finalize_error
            .as_deref()
            .expect("finalize error")
            .contains("swapped"));
        assert_eq!(report.status.seq, series.len() as u64);
        drop(mgr);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
