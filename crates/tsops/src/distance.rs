//! Subsequence distance primitives.
//!
//! Discord discovery ranks subsequences by the z-normalised Euclidean distance
//! to their nearest non-self neighbour. [`ZnormSeries`] precomputes rolling
//! means/stds once per series so each pairwise distance costs a single dot
//! product, and supports the early-abandoning partial evaluation DRAG and
//! Orchard-style search rely on.

use crate::stats::rolling_mean_std;

/// Plain Euclidean distance between equal-length slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance (avoids the sqrt where only ordering matters).
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A series prepared for O(w) z-normalised subsequence distances at a fixed
/// subsequence length `w`.
///
/// For subsequences `A`, `B` with means `μ`, stds `σ`, the z-normalised
/// squared distance is `2w·(1 − (⟨A,B⟩ − w·μ_A·μ_B)/(w·σ_A·σ_B))`, clamped at
/// zero against floating-point noise. Constant subsequences (σ≈0) are treated
/// as all-zero shapes, matching [`crate::stats::znormalize_mut`].
#[derive(Debug, Clone)]
pub struct ZnormSeries<'a> {
    data: &'a [f64],
    w: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl<'a> ZnormSeries<'a> {
    pub fn new(data: &'a [f64], w: usize) -> Self {
        assert!(w >= 2, "subsequence length must be ≥ 2");
        let (means, stds) = rolling_mean_std(data, w);
        ZnormSeries {
            data,
            w,
            means,
            stds,
        }
    }

    /// Number of subsequences (`n − w + 1`), zero when the series is shorter
    /// than `w`.
    pub fn count(&self) -> usize {
        self.means.len()
    }

    pub fn subseq_len(&self) -> usize {
        self.w
    }

    pub fn data(&self) -> &[f64] {
        self.data
    }

    /// Z-normalised copy of the subsequence starting at `i`.
    pub fn znorm_subseq(&self, i: usize) -> Vec<f64> {
        let seg = &self.data[i..i + self.w];
        let (m, s) = (self.means[i], self.stds[i]);
        if s < 1e-12 {
            vec![0.0; self.w]
        } else {
            let inv = 1.0 / s;
            seg.iter().map(|v| (v - m) * inv).collect()
        }
    }

    /// Z-normalised Euclidean distance between the subsequences at `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.dist_sq(i, j).sqrt()
    }

    /// Squared z-normalised distance.
    pub fn dist_sq(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let w = self.w;
        let (mi, si) = (self.means[i], self.stds[i]);
        let (mj, sj) = (self.means[j], self.stds[j]);
        let degenerate_i = si < 1e-12;
        let degenerate_j = sj < 1e-12;
        if degenerate_i && degenerate_j {
            return 0.0;
        }
        if degenerate_i || degenerate_j {
            // One shape is identically zero; distance is the norm of the
            // other z-normalised subsequence: √w by construction.
            return w as f64;
        }
        let a = &self.data[i..i + w];
        let b = &self.data[j..j + w];
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        // Clamp against floating-point drift so distances stay within the
        // theoretical [0, 2sqrt(w)] envelope.
        let corr = ((dot - w as f64 * mi * mj) / (w as f64 * si * sj)).clamp(-1.0, 1.0);
        (2.0 * w as f64 * (1.0 - corr)).max(0.0)
    }

    /// Early-abandoning distance: returns `None` as soon as the accumulating
    /// squared distance exceeds `best_so_far²` (both in *unsquared* units).
    ///
    /// Walks the z-normalised samples directly, so it costs more per element
    /// than [`Self::dist`] but can bail out after a handful of samples — the
    /// workhorse of DRAG's refinement phase.
    pub fn dist_early_abandon(&self, i: usize, j: usize, best_so_far: f64) -> Option<f64> {
        let w = self.w;
        let limit = best_so_far * best_so_far;
        let (mi, si) = (self.means[i], self.stds[i]);
        let (mj, sj) = (self.means[j], self.stds[j]);
        let inv_i = if si < 1e-12 { 0.0 } else { 1.0 / si };
        let inv_j = if sj < 1e-12 { 0.0 } else { 1.0 / sj };
        let a = &self.data[i..i + w];
        let b = &self.data[j..j + w];
        let mut acc = 0.0;
        for k in 0..w {
            let x = (a[k] - mi) * inv_i;
            let y = (b[k] - mj) * inv_j;
            let d = x - y;
            acc += d * d;
            if acc > limit {
                return None;
            }
        }
        Some(acc.sqrt())
    }

    /// Nearest-neighbour distance of subsequence `i`, excluding trivial
    /// matches (any `j` with `|i−j| < w`, the standard self-match exclusion
    /// zone). Returns `None` when no admissible neighbour exists.
    pub fn nn_dist(&self, i: usize) -> Option<f64> {
        let mut best = f64::INFINITY;
        let mut found = false;
        for j in 0..self.count() {
            if j.abs_diff(i) < self.w {
                continue;
            }
            let d = self.dist_sq(i, j);
            if d < best {
                best = d;
                found = true;
            }
        }
        found.then(|| best.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::znormalize;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_sq(&[1.0], &[4.0]), 9.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn euclidean_length_mismatch_panics() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn znorm_dist_matches_explicit_normalisation() {
        let data: Vec<f64> = (0..60)
            .map(|i| (i as f64 * 0.35).sin() * (1.0 + i as f64 * 0.01))
            .collect();
        let w = 12;
        let zs = ZnormSeries::new(&data, w);
        for (i, j) in [(0usize, 30usize), (5, 40), (10, 25)] {
            let a = znormalize(&data[i..i + w]);
            let b = znormalize(&data[j..j + w]);
            let direct = euclidean(&a, &b);
            assert!((zs.dist(i, j) - direct).abs() < 1e-8, "({i},{j})");
        }
    }

    #[test]
    fn dist_is_scale_and_offset_invariant() {
        let base: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut data = base.clone();
        data.extend(base.iter().map(|v| v * 7.0 + 100.0)); // same shape, scaled
        let zs = ZnormSeries::new(&data, 20);
        // The O(w) dot-product formula loses ~√ε precision near corr = 1.
        assert!(zs.dist(0, 20) < 1e-4);
    }

    #[test]
    fn early_abandon_agrees_when_not_abandoned() {
        let data: Vec<f64> = (0..80).map(|i| ((i * i) as f64 * 0.002).sin()).collect();
        let zs = ZnormSeries::new(&data, 16);
        let full = zs.dist(3, 50);
        let ea = zs.dist_early_abandon(3, 50, f64::INFINITY).unwrap();
        assert!((full - ea).abs() < 1e-8);
        // And abandons when the bound is tight.
        assert!(zs.dist_early_abandon(3, 50, full * 0.5).is_none());
    }

    #[test]
    fn nn_dist_excludes_trivial_matches() {
        // Periodic signal: NN of any subsequence is ~one period away, distance ~0.
        let p = 16usize;
        let data: Vec<f64> = (0..6 * p)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / p as f64).sin())
            .collect();
        let zs = ZnormSeries::new(&data, p);
        let d = zs.nn_dist(0).unwrap();
        assert!(d < 1e-6, "nn dist {d}");
    }

    #[test]
    fn nn_dist_none_when_everything_is_trivial() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let zs = ZnormSeries::new(&data, 4);
        // Only subsequences 0 and 1 exist; |0-1| < 4 so both are trivial.
        assert!(zs.nn_dist(0).is_none());
    }

    #[test]
    fn degenerate_constant_subsequences() {
        let mut data = vec![5.0; 30];
        for i in 20..30 {
            data[i] = (i as f64).sin();
        }
        let zs = ZnormSeries::new(&data, 8);
        // Two constant windows: distance zero.
        assert_eq!(zs.dist(0, 10), 0.0);
        // Constant vs varying: √w.
        assert!((zs.dist(0, 21) - (8.0f64).sqrt()).abs() < 1e-9);
    }
}
