//! Periodic base-signal families.
//!
//! The real UCR archive spans ECGs, industrial sensors, gait recordings and
//! more. What TriAD relies on is not the exact physiology but the archive's
//! *structure*: strongly periodic signals whose periods, waveforms, noise
//! floors and slow modulations differ per dataset. Five waveform families
//! cover that variety; each generator takes an explicit RNG so a dataset is a
//! pure function of its seed.

use rand::Rng;
use std::f64::consts::PI;

/// A waveform family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalFamily {
    /// Plain sinusoid.
    Sine,
    /// Sinusoid plus 2nd/3rd harmonics — asymmetric repeating shape.
    Harmonic,
    /// ECG-like: sharp spike + small secondary bump per cycle.
    EcgLike,
    /// Smoothed square wave (industrial on/off cycling).
    SquareLike,
    /// Amplitude-modulated sinusoid (beat pattern).
    AmplitudeModulated,
}

impl SignalFamily {
    pub const ALL: [SignalFamily; 5] = [
        SignalFamily::Sine,
        SignalFamily::Harmonic,
        SignalFamily::EcgLike,
        SignalFamily::SquareLike,
        SignalFamily::AmplitudeModulated,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            SignalFamily::Sine => "sine",
            SignalFamily::Harmonic => "harmonic",
            SignalFamily::EcgLike => "ecg_like",
            SignalFamily::SquareLike => "square_like",
            SignalFamily::AmplitudeModulated => "am",
        }
    }

    /// One period's waveform value at phase `u ∈ [0, 1)`.
    fn waveform(&self, u: f64) -> f64 {
        match self {
            SignalFamily::Sine => (2.0 * PI * u).sin(),
            SignalFamily::Harmonic => {
                (2.0 * PI * u).sin() + 0.45 * (4.0 * PI * u).sin() + 0.2 * (6.0 * PI * u).cos()
            }
            SignalFamily::EcgLike => {
                // Main spike near u=0.2, smaller bump near u=0.55.
                let spike = (-((u - 0.2) / 0.035).powi(2)).exp() * 2.2;
                let bump = (-((u - 0.55) / 0.07).powi(2)).exp() * 0.7;
                let baseline = 0.15 * (2.0 * PI * u).sin();
                spike + bump + baseline - 0.4
            }
            SignalFamily::SquareLike => {
                // tanh-smoothed square wave.
                let s = (2.0 * PI * u).sin();
                (4.0 * s).tanh()
            }
            SignalFamily::AmplitudeModulated => (2.0 * PI * u).sin(),
        }
    }
}

/// Parameters of one generated signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalSpec {
    pub family: SignalFamily,
    /// Period in samples.
    pub period: usize,
    /// Gaussian noise std relative to unit waveform amplitude.
    pub noise: f64,
    /// Linear drift per 1000 samples.
    pub drift: f64,
    /// Amplitude-modulation depth (only meaningful for some families).
    pub am_depth: f64,
    /// Phase offset in periods.
    pub phase: f64,
}

impl SignalSpec {
    /// Draw a random spec from `family` with difficulty-controlled noise.
    pub fn random<R: Rng>(rng: &mut R, family: SignalFamily) -> Self {
        SignalSpec {
            family,
            period: rng.random_range(20..=60),
            noise: 0.02 + 0.06 * rng.random::<f64>(),
            drift: (rng.random::<f64>() - 0.5) * 0.2,
            am_depth: match family {
                SignalFamily::AmplitudeModulated => 0.25 + 0.25 * rng.random::<f64>(),
                _ => 0.0,
            },
            phase: rng.random::<f64>(),
        }
    }

    /// Generate `n` samples.
    pub fn generate<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let p = self.period as f64;
        // Slow AM envelope over ~8 periods.
        let am_period = p * 8.0;
        (0..n)
            .map(|i| {
                let t = i as f64;
                let u = ((t / p) + self.phase).fract();
                let mut v = self.family.waveform(u);
                if self.am_depth > 0.0 {
                    v *= 1.0 + self.am_depth * (2.0 * PI * t / am_period).sin();
                }
                v += self.drift * t / 1000.0;
                v += gaussian(rng) * self.noise;
                v
            })
            .collect()
    }
}

/// Box–Muller standard normal (local copy; `ucrgen` must not depend on
/// `tsaug` to keep the dependency graph acyclic-by-layers).
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_families_generate_finite_periodic_signals() {
        for fam in SignalFamily::ALL {
            let mut rng = StdRng::seed_from_u64(fam.name().len() as u64);
            let spec = SignalSpec::random(&mut rng, fam);
            let x = spec.generate(&mut rng, spec.period * 20);
            assert_eq!(x.len(), spec.period * 20);
            assert!(x.iter().all(|v| v.is_finite()), "{fam:?}");
            // Detectable periodicity: ACF at the period is high.
            let acf = tsops::stats::autocorrelation(&x, spec.period * 2);
            assert!(
                acf[spec.period] > 0.5,
                "{fam:?}: acf@period = {}",
                acf[spec.period]
            );
        }
    }

    #[test]
    fn estimated_period_matches_spec() {
        for fam in SignalFamily::ALL {
            let mut rng = StdRng::seed_from_u64(999);
            let spec = SignalSpec::random(&mut rng, fam);
            let x = spec.generate(&mut rng, spec.period * 25);
            let est = tsops::decompose::estimate_period(&x, x.len() / 2)
                .unwrap_or_else(|| panic!("{fam:?}: no period found"));
            // Allow harmonic confusion up to a factor-of-2 only for EcgLike's
            // spiky spectrum; others must be within ±10%.
            let ratio = est as f64 / spec.period as f64;
            assert!(
                (0.45..=2.1).contains(&ratio),
                "{fam:?}: period {} estimated {est}",
                spec.period
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SignalSpec::random(&mut StdRng::seed_from_u64(5), SignalFamily::Harmonic);
        let a = spec.generate(&mut StdRng::seed_from_u64(6), 500);
        let b = spec.generate(&mut StdRng::seed_from_u64(6), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn ecg_like_has_one_dominant_spike_per_period() {
        let spec = SignalSpec {
            family: SignalFamily::EcgLike,
            period: 50,
            noise: 0.0,
            drift: 0.0,
            am_depth: 0.0,
            phase: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let x = spec.generate(&mut rng, 500);
        // Count samples above half the max: should be a small fraction
        // (spiky), roughly `periods · spike_width`.
        let max = x.iter().cloned().fold(f64::MIN, f64::max);
        let above = x.iter().filter(|&&v| v > max * 0.5).count();
        assert!(above < 100, "spike fraction too large: {above}");
    }
}
