//! End-to-end integration: the full TriAD pipeline on generated archive
//! datasets, checked against the archive's ground truth with the paper's
//! event margin.

use triad_core::{TriAd, TriadConfig};
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;

fn quick_cfg(seed: u64) -> TriadConfig {
    TriadConfig {
        epochs: 5,
        depth: 3,
        hidden: 12,
        merlin_step: 4,
        seed,
        ..Default::default()
    }
}

/// Find an archive dataset of a given anomaly kind.
fn dataset_of(kind: AnomalyKind) -> ucrgen::UcrDataset {
    (0..120)
        .map(|id| generate_dataset(3, id))
        .find(|d| d.kind == kind)
        .expect("kind present in archive")
}

#[test]
fn detects_seasonal_anomaly_within_margin() {
    let ds = dataset_of(AnomalyKind::Seasonal);
    let fitted = TriAd::new(quick_cfg(0)).fit(ds.train()).expect("fit");
    let det = fitted.detect(ds.test());
    let anomaly = ds.anomaly_in_test();
    // The selected window must land near the event (± one window length —
    // the tri-window accuracy criterion of Fig. 9).
    let w = fitted.window_len();
    assert!(
        evalkit::eventwise::event_detected(&det.selected_window, &anomaly, w),
        "selected {:?} vs anomaly {anomaly:?} (w={w})",
        det.selected_window
    );
    // And the point-wise prediction must overlap it.
    let hit = anomaly.clone().any(|i| det.prediction[i]);
    assert!(hit, "no predicted point inside the anomaly");
}

#[test]
fn detects_noise_anomaly_within_margin() {
    let ds = dataset_of(AnomalyKind::Noise);
    let fitted = TriAd::new(quick_cfg(0)).fit(ds.train()).expect("fit");
    let det = fitted.detect(ds.test());
    let anomaly = ds.anomaly_in_test();
    let w = fitted.window_len();
    let near_any = det
        .candidates
        .iter()
        .any(|c| evalkit::eventwise::event_detected(c, &anomaly, w));
    assert!(
        near_any,
        "no candidate near {anomaly:?}: {:?}",
        det.candidates
    );
}

#[test]
fn full_metric_stack_runs_on_detection_output() {
    let ds = dataset_of(AnomalyKind::LevelShift);
    let fitted = TriAd::new(quick_cfg(1)).fit(ds.train()).expect("fit");
    let det = fitted.detect(ds.test());
    let labels = ds.test_labels();
    assert_eq!(det.prediction.len(), labels.len());

    let pw = evalkit::pointwise::prf(&det.prediction, &labels);
    let pa = evalkit::pa::prf_pa(&det.prediction, &labels);
    let pak = evalkit::pak::pak_auc(&det.prediction, &labels);
    let aff = evalkit::affiliation::affiliation_prf(&det.prediction, &labels);
    // Metric sanity across the stack: PA ≥ PA%K-AUC ≥ PW for F1.
    assert!(pa.f1 >= pak.f1_auc - 1e-9);
    assert!(pak.f1_auc >= pw.f1 - 1e-9);
    for v in [pw.f1, pa.f1, pak.f1_auc, aff.precision, aff.recall, aff.f1] {
        assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
    }
}

#[test]
fn tri_domain_beats_single_domain_on_frequency_anomaly() {
    // A seasonal (frequency) anomaly should be caught by the frequency
    // ranking; the test asserts the frequency domain's top window is closer
    // to the anomaly than a wrong-domain guess at least for this dataset.
    let ds = dataset_of(AnomalyKind::Seasonal);
    let fitted = TriAd::new(quick_cfg(0)).fit(ds.train()).expect("fit");
    let det = fitted.detect(ds.test());
    let anomaly = ds.anomaly_in_test();
    let w = fitted.window_len();
    let freq_rank = det
        .rankings
        .iter()
        .find(|r| r.domain == triad_core::Domain::Frequency)
        .expect("frequency ranking present");
    let stride = fitted.segmenter().stride;
    let start = freq_rank.top * stride;
    let range = start..start + w;
    assert!(
        evalkit::eventwise::event_detected(&range, &anomaly, 2 * w),
        "frequency top window {range:?} far from {anomaly:?}"
    );
}

#[test]
fn archive_and_pipeline_are_reproducible_together() {
    let ds = generate_dataset(9, 4);
    let d1 = TriAd::new(quick_cfg(2))
        .fit(ds.train())
        .unwrap()
        .detect(ds.test());
    let d2 = TriAd::new(quick_cfg(2))
        .fit(ds.train())
        .unwrap()
        .detect(ds.test());
    assert_eq!(d1.prediction, d2.prediction);
    assert_eq!(d1.selected_window, d2.selected_window);
    assert_eq!(d1.discords, d2.discords);
}
