//! Fig. 1 — traditional (whole-window) augmentations make normal data look
//! anomalous: prints the original window and its jittered / scaled /
//! shuffled versions, plus each version's z-normalised distance from the
//! original (large = "looks like an anomaly").

use bench::print_series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsaug::classic::{jitter_all, scale_all, shuffle_chunks};

fn main() {
    let p = 40.0;
    let window: Vec<f64> = (0..200)
        .map(|i| (2.0 * std::f64::consts::PI * i as f64 / p).sin())
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let jittered = jitter_all(&mut rng, &window, 0.4);
    let scaled = scale_all(&mut rng, &window, 2.0, 2.0);
    let shuffled = shuffle_chunks(&mut rng, &window, 8);

    let dist = |a: &[f64]| {
        tsops::distance::euclidean(
            &tsops::stats::znormalize(&window),
            &tsops::stats::znormalize(a),
        )
    };
    println!("# Fig. 1 — z-normalised distance of each augmentation from the original");
    println!("# (cf. the injected-anomaly distance scale of the archive: ~3-10)");
    println!("jitter\t{:.3}", dist(&jittered));
    println!("scale\t{:.3}", dist(&scaled));
    println!("shuffle\t{:.3}", dist(&shuffled));

    for (name, series) in [
        ("original", &window),
        ("jittered", &jittered),
        ("scaled", &scaled),
        ("shuffled", &shuffled),
    ] {
        let pts: Vec<(f64, f64)> = series
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        print_series(&format!("Fig1 {name}"), "t", "x", &pts);
    }
}
