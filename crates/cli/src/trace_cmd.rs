//! `triad trace` — record a fixed-seed fit/detect/stream workload with
//! structured tracing on, export the spans (JSONL + Chrome trace-event),
//! and print a per-stage latency summary.
//!
//! The verb is both a profiling tool and a self-check: after writing the
//! two trace files it parses them back, validates the span tree (unique
//! ids, resolvable parents, per-thread monotone timestamps), and — under
//! `--smoke` — asserts that all five pipeline stages (featurize, rank,
//! narrow, discord, vote) were individually attributed and that root spans
//! cover at least 95% of the trace extent. CI runs `triad trace --smoke`
//! as a schema gate.

use crate::Cli;
use std::f64::consts::PI;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use triad_core::{persist, TriAd, TriadConfig};
use triad_stream::{ManagerConfig, StreamManager};

/// The five stage-1..4 span names the pipeline must attribute individually
/// (the ISSUE acceptance bar), checked under `--smoke`.
const PIPELINE_STAGES: &[&str] = &["featurize", "rank", "narrow", "discord", "vote"];

/// Deterministic two-harmonic series with a frequency-shift anomaly in the
/// test half — the bench harness's workload shape, regenerated here so the
/// trace verb stays independent of the bench crate's sizing knobs.
fn make_series(n_train: usize, n_test: usize, period: usize) -> (Vec<f64>, Vec<f64>) {
    let p = period as f64;
    let mut full: Vec<f64> = (0..n_train + n_test)
        .map(|i| {
            (2.0 * PI * i as f64 / p).sin()
                + 0.3 * (4.0 * PI * i as f64 / p).sin()
                + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
        })
        .collect();
    let a0 = n_train + n_test / 2;
    for i in a0..(a0 + 2 * period).min(full.len()) {
        full[i] = (8.0 * PI * i as f64 / p).sin();
    }
    let test = full.split_off(n_train);
    (full, test)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

pub(crate) fn cmd_trace(cli: &Cli) -> Result<Vec<String>, String> {
    let smoke = cli.get("smoke").is_some();
    let out_dir = PathBuf::from(cli.get("out-dir").unwrap_or("."));
    let seed: u64 = cli.get_num("seed", 0u64)?;
    let threads: usize = cli.get_num("threads", 0usize)?;

    // Force tracing on for this process regardless of TRIAD_TRACE: the
    // whole point of the verb is to record.
    obs::set_enabled(true);

    let (n_train, n_test, period, epochs) = if smoke {
        (640, 480, 32, 3)
    } else {
        (1600, 960, 32, 6)
    };
    let (train, test) = make_series(n_train, n_test, period);
    let cfg = TriadConfig {
        epochs,
        depth: 3,
        hidden: 12,
        batch: 4,
        merlin_step: 4,
        seed,
        threads,
        trace: true,
        ..TriadConfig::default()
    };

    // --- fit + detect: the offline pipeline (spans: fit; detect with its
    // five stages; parallel-region/worker spans underneath).
    let fitted = TriAd::new(cfg).fit(&train)?;
    let det = fitted.detect(&test);

    // --- stream: replay the test split through a sharded manager so the
    // shard-open/ingest/score/checkpoint spans appear, then checkpoint.
    let scratch = std::env::temp_dir().join(format!("triad_trace_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;
    let stream_lines = {
        let mut replay = obs::span("stream-replay");
        replay.add_field("points", test.len());
        run_stream_phase(&scratch, &fitted, &test)
    };
    let _ = std::fs::remove_dir_all(&scratch);
    let stream_lines = stream_lines?;

    // --- collect + export.
    obs::flush_thread();
    let records = obs::take_records();
    if records.is_empty() {
        return Err("trace recorded no spans (is tracing compiled out?)".into());
    }
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let jsonl_path = out_dir.join("TRACE.jsonl");
    let chrome_path = out_dir.join("TRACE_chrome.json");
    std::fs::write(&jsonl_path, obs::to_jsonl(&records)).map_err(|e| e.to_string())?;
    std::fs::write(&chrome_path, obs::to_chrome(&records)).map_err(|e| e.to_string())?;

    // --- self-check: both files must round-trip and validate. Chrome
    // timestamps are µs with 3 decimals (ns resolution), so zero slack.
    let jsonl_text = std::fs::read_to_string(&jsonl_path).map_err(|e| e.to_string())?;
    let spans = obs::parse_jsonl(&jsonl_text).map_err(|e| format!("TRACE.jsonl: {e}"))?;
    obs::validate(&spans, 0).map_err(|e| format!("TRACE.jsonl: {e}"))?;
    let chrome_text = std::fs::read_to_string(&chrome_path).map_err(|e| e.to_string())?;
    let chrome_spans =
        obs::parse_chrome(&chrome_text).map_err(|e| format!("TRACE_chrome.json: {e}"))?;
    obs::validate(&chrome_spans, 0).map_err(|e| format!("TRACE_chrome.json: {e}"))?;
    if chrome_spans.len() != spans.len() {
        return Err(format!(
            "export mismatch: {} JSONL spans vs {} Chrome events",
            spans.len(),
            chrome_spans.len()
        ));
    }

    let summary = obs::summarize(&spans);
    // Root spans on concurrent threads can overlap, so the raw ratio may
    // exceed 1; clamp for display.
    let coverage = summary.coverage.min(1.0);
    if smoke {
        for stage in PIPELINE_STAGES {
            if !summary.stages.iter().any(|s| s.name == *stage) {
                return Err(format!("trace is missing pipeline stage {stage:?}"));
            }
        }
        if coverage < 0.95 {
            return Err(format!(
                "root spans cover only {:.1}% of the trace extent (need ≥ 95%)",
                coverage * 100.0
            ));
        }
    }

    // --- report.
    let mut out = Vec::new();
    out.push(format!(
        "traced fit+detect+stream (seed {seed}, {} train / {} test): {} spans, {} dropped",
        n_train,
        n_test,
        spans.len(),
        obs::spans_dropped()
    ));
    out.push(format!(
        "flagged region  : {:?} (fallback={})",
        det.predicted_region(),
        det.used_fallback
    ));
    out.extend(stream_lines);
    out.push(format!(
        "wall {:.1} ms, root-span coverage {:.1}%",
        summary.wall_ns as f64 / 1e6,
        coverage * 100.0
    ));
    out.push(format!(
        "{:<16} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "stage", "count", "p50 µs", "p95 µs", "p99 µs", "total µs"
    ));
    for s in &summary.stages {
        out.push(format!(
            "{:<16} {:>7} {:>12} {:>12} {:>12} {:>12}",
            s.name,
            s.count,
            fmt_us(s.p50_ns),
            fmt_us(s.p95_ns),
            fmt_us(s.p99_ns),
            fmt_us(s.total_ns)
        ));
    }
    out.push(format!(
        "critical path   : {}",
        summary.critical_path.join(" → ")
    ));
    out.push(format!("wrote {}", jsonl_path.display()));
    out.push(format!("wrote {}", chrome_path.display()));
    Ok(out)
}

/// Save the model, replay `test` through a 2-shard [`StreamManager`] with a
/// checkpoint directory, checkpoint everything, and close. Runs under the
/// caller's `stream-replay` span; the shard threads record their own
/// ingest/score/checkpoint spans.
fn run_stream_phase(
    scratch: &Path,
    fitted: &triad_core::FittedTriad,
    test: &[f64],
) -> Result<Vec<String>, String> {
    let model_path = scratch.join("trace-model.triad");
    persist::save_file(&model_path, fitted).map_err(|e| e.to_string())?;
    let loader_path = model_path.clone();
    let manager = StreamManager::new(
        ManagerConfig {
            shards: 2,
            checkpoint_dir: Some(scratch.join("ckpt")),
            ..ManagerConfig::default()
        },
        Arc::new(move |_name: &str| persist::load_file(&loader_path).map_err(|e| e.to_string())),
    );

    let streams = ["trace-a", "trace-b"];
    for name in streams {
        manager
            .open(name, "trace-model")
            .map_err(|e| format!("stream open: {e}"))?;
    }
    for (k, piece) in test.chunks(64).enumerate() {
        let name = streams[k % streams.len()];
        let mut tries = 0;
        loop {
            let ticket = manager.push(name, piece).map_err(|e| e.to_string())?;
            if ticket.queued {
                break;
            }
            tries += 1;
            if tries > 600 {
                return Err("stream push: shard queue stayed full".into());
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    // Drain: each stream must have consumed its share of the replay.
    let mut fed = [0usize; 2];
    for (k, piece) in test.chunks(64).enumerate() {
        fed[k % streams.len()] += piece.len();
    }
    for (k, name) in streams.iter().enumerate() {
        for attempt in 0..6000 {
            let st = manager.poll(name).map_err(|e| e.to_string())?;
            if st.seq as usize + st.rejected_nonfinite as usize >= fed[k] {
                break;
            }
            if attempt == 5999 {
                return Err(format!("stream {name:?} never drained"));
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    let written = manager
        .checkpoint(None)
        .map_err(|e| format!("stream checkpoint: {e}"))?;
    let mut windows_scored = 0usize;
    for name in streams {
        let report = manager.close(name).map_err(|e| e.to_string())?;
        windows_scored += report.status.windows_scored;
    }
    drop(manager);
    Ok(vec![format!(
        "streamed {} points across {} shards: {} windows scored, {} checkpoints written",
        test.len(),
        2,
        windows_scored,
        written
    )])
}
