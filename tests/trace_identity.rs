//! Cross-crate integration: structured tracing (`obs`) is a pure observer.
//! Detection output must be bit-identical with tracing on vs off, at both
//! serial and parallel thread counts.
//!
//! This file runs as its own process, so flipping the global trace switch
//! here cannot leak into other test binaries.

use std::f64::consts::PI;
use std::sync::Mutex;
use triad_core::{TriAd, TriadConfig, TriadDetection};

/// Both tests toggle the process-global trace switch; serialize them.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn series() -> (Vec<f64>, Vec<f64>) {
    let p = 32.0;
    let (n_train, n_test) = (640usize, 480usize);
    let mut full: Vec<f64> = (0..n_train + n_test)
        .map(|i| {
            (2.0 * PI * i as f64 / p).sin()
                + 0.3 * (4.0 * PI * i as f64 / p).sin()
                + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
        })
        .collect();
    for i in n_train + 220..n_train + 280 {
        full[i] = (8.0 * PI * i as f64 / p).sin();
    }
    let test = full.split_off(n_train);
    (full, test)
}

fn run(threads: usize, trace: bool) -> TriadDetection {
    obs::set_enabled(trace);
    let cfg = TriadConfig {
        epochs: 3,
        depth: 3,
        hidden: 12,
        batch: 4,
        merlin_step: 4,
        threads,
        trace,
        ..TriadConfig::default()
    };
    let (train, test) = series();
    let det = TriAd::new(cfg).fit(&train).expect("fit").detect(&test);
    // Leave no state behind for the next configuration.
    obs::flush_thread();
    let _ = obs::take_records();
    obs::set_enabled(false);
    det
}

#[test]
fn detection_is_bit_identical_with_tracing_on_or_off() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        let untraced = run(threads, false);
        let traced = run(threads, true);
        assert_eq!(
            traced, untraced,
            "tracing changed the detection at {threads} thread(s)"
        );
    }
}

#[test]
fn traced_run_actually_records_and_untraced_run_does_not() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(false);
    let _ = obs::take_records();
    let before = obs::spans_recorded();
    let _ = run(1, false);
    assert_eq!(
        obs::spans_recorded(),
        before,
        "spans recorded while tracing was off"
    );
    let _ = run(1, true);
    assert!(
        obs::spans_recorded() > before,
        "no spans recorded while tracing was on"
    );
}
