//! Time-series substrate for the TriAD reproduction.
//!
//! This crate implements, from scratch, every signal-processing primitive the
//! TriAD pipeline (and its baselines) depend on:
//!
//! * [`fft`] — complex FFT (iterative radix-2 plus Bluestein's algorithm for
//!   arbitrary lengths) and real-input helpers.
//! * [`spectral`] — the handcrafted frequency-domain feature set of the paper's
//!   Table I: spectral amplitude, phase, and power per harmonic.
//! * [`filter`] — Butterworth low-pass design (cascaded biquads via the
//!   bilinear transform) and zero-phase forward-backward filtering, used by the
//!   "warping" augmentation (Eq. 4).
//! * [`decompose`] — period estimation (FFT + autocorrelation refinement) and
//!   classical seasonal decomposition producing the *residual* domain input.
//! * [`window`] — segmentation of a series into fixed-length strided windows
//!   (Sec. IV-A2: window = 2.5 periods, stride = L/4).
//! * [`sliding`] — sliding DFT keeping selected spectrum bins current in O(1)
//!   per sample, the streaming counterpart of [`fft`].
//! * [`stats`] — z-normalisation, moving statistics, misc. descriptive stats.
//! * [`distance`] — Euclidean and z-normalised Euclidean subsequence distances
//!   with O(1) rolling mean/std, the core primitive of discord discovery.
//! * [`mass`] — FFT-accelerated sliding z-normalised distance profiles
//!   (Mueen's MASS), the fast path for whole-series similarity scans.
//!
//! Everything operates on `f64` slices; no external numeric dependencies.

#![forbid(unsafe_code)]

pub mod decompose;
pub mod distance;
pub mod fft;
pub mod filter;
pub mod mass;
pub mod numeric;
pub mod sliding;
pub mod spectral;
pub mod stats;
pub mod window;

pub use fft::Complex;
pub use numeric::NumericMode;
