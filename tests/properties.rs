//! Property-based tests (proptest) over the substrate invariants the whole
//! pipeline leans on.

use proptest::prelude::*;

/// A periodic test signal with deterministic jitter — cheap to generate,
/// rich enough for the pipeline to find a period and for MERLIN to have
/// non-trivial nearest-neighbour structure.
fn jittered_sine(n: usize, period: usize, phase: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = 2.0 * std::f64::consts::PI * i as f64 / period as f64;
            t.sin()
                + 0.4 * (2.0 * t).cos()
                + 0.05 * (((i as u64 * 37 + phase * 13) % 97) as f64 / 97.0 - 0.5)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT round-trip: ifft(fft(x)) == x for arbitrary real signals and
    /// lengths (hits both the radix-2 and Bluestein paths).
    #[test]
    fn fft_round_trip(x in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let spec = tsops::fft::rfft(&x);
        let back = tsops::fft::irfft_real(&spec);
        prop_assert_eq!(back.len(), x.len());
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    }

    /// Parseval: time-domain and frequency-domain energies match.
    #[test]
    fn parseval(x in prop::collection::vec(-100f64..100.0, 2..150)) {
        let te: f64 = x.iter().map(|v| v * v).sum();
        let fe: f64 = tsops::fft::rfft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    /// Z-normalisation invariants: zero mean, unit (or zero) std, and
    /// invariance to affine input transforms.
    #[test]
    fn znorm_affine_invariance(
        x in prop::collection::vec(-50f64..50.0, 4..100),
        scale in 0.1f64..10.0,
        offset in -100f64..100.0,
    ) {
        let z1 = tsops::stats::znormalize(&x);
        let shifted: Vec<f64> = x.iter().map(|v| v * scale + offset).collect();
        let z2 = tsops::stats::znormalize(&shifted);
        for (a, b) in z1.iter().zip(&z2) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    /// Z-normalised subsequence distance is symmetric, non-negative, and
    /// bounded by 2√w.
    #[test]
    fn znorm_distance_properties(
        x in prop::collection::vec(-10f64..10.0, 30..120),
        wsel in 2usize..12,
    ) {
        let w = wsel.min(x.len() / 2);
        let zs = tsops::distance::ZnormSeries::new(&x, w);
        let n = zs.count();
        prop_assume!(n >= 2);
        let i = 0;
        let j = n - 1;
        let dij = zs.dist(i, j);
        let dji = zs.dist(j, i);
        prop_assert!((dij - dji).abs() < 1e-9);
        prop_assert!(dij >= 0.0);
        prop_assert!(dij <= 2.0 * (w as f64).sqrt() + 1e-6);
        prop_assert!(zs.dist(i, i) < 1e-9);
    }

    /// Point adjustment only ever adds positives, never removes them.
    #[test]
    fn pa_is_monotone(
        pred in prop::collection::vec(any::<bool>(), 1..200),
        labels in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = pred.len().min(labels.len());
        let (pred, labels) = (&pred[..n], &labels[..n]);
        let adj = evalkit::pa::adjust(pred, labels);
        for i in 0..n {
            prop_assert!(adj[i] || !pred[i], "PA removed a positive at {}", i);
        }
        // And F1(PA) dominates F1(PW).
        let pw = evalkit::pointwise::prf(pred, labels).f1;
        let pa = evalkit::pointwise::prf(&adj, labels).f1;
        prop_assert!(pa >= pw - 1e-12);
    }

    /// PA%K F1 is monotone non-increasing in K for any prediction.
    #[test]
    fn pak_monotone_in_k(
        pred in prop::collection::vec(any::<bool>(), 10..150),
        labels in prop::collection::vec(any::<bool>(), 10..150),
    ) {
        let n = pred.len().min(labels.len());
        let (pred, labels) = (&pred[..n], &labels[..n]);
        let mut last = f64::INFINITY;
        for k in [0.0, 20.0, 40.0, 60.0, 80.0, 100.0] {
            let f1 = evalkit::pak::prf_at_k(pred, labels, k).f1;
            prop_assert!(f1 <= last + 1e-12);
            last = f1;
        }
    }

    /// Affiliation metrics stay in [0, 1] for arbitrary inputs.
    #[test]
    fn affiliation_bounded(
        pred in prop::collection::vec(any::<bool>(), 5..150),
        labels in prop::collection::vec(any::<bool>(), 5..150),
    ) {
        let n = pred.len().min(labels.len());
        let m = evalkit::affiliation::affiliation_prf(&pred[..n], &labels[..n]);
        for v in [m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{}", v);
        }
    }

    /// Segmentation always covers the full series (no uncovered suffix) and
    /// every window is in bounds.
    #[test]
    fn segmentation_covers(
        len in 1usize..500,
        window in 1usize..60,
        stride in 1usize..30,
    ) {
        prop_assume!(stride <= window); // overlapping-or-adjacent policy only
        let seg = tsops::window::Segmenter::new(window, stride);
        let w = seg.segment(len);
        if len >= window {
            prop_assert!(!w.is_empty());
            let mut covered = vec![false; len];
            for i in 0..w.count() {
                let r = w.range(i);
                prop_assert!(r.end <= len);
                for c in &mut covered[r] { *c = true; }
            }
            prop_assert!(covered.iter().all(|&c| c), "uncovered point");
        } else {
            prop_assert!(w.is_empty());
        }
    }

    /// The Butterworth cascade never amplifies any frequency (|H| ≤ 1 for a
    /// low-pass Butterworth) and is monotone decreasing in frequency.
    #[test]
    fn butterworth_gain_bounded(cut in 0.05f64..0.9) {
        let f = tsops::filter::Butterworth::lowpass(4, cut);
        let mut last = f64::INFINITY;
        for k in 0..=20 {
            let freq = k as f64 / 20.0 * 0.999;
            let gain = f.magnitude(freq);
            prop_assert!(gain <= 1.0 + 1e-9);
            prop_assert!(gain <= last + 1e-9, "gain not monotone at {}", freq);
            last = gain;
        }
    }

    /// Archive generation respects the UCR contract for arbitrary seeds.
    #[test]
    fn archive_contract(seed in 0u64..5000, id in 1usize..260) {
        let ds = ucrgen::archive::generate_dataset(seed, id);
        prop_assert!(ds.validate().is_ok());
        prop_assert!(ds.anomaly.start >= ds.train_end);
        prop_assert!(!ds.test_labels().iter().all(|&b| b));
        prop_assert!(ds.test_labels().iter().any(|&b| b));
    }

    /// The sliding DFT stays within 1e-9 of a batch FFT over the same
    /// window, for arbitrary window/stride/bin combinations. The streaming
    /// engine leans on this to keep frequency bins current in O(k) per
    /// point instead of an O(L log L) FFT per window.
    #[test]
    fn sliding_dft_matches_batch_fft(
        x in prop::collection::vec(-10f64..10.0, 24..240),
        wsel in 4usize..64,
        stride in 1usize..16,
        binsel in 0usize..1000,
    ) {
        let w = wsel.min(x.len() / 2);
        let k = binsel % w;
        // Track DC, a random bin, and the topmost bin (deduped, sorted).
        let bins = {
            let mut b = vec![0, k, w - 1];
            b.sort_unstable();
            b.dedup();
            b
        };
        let mut sd = tsops::sliding::SlidingDft::from_window(&x[..w], &bins);
        let mut start = 0usize;
        while start + stride + w <= x.len() {
            for s in start..start + stride {
                sd.slide(x[s], x[s + w]);
            }
            start += stride;
            let spec = tsops::fft::rfft(&x[start..start + w]);
            for &b in &bins {
                let got = sd.bin(b).expect("tracked bin");
                prop_assert!(
                    (got - spec[b]).abs() < 1e-9,
                    "w={} stride={} bin={} start={}: {:?} vs {:?}",
                    w, stride, b, start, got, spec[b]
                );
            }
        }
    }
}

// Determinism of the parallel runtime (crates/parallel) under arbitrary
// configurations. These complement the fixed matrix in
// tests/parallel_determinism.rs with randomized shard/thread/seed choices.
// Case counts are low because each case trains a model.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Parallel gradient accumulation is **exact**, not approximate: for a
    /// random seed, shard count, and worker count, a fit equals the serial
    /// fit bit-for-bit — persisted TRIAD2 bytes and the full loss trace.
    #[test]
    fn parallel_fit_equals_serial_exactly(
        seed in 0u64..1000,
        grad_shards in 1usize..5,
        threads in 2usize..9,
    ) {
        let series = jittered_sine(384, 24, seed);
        let cfg = triad_core::TriadConfig {
            epochs: 1,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            period_override: Some(24),
            seed,
            grad_shards,
            threads: 1,
            ..Default::default()
        };
        let fit_bytes = |threads: usize| -> (Vec<u8>, Vec<f64>) {
            let cfg = triad_core::TriadConfig { threads, ..cfg.clone() };
            let fitted = triad_core::TriAd::new(cfg).fit(&series).expect("fit");
            let mut bytes = Vec::new();
            triad_core::persist::save(&mut bytes, &fitted).expect("persist");
            (bytes, fitted.report().epoch_losses.clone())
        };
        let (serial_bytes, serial_losses) = fit_bytes(1);
        let (par_bytes, par_losses) = fit_bytes(threads);
        prop_assert_eq!(serial_losses, par_losses);
        prop_assert_eq!(serial_bytes, par_bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The parallel per-length MERLIN sweep returns the **same discord set**
    /// regardless of worker count, for arbitrary series and length ranges.
    #[test]
    fn merlin_is_worker_count_invariant(
        n in 80usize..400,
        period in 8usize..40,
        phase in 0u64..1000,
        min_sel in 4usize..12,
        span in 0usize..40,
        step in 1usize..5,
        threads in 2usize..9,
    ) {
        let mut series = jittered_sine(n, period, phase);
        // Plant a small disturbance so the discord is non-degenerate.
        let at = n / 2;
        for (off, v) in series[at..(at + 6).min(n)].iter_mut().enumerate() {
            *v += 1.5 + 0.2 * off as f64;
        }
        let min_len = min_sel;
        let max_len = (min_len + span).min(n / 2);
        prop_assume!(max_len >= min_len);
        let cfg = discord::merlin::MerlinConfig::new(min_len, max_len).with_step(step);
        let serial = parallel::with_ambient(1, || discord::merlin::merlin(&series, cfg));
        let par = parallel::with_ambient(threads, || discord::merlin::merlin(&series, cfg));
        prop_assert_eq!(serial, par);
    }
}
