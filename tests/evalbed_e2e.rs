//! End-to-end contracts of the evaluation testbed (`crates/evalbed`):
//!
//! 1. the gated summary is **byte-identical** at thread counts 1 and 4;
//! 2. a mid-run kill (simulated by tearing the results file) resumes
//!    without recomputing intact tasks and converges to the same summary;
//! 3. fitted TriAD models round-trip through the serve registry cache, so
//!    re-runs skip training.

use evalbed::{run, EvalbedOptions};
use std::path::PathBuf;

fn opts(tag: &str, threads: usize) -> EvalbedOptions {
    let out = std::env::temp_dir().join(format!("evalbed_e2e_{tag}_{}", std::process::id()));
    EvalbedOptions {
        datasets: vec![1, 2],
        methods: vec!["triad".to_string(), "random".to_string()],
        epochs: 2,
        threads,
        ..EvalbedOptions::smoke(out)
    }
}

fn cleanup(dir: &PathBuf) {
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn gated_summary_is_byte_identical_across_thread_counts() {
    let o1 = opts("t1", 1);
    let o4 = opts("t4", 4);
    let r1 = run(&o1).expect("threads=1 run");
    let r4 = run(&o4).expect("threads=4 run");
    // Byte-level equality of the canonical gated serialization — not just
    // value-level agreement.
    assert_eq!(r1.summary.to_json(true), r4.summary.to_json(true));
    // The full files differ only in the timing section.
    assert_eq!(r1.summary.ranking, r4.summary.ranking);
    assert_eq!(r1.summary.wins, r4.summary.wins);
    cleanup(&o1.out_dir);
    cleanup(&o4.out_dir);
}

#[test]
fn torn_results_file_resumes_to_the_same_summary() {
    let o = opts("resume", 2);
    let first = run(&o).expect("first run");
    assert_eq!(first.executed, 4);

    // Simulate a kill mid-append: drop one complete row and tear the last
    // line in half.
    let text = std::fs::read_to_string(&first.rows_path).expect("rows");
    let mut lines: Vec<&str> = text.lines().collect();
    let torn = lines.pop().expect("at least one row");
    let torn = &torn[..torn.len() / 2];
    lines.pop(); // lose one complete row entirely
    let mut damaged = lines.join("\n");
    damaged.push('\n');
    damaged.push_str(torn);
    std::fs::write(&first.rows_path, damaged).expect("tear");

    let resumed = run(&EvalbedOptions {
        resume: true,
        ..o.clone()
    })
    .expect("resumed run");
    // Exactly the two damaged tasks re-ran; the intact two were not.
    assert_eq!(resumed.executed, 2);
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.skipped_lines, 1); // the torn line
                                          // And the final summary is byte-identical to the uninterrupted run.
    assert_eq!(first.summary.to_json(true), resumed.summary.to_json(true));
    cleanup(&o.out_dir);
}

#[test]
fn fitted_models_are_reused_from_the_registry_cache() {
    let o = opts("cache", 2);
    let first = run(&o).expect("first run");
    assert_eq!(first.models_reused, 0);

    // Fresh (non-resume) re-run with the same parameters: every TriAD task
    // must load its fit from the registry instead of training.
    let second = run(&o).expect("second run");
    assert_eq!(second.executed, 4);
    assert_eq!(second.models_reused, 2); // one per TriAD × dataset task
    assert_eq!(first.summary.to_json(true), second.summary.to_json(true));

    // The cache is keyed on the fit parameters: a different seed refits.
    let third = run(&EvalbedOptions {
        seed: 1,
        ..o.clone()
    })
    .expect("third run");
    assert_eq!(third.models_reused, 0);

    // With the cache disabled nothing is reused either.
    let fourth = run(&EvalbedOptions {
        no_cache: true,
        ..o.clone()
    })
    .expect("fourth run");
    assert_eq!(fourth.models_reused, 0);
    assert_eq!(first.summary.to_json(true), fourth.summary.to_json(true));
    cleanup(&o.out_dir);
}

#[test]
fn stride_sweep_adds_triad_variants() {
    let o = EvalbedOptions {
        datasets: vec![1],
        methods: vec!["triad".to_string()],
        stride_sweep: true,
        ..opts("sweep", 2)
    };
    let outcome = run(&o).expect("sweep run");
    let names: Vec<&str> = outcome
        .summary
        .methods
        .iter()
        .map(|m| m.name.as_str())
        .collect();
    assert_eq!(names, vec!["triad", "triad-s50", "triad-s100"]);
    // The markdown report carries the sweep table.
    let md = std::fs::read_to_string(&outcome.markdown_path).expect("md");
    assert!(md.contains("Stride/overlap sweep"), "{md}");
    cleanup(&o.out_dir);
}
