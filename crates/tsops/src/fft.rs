//! Fast Fourier transform.
//!
//! Two engines are provided behind one entry point:
//!
//! * an iterative, in-place radix-2 Cooley–Tukey FFT for power-of-two lengths;
//! * Bluestein's chirp-z algorithm for arbitrary lengths, which re-expresses a
//!   length-`n` DFT as a circular convolution evaluated with the radix-2 FFT.
//!
//! [`fft`] / [`ifft`] dispatch automatically, so callers can transform windows
//! of any length (UCR windows are 2.5 periods long and almost never a power of
//! two).

use std::f64::consts::PI;
use std::ops::{Add, Mul, Neg, Sub};

/// A complex number in rectangular form.
///
/// Deliberately minimal: only the operations the FFT and spectral features
/// need. Field order matches the conventional `(re, im)` layout.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (the spectral *power* of Table I).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `data.len()` must be a power of two. `inverse` selects the sign of the
/// twiddle exponent; scaling by `1/n` for the inverse transform is the
/// caller's responsibility (done in [`ifft`]).
fn fft_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: arbitrary-length DFT via a padded circular
/// convolution computed with the radix-2 engine.
fn fft_bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };

    // Chirp sequence w_k = e^{sign·iπk²/n}. k² mod 2n avoids precision loss
    // from huge angles when n is large.
    let mut chirp = Vec::with_capacity(n);
    for k in 0..n {
        let k2 = (k as u64 * k as u64) % (2 * n as u64);
        chirp.push(Complex::cis(sign * PI * k2 as f64 / n as f64));
    }

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for (k, (&x, &c)) in input.iter().zip(chirp.iter()).enumerate() {
        a[k] = x * c;
        b[k] = c.conj();
    }
    // b must be symmetric: b[m-k] = b[k] for the circular convolution to align.
    for k in 1..n {
        b[m - k] = b[k];
    }

    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (av, &bv) in a.iter_mut().zip(&b) {
        *av = *av * bv;
    }
    fft_pow2(&mut a, true);
    let inv_m = 1.0 / m as f64;

    (0..n).map(|k| (a[k].scale(inv_m)) * chirp[k]).collect()
}

/// Forward DFT of a complex sequence of any length.
///
/// Returns `X[k] = Σ_n x[n]·e^{-2πikn/N}` — the convention of the paper's
/// Eq. (2).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, false);
        data
    } else {
        fft_bluestein(input, false)
    }
}

/// Inverse DFT (includes the `1/N` normalisation), any length.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, true);
        for z in &mut data {
            *z = z.scale(inv_n);
        }
        data
    } else {
        let mut out = fft_bluestein(input, true);
        for z in &mut out {
            *z = z.scale(inv_n);
        }
        out
    }
}

/// Forward DFT of a real sequence. Returns all `N` bins (the upper half is the
/// conjugate mirror of the lower half; spectral-feature extraction slices what
/// it needs).
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&buf)
}

/// Inverse of [`rfft`] discarding the (numerically tiny) imaginary parts.
pub fn irfft_real(input: &[Complex]) -> Vec<f64> {
    ifft(input).into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for z in y {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let x = vec![Complex::ONE; 16];
        let y = fft(&x);
        assert_close(y[0].re, 16.0, 1e-10);
        for z in &y[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn fft_matches_naive_dft_non_pow2() {
        let n = 12;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let fast = fft(&x);
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (i, xi) in x.iter().enumerate() {
                acc = acc + *xi * Complex::cis(-2.0 * PI * (k * i) as f64 / n as f64);
            }
            assert!((fast[k] - acc).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn fft_matches_naive_dft_prime_length() {
        let n = 17;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let fast = fft(&x);
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (i, xi) in x.iter().enumerate() {
                acc = acc + *xi * Complex::cis(-2.0 * PI * (k * i) as f64 / n as f64);
            }
            assert!((fast[k] - acc).abs() < 1e-8, "bin {k}");
        }
    }

    #[test]
    fn ifft_round_trip_pow2() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn ifft_round_trip_arbitrary() {
        for n in [3usize, 5, 7, 10, 25, 100, 351] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let y = ifft(&fft(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn rfft_sinusoid_peaks_at_its_frequency() {
        let n = 128;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).sin())
            .collect();
        let y = rfft(&x);
        let mags: Vec<f64> = y.iter().take(n / 2).map(|z| z.abs()).collect();
        let argmax = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, k0);
        assert_close(mags[k0], n as f64 / 2.0, 1e-8);
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..50).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let y = rfft(&x);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert_close(time_energy, freq_energy, 1e-8);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(3.5, -1.0)]);
        assert_eq!(one.len(), 1);
        assert_close(one[0].re, 3.5, 1e-15);
        assert_close(one[0].im, -1.0, 1e-15);
    }
}
