//@ path: crates/core/src/fixture.rs
//@ expect: float-reduce-order
// Deliberately broken copy of the similarity kernel's `map_indexed` site:
// the dot product is re-inlined as a plain `.sum()`, so the reduction
// order is whatever the closure body happens to do. The shipped kernel
// routes this through parallel::reduce::dot_f32_in_order.
pub fn similarity_dots(rows: &[Vec<f32>]) -> Vec<Vec<f64>> {
    let m = rows.len();
    let d = rows.first().map_or(0, |r| r.len());
    let par = parallel::ambient().for_work((m * (m - 1) / 2) * d.max(1), 1 << 15);
    parallel::map_indexed(par, rows, |i, ri| {
        ((i + 1)..m)
            .map(|j| {
                ri.iter()
                    .zip(&rows[j])
                    .map(|(a, b)| (*a as f64) * (*b as f64))
                    .sum()
            })
            .collect()
    })
}
