//! Degenerate-labeling hardening: every metric family must return defined,
//! finite values in `[0, 1]` — never NaN, never a panic — on the inputs an
//! archive-scale sweep will eventually feed it: labelings with no
//! anomalies, all-anomalous labelings, single-point segments, and empty
//! splits. These are exactly the conventions `evalbed` relies on when it
//! asserts `MetricSet::is_sane()` over every (method, dataset) pair.

use evalkit::Prf;

fn assert_prf_sane(m: &Prf, ctx: &str) {
    for (name, v) in [
        ("precision", m.precision),
        ("recall", m.recall),
        ("f1", m.f1),
    ] {
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "{ctx}: {name} = {v}"
        );
    }
}

/// Every family × one (pred, labels) case.
fn assert_all_families_sane(pred: &[bool], labels: &[bool], ctx: &str) {
    assert_prf_sane(&evalkit::pointwise::prf(pred, labels), &format!("{ctx}/pw"));
    assert_prf_sane(&evalkit::pa::prf_pa(pred, labels), &format!("{ctx}/pa"));
    let pak = evalkit::pak::pak_auc(pred, labels);
    for (name, v) in [
        ("p_auc", pak.precision_auc),
        ("r_auc", pak.recall_auc),
        ("f1_auc", pak.f1_auc),
    ] {
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "{ctx}/pak: {name} = {v}"
        );
    }
    assert_prf_sane(
        &evalkit::range_pr::range_prf(pred, labels),
        &format!("{ctx}/range"),
    );
    assert_prf_sane(
        &evalkit::affiliation::affiliation_prf(pred, labels),
        &format!("{ctx}/aff"),
    );
    // Scores derived from the prediction exercise the AUC pair on the same
    // degenerate labeling.
    let scores: Vec<f64> = pred.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let roc = evalkit::auc::roc_auc(&scores, labels);
    let ap = evalkit::auc::average_precision(&scores, labels);
    assert!(
        roc.is_finite() && (0.0..=1.0).contains(&roc),
        "{ctx}/roc = {roc}"
    );
    assert!(
        ap.is_finite() && (0.0..=1.0).contains(&ap),
        "{ctx}/ap = {ap}"
    );
}

#[test]
fn no_anomalies_in_labels() {
    let labels = vec![false; 64];
    for (name, pred) in [
        ("quiet", vec![false; 64]),
        ("noisy", (0..64).map(|i| i % 7 == 0).collect::<Vec<bool>>()),
        ("all_pos", vec![true; 64]),
    ] {
        assert_all_families_sane(&pred, &labels, &format!("no_anom/{name}"));
        // With no true anomalies, recall-like quantities are 0 by the
        // 0-denominator convention, so F1 is 0 too.
        assert_eq!(evalkit::pointwise::prf(&pred, &labels).f1, 0.0);
        assert_eq!(evalkit::pak::pak_auc(&pred, &labels).f1_auc, 0.0);
        assert_eq!(
            evalkit::affiliation::affiliation_prf(&pred, &labels).f1,
            0.0
        );
    }
}

#[test]
fn all_anomalous_labels() {
    let labels = vec![true; 64];
    for (name, pred) in [
        ("quiet", vec![false; 64]),
        ("half", (0..64).map(|i| i < 32).collect::<Vec<bool>>()),
        ("all_pos", vec![true; 64]),
    ] {
        assert_all_families_sane(&pred, &labels, &format!("all_anom/{name}"));
    }
    // Perfect prediction on an all-anomalous labeling is a perfect score.
    let all = vec![true; 64];
    assert_eq!(evalkit::pointwise::prf(&all, &labels).f1, 1.0);
    assert_eq!(evalkit::pa::prf_pa(&all, &labels).f1, 1.0);
    assert_eq!(evalkit::range_pr::range_prf(&all, &labels).f1, 1.0);
}

#[test]
fn single_point_segments() {
    // Isolated one-point events, including at both boundaries.
    let mut labels = vec![false; 32];
    labels[0] = true;
    labels[15] = true;
    labels[31] = true;
    for (name, pred) in [
        ("exact", labels.clone()),
        ("missed", vec![false; 32]),
        ("near", {
            let mut p = vec![false; 32];
            p[1] = true; // adjacent to the boundary event
            p[16] = true; // adjacent to the middle event
            p
        }),
    ] {
        assert_all_families_sane(&pred, &labels, &format!("single_pt/{name}"));
    }
    // An exact hit on every single-point event is perfect under PA%K at
    // every K (coverage is 100% > K for all K < 100).
    let pak = evalkit::pak::pak_auc(&labels, &labels);
    assert_eq!(pak.f1_auc, 1.0);
}

#[test]
fn empty_split() {
    let empty_b: Vec<bool> = Vec::new();
    let empty_f: Vec<f64> = Vec::new();
    assert_all_families_sane(&empty_b, &empty_b, "empty");
    assert_eq!(evalkit::auc::roc_auc(&empty_f, &empty_b), 0.5);
    assert_eq!(evalkit::auc::average_precision(&empty_f, &empty_b), 0.0);
    assert_eq!(evalkit::threshold::quantile(&empty_f, 0.5), 0.0);
    assert!(evalkit::threshold::apply(&empty_f, 0.0).is_empty());
    let (_, m) = evalkit::threshold::best_f1(&empty_f, &empty_b);
    assert_prf_sane(&m, "empty/best_f1");
    assert!(evalkit::segments(&empty_b).is_empty());
}

#[test]
fn single_sample_series() {
    for label in [false, true] {
        for pred in [false, true] {
            assert_all_families_sane(&[pred], &[label], &format!("n1/{label}/{pred}"));
        }
    }
    // A one-sample hit is a perfect detection.
    assert_eq!(evalkit::pointwise::prf(&[true], &[true]).f1, 1.0);
    assert_eq!(evalkit::range_pr::range_prf(&[true], &[true]).f1, 1.0);
}

#[test]
fn constant_scores_have_defined_auc() {
    let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
    let scores = vec![0.5f64; 10];
    // All-tied scores are exactly chance under the midrank convention.
    assert!((evalkit::auc::roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    let ap = evalkit::auc::average_precision(&scores, &labels);
    assert!(ap.is_finite() && (0.0..=1.0).contains(&ap));
    // best_f1 over constant scores: flag everything or nothing, defined.
    let (_, m) = evalkit::threshold::best_f1(&scores, &labels);
    assert_prf_sane(&m, "const/best_f1");
}
