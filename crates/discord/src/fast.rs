//! Fast-mode discord kernels: full self-join distance profiles via FFT-seeded
//! diagonal recurrences (STOMP-style), replacing the exact ladder's
//! per-candidate distance loops.
//!
//! The exact path ([`crate::merlin::merlin`]) drives DRAG with an adaptive
//! range `r`, paying `O(n·w)` per candidate distance. This module computes,
//! for each swept length `w`, the *entire* z-normalised nearest-neighbour
//! profile in `O(n log n + n·(n/w))`-ish time: one cached-FFT sliding dot
//! product seeds row 0 ([`tsops::mass::SelfJoinPlan`]), and every diagonal of
//! the self-join matrix is walked with the O(1) dot-product update
//! `QT(i+1, j+1) = QT(i, j) − x[i]·x[j] + x[i+w]·x[j+w]`.
//!
//! Numeric contract: the recurrence reassociates float sums, so results are
//! **tolerance-equivalent** to the exact kernels (same discord indices,
//! distances within 1e-6 relative — gated by `tests/numeric_equivalence.rs`),
//! not bit-identical to them. Within fast mode, results are bit-identical at
//! any thread count: each diagonal is a pure function of the input, and the
//! only cross-worker merge is an element-wise `f64::max`, which is exactly
//! associative and commutative.
//!
//! Degenerate (σ ≈ 0) windows follow the conventions of
//! [`tsops::distance::ZnormSeries`] and `tsops::mass::mass`:
//! constant-vs-constant → 0, constant-vs-varying → `√w`. Windows with no
//! admissible neighbour at all (possible whenever `n ≤ 3w − 2`) report `∞`
//! in the profile and are excluded from discord results, matching the exact
//! kernels' `is_finite()` handling.

use crate::merlin::{swept_lengths, MerlinConfig};
use crate::Discord;
use tsops::mass::SelfJoinPlan;
use tsops::stats::rolling_mean_std;

/// σ below this is treated as a constant (degenerate) window, matching
/// `ZnormSeries` and `tsops::mass`.
const DEGENERATE_SIGMA: f64 = 1e-12;

/// Number of adjacent diagonals walked together so the inner loop
/// autovectorizes: the per-diagonal dot recurrences are independent, and the
/// `j`-side best-so-far updates hit a contiguous span of the profile.
const DIAG_BLOCK: usize = 8;

/// A per-length search must report *something* ≥ this to count as a discord;
/// below it the exact ladder would have exhausted its retries and yielded
/// nothing for the length, so fast mode mirrors that with `None`.
const MIN_DISCORD_DIST: f64 = 1e-9;

// numeric-mode(fast): diagonal dot-product recurrences reassociate float sums;
// gated by the tolerance-equivalence harness, merged with exact f64::max.
/// The z-normalised Euclidean distance from every length-`w` subsequence to
/// its nearest admissible neighbour (`|i − j| ≥ w`), i.e. the full matrix
/// profile, computed via diagonal recurrences seeded from `plan`.
///
/// Requires `series.len() ≥ 2·w` (so at least one admissible *pair* exists)
/// and a plan built over this exact series with `max_query ≥ w`.
///
/// A subsequence can still be partnerless: window `m` has no admissible
/// neighbour when `n − 2w < m < w`, which is non-empty whenever
/// `n ≤ 3w − 2`. Such entries are reported as `f64::INFINITY`, exactly like
/// [`crate::matrix_profile::matrix_profile`]; the discord searches below
/// exclude them with `is_finite()`, mirroring exact DRAG's refinement.
pub fn self_join_profile(series: &[f64], w: usize, plan: &SelfJoinPlan) -> Vec<f64> {
    assert!(w >= 2, "window must be >= 2");
    let n = series.len();
    assert!(n >= 2 * w, "series must hold two non-overlapping windows");
    assert_eq!(
        plan.series_len(),
        n,
        "plan was built over a different series"
    );
    let nsub = n - w + 1;

    let (means, stds) = rolling_mean_std(series, w);
    let sqrt_w = (w as f64).sqrt();
    // corr(i, j) = (QT(i,j) − w·μ_i·μ_j) / (w·σ_i·σ_j)
    //            = (QT(i,j) − mw[i]·mw[j]) · ivw[i]·ivw[j]
    // Degenerate windows get ivw = 0, forcing their pair correlations to 0;
    // the post-pass below overwrites every affected entry with the exact
    // degenerate conventions, so the zeros never leak into the output.
    let mut mw = vec![0.0; nsub];
    let mut ivw = vec![0.0; nsub];
    let mut degenerate = vec![false; nsub];
    let mut any_degenerate = false;
    for i in 0..nsub {
        mw[i] = sqrt_w * means[i];
        if stds[i] < DEGENERATE_SIGMA {
            degenerate[i] = true;
            any_degenerate = true;
        } else {
            ivw[i] = 1.0 / (sqrt_w * stds[i]);
        }
    }

    // Row 0 of the dot-product matrix, QT(0, j), seeds every diagonal.
    let first_row = plan.sliding_dots(&series[..w]);

    // Diagonal k (j − i = k) exists for k in w..nsub; walk them in blocks.
    let diag_count = nsub - w;
    let par = parallel::ambient().for_work(diag_count * nsub / 2, 1 << 15);
    let partials = parallel::map_ranges(par, diag_count, |range| {
        let mut best = vec![f64::NEG_INFINITY; nsub];
        let mut k0 = range.start;
        // Full blocks go through the fixed-width walk (the compiler unrolls
        // and vectorizes the constant-length inner loops); the ragged tail
        // (< DIAG_BLOCK diagonals) falls back to width 1.
        while k0 + DIAG_BLOCK <= range.end {
            walk_diagonal_block::<DIAG_BLOCK>(
                series,
                w,
                nsub,
                w + k0,
                &first_row,
                &mw,
                &ivw,
                &mut best,
            );
            k0 += DIAG_BLOCK;
        }
        while k0 < range.end {
            walk_diagonal_block::<1>(series, w, nsub, w + k0, &first_row, &mw, &ivw, &mut best);
            k0 += 1;
        }
        best
    });
    let mut best = vec![f64::NEG_INFINITY; nsub];
    for part in &partials {
        for (b, &p) in best.iter_mut().zip(part) {
            *b = b.max(p);
        }
    }

    // Highest admissible correlation → smallest distance, with the exact
    // kernels' clamp and non-negativity guard. A window no diagonal ever
    // touched (no admissible neighbour; happens when n ≤ 3w − 2) still holds
    // the −∞ sentinel — map it to ∞, the exact kernels' "no neighbour"
    // value, instead of clamping it to the theoretical max distance.
    let two_w = 2.0 * w as f64;
    let mut dist_sq: Vec<f64> = best
        .iter()
        .map(|&c| {
            if c == f64::NEG_INFINITY {
                f64::INFINITY
            } else {
                (two_w * (1.0 - c.clamp(-1.0, 1.0))).max(0.0)
            }
        })
        .collect();

    if any_degenerate {
        fix_degenerate(&degenerate, w, nsub, &mut dist_sq);
    }

    dist_sq.iter().map(|&d| d.sqrt()).collect()
}

// numeric-mode(fast): the dot recurrence accumulates in diagonal order, not
// element order; sanctioned reassociation behind the fast numeric mode.
/// Walk `B` adjacent diagonals `k..k+B` together, folding each cell's
/// correlation into `best[i]` (row side) and `best[j]` (column side). `B` is
/// a compile-time constant so the inner loops unroll and vectorize.
#[allow(clippy::too_many_arguments)]
fn walk_diagonal_block<const B: usize>(
    x: &[f64],
    w: usize,
    nsub: usize,
    k: usize,
    first_row: &[f64],
    mw: &[f64],
    ivw: &[f64],
    best: &mut [f64],
) {
    let mut dots = [0.0f64; B];
    let mut corrs = [0.0f64; B];
    for t in 0..B {
        dots[t] = first_row[k + t];
    }
    // All `B` diagonals are valid while i < common_len (the shortest,
    // t = B − 1, has nsub − (k + B − 1) cells; ≥ 1 by construction).
    let common_len = nsub - (k + B - 1);
    for i in 0..common_len {
        let mwi = mw[i];
        let ivwi = ivw[i];
        let jbase = i + k;
        let mwj = &mw[jbase..jbase + B];
        let ivwj = &ivw[jbase..jbase + B];
        for t in 0..B {
            // lint-allow(index-stampede): t < B over [f64; B] arrays and
            // B-length slices taken just above — every index is in bounds.
            corrs[t] = (dots[t] - mwi * mwj[t]) * (ivwi * ivwj[t]);
        }
        // Plain compare-selects instead of `f64::max`: correlations are never
        // NaN (finite input, degenerate σ handled via ivw = 0), and `>` lowers
        // to a branch-free select the vectorizer likes.
        let mut row_best = best[i];
        for t in 0..B {
            if corrs[t] > row_best {
                row_best = corrs[t];
            }
        }
        best[i] = row_best;
        let bestj = &mut best[jbase..jbase + B];
        for t in 0..B {
            if corrs[t] > bestj[t] {
                bestj[t] = corrs[t];
            }
        }
        // Advance each diagonal's dot product to row i + 1. The longest read
        // is x[jbase + B − 1 + w] = x[i + k + B − 1 + w]; for
        // i + 1 < common_len that index is < n, so the reads stay in bounds.
        if i + 1 < common_len {
            let xi = x[i];
            let xiw = x[i + w];
            let xj = &x[jbase..jbase + B];
            let xjw = &x[jbase + w..jbase + w + B];
            for t in 0..B {
                // lint-allow(index-stampede): t < B over [f64; B] and the
                // B-length slices taken just above.
                dots[t] += xiw * xjw[t] - xi * xj[t];
            }
        }
    }
    // Drain the longer diagonals (t < B − 1) one at a time past the
    // common region, continuing each recurrence from row common_len − 1.
    for t in 0..B {
        let len_t = nsub - (k + t);
        let mut dot = dots[t];
        for i in common_len..len_t {
            let j = i + k + t;
            // lint-allow(index-stampede): i ≥ common_len ≥ 1 and
            // j − 1 + w = i + k + t − 1 + w < len_t + k + t − 1 + w = n − 1.
            dot += x[i - 1 + w] * x[j - 1 + w] - x[i - 1] * x[j - 1];
            // lint-allow(index-stampede): i < len_t ≤ nsub and j < nsub —
            // both inside the nsub-length mean/σ arrays.
            let c = (dot - mw[i] * mw[j]) * (ivw[i] * ivw[j]);
            best[i] = best[i].max(c);
            best[j] = best[j].max(c);
        }
    }
}

/// Overwrite profile entries involving degenerate (constant) windows with the
/// exact conventions: a degenerate window's NN distance is 0 if another
/// admissible degenerate window exists, else `√w`; a varying window with an
/// admissible degenerate partner caps its NN distance² at `w`.
fn fix_degenerate(degenerate: &[bool], w: usize, nsub: usize, dist_sq: &mut [f64]) {
    // prefix[i] = number of degenerate windows among 0..i (exclusive).
    let mut prefix = vec![0usize; nsub + 1];
    for i in 0..nsub {
        // lint-allow(index-stampede): i < nsub over an nsub+1-length prefix
        // array and nsub-length flags.
        prefix[i + 1] = prefix[i] + usize::from(degenerate[i]);
    }
    let wf = w as f64;
    for i in 0..nsub {
        if i < w && i + w >= nsub {
            // No admissible neighbour at all: the entry is already ∞
            // (matching the exact kernels) — the conventions don't apply.
            continue;
        }
        // Degenerate partners at admissible offsets: j ≤ i − w or j ≥ i + w.
        let left = prefix[(i + 1).saturating_sub(w)];
        let right = if i + w < nsub {
            prefix[nsub] - prefix[i + w]
        } else {
            0
        };
        let has_degenerate_partner = left + right > 0;
        if degenerate[i] {
            dist_sq[i] = if has_degenerate_partner { 0.0 } else { wf };
        } else if has_degenerate_partner {
            dist_sq[i] = dist_sq[i].min(wf);
        }
    }
}

/// Fast-mode DRAG: every subsequence whose nearest-neighbour distance is
/// ≥ `r`, sorted by distance descending (ties broken by ascending index,
/// matching [`crate::drag::drag`]'s stable sort). Partnerless windows
/// (profile = ∞) are dropped, like exact DRAG's `is_finite()` refinement.
pub fn drag_fast(series: &[f64], w: usize, r: f64, plan: &SelfJoinPlan) -> Vec<Discord> {
    let profile = self_join_profile(series, w, plan);
    let mut out: Vec<Discord> = profile
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d.is_finite() && d >= r)
        .map(|(i, &d)| Discord {
            index: i,
            length: w,
            distance: d,
        })
        .collect();
    out.sort_by(|a, b| b.distance.total_cmp(&a.distance));
    out
}

/// Fast-mode MERLIN: the top-1 discord at each swept length, computed from
/// the full profile instead of the adaptive-`r` ladder. Sweeps the identical
/// length list as [`crate::merlin::merlin`] (see
/// [`crate::merlin::swept_lengths`]); a length yields `None` exactly when its
/// maximum profile value is below the exact ladder's bail-out floor.
pub fn merlin_fast(series: &[f64], cfg: MerlinConfig) -> Vec<Discord> {
    let lengths = swept_lengths(series.len(), cfg);
    let mut span = obs::span("merlin-sweep-fast");
    span.add_field("n", series.len());
    span.add_field("lengths", lengths.len());
    let Some(&max_len) = lengths.last() else {
        return Vec::new();
    };
    let plan = SelfJoinPlan::new(series, max_len);
    let par = parallel::ambient().for_work(lengths.len() * series.len(), 1 << 14);
    parallel::map_indexed(par, &lengths, |_, &w| top_discord_at(series, w, &plan))
        .into_iter()
        .flatten()
        .collect()
}

/// Top-1 discord at one length: the argmax over *finite* profile entries
/// (first index on strict maxima, matching DRAG's ascending-index tie
/// break; partnerless ∞ entries are excluded like exact DRAG's
/// `is_finite()` check), or `None` when even the best distance sits below
/// the discord floor.
fn top_discord_at(series: &[f64], w: usize, plan: &SelfJoinPlan) -> Option<Discord> {
    let profile = self_join_profile(series, w, plan);
    let mut best_i = 0usize;
    let mut best_d = f64::NEG_INFINITY;
    for (i, &d) in profile.iter().enumerate() {
        if d.is_finite() && d > best_d {
            best_d = d;
            best_i = i;
        }
    }
    if best_d < MIN_DISCORD_DIST {
        return None;
    }
    Some(Discord {
        index: best_i,
        length: w,
        distance: best_d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drag::drag;
    use crate::matrix_profile::matrix_profile;
    use crate::merlin::merlin;
    use std::f64::consts::PI;

    fn anomalous(n: usize, p: usize, at: usize, len: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * i as f64 / p as f64).sin())
            .collect();
        for i in at..at + len {
            x[i] = (4.0 * PI * i as f64 / p as f64).sin();
        }
        x
    }

    #[test]
    fn profile_matches_brute_force_matrix_profile() {
        let x = anomalous(300, 25, 140, 30);
        for w in [5usize, 16, 33] {
            let plan = SelfJoinPlan::new(&x, 33);
            let fast = self_join_profile(&x, w, &plan);
            let truth = matrix_profile(&x, w);
            assert_eq!(fast.len(), truth.profile.len());
            for (i, (&f, &t)) in fast.iter().zip(&truth.profile).enumerate() {
                // Near-zero entries (self-matches) amplify FFT round-off ε
                // into √ε through the final sqrt, hence the absolute term.
                assert!(
                    (f - t).abs() <= 1e-5 + 1e-6 * t.abs(),
                    "w={w} i={i}: fast {f} vs brute {t}"
                );
            }
        }
    }

    #[test]
    fn profile_is_identical_at_any_thread_count() {
        let x = anomalous(400, 20, 180, 25);
        let plan = SelfJoinPlan::new(&x, 40);
        let serial = parallel::with_ambient(1, || self_join_profile(&x, 24, &plan));
        for t in [2usize, 4, 8] {
            let par = parallel::with_ambient(t, || self_join_profile(&x, 24, &plan));
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "profile not bit-identical at {t} threads"
            );
        }
    }

    #[test]
    fn drag_fast_matches_exact_drag_sets() {
        let x = anomalous(280, 22, 130, 28);
        let w = 18;
        let plan = SelfJoinPlan::new(&x, w);
        for r in [3.0f64, 2.0, 1.0] {
            let fast = drag_fast(&x, w, r, &plan);
            let exact = drag(&x, w, r);
            assert_eq!(
                fast.iter().map(|d| d.index).collect::<Vec<_>>(),
                exact.iter().map(|d| d.index).collect::<Vec<_>>(),
                "r={r}"
            );
            for (f, e) in fast.iter().zip(&exact) {
                assert!(
                    (f.distance - e.distance).abs() <= 1e-6 * (1.0 + e.distance),
                    "r={r} idx {}: {} vs {}",
                    f.index,
                    f.distance,
                    e.distance
                );
            }
        }
    }

    #[test]
    fn merlin_fast_matches_exact_merlin() {
        let x = anomalous(420, 30, 200, 35);
        let cfg = MerlinConfig::new(20, 30).with_step(5);
        let fast = merlin_fast(&x, cfg);
        let exact = merlin(&x, cfg);
        assert_eq!(fast.len(), exact.len());
        for (f, e) in fast.iter().zip(&exact) {
            assert_eq!((f.index, f.length), (e.index, e.length));
            assert!(
                (f.distance - e.distance).abs() <= 1e-6 * (1.0 + e.distance),
                "length {}: {} vs {}",
                f.length,
                f.distance,
                e.distance
            );
        }
    }

    #[test]
    fn merlin_fast_on_constant_series_returns_nothing() {
        let x = vec![1.0; 200];
        assert!(merlin_fast(&x, MerlinConfig::new(10, 12)).is_empty());
    }

    #[test]
    fn partnerless_windows_match_exact_kernels() {
        // 2w ≤ n ≤ 3w − 2: windows m with n − 2w < m < w have no admissible
        // neighbour. The profile must report ∞ there (exactly like
        // matrix_profile), and the discord searches must never surface them.
        let x = anomalous(60, 12, 30, 10);
        let w = 25;
        let n = x.len();
        let plan = SelfJoinPlan::new(&x, w);
        let fast = self_join_profile(&x, w, &plan);
        let truth = matrix_profile(&x, w);
        assert_eq!(fast.len(), truth.profile.len());
        let mut saw_partnerless = false;
        for (i, (&f, &t)) in fast.iter().zip(&truth.profile).enumerate() {
            if i > n - 2 * w && i < w {
                assert!(t.is_infinite(), "oracle regression: i={i} should be ∞");
                assert!(f.is_infinite(), "i={i}: partnerless window reported {f}");
                saw_partnerless = true;
            } else {
                assert!(
                    (f - t).abs() <= 1e-5 + 1e-6 * t.abs(),
                    "i={i}: fast {f} vs brute {t}"
                );
            }
        }
        assert!(saw_partnerless, "fixture must exercise the regime");

        // drag_fast drops ∞ entries exactly as exact DRAG's is_finite() does.
        for r in [0.5f64, 2.0] {
            let fast_set: Vec<usize> = drag_fast(&x, w, r, &plan).iter().map(|d| d.index).collect();
            let exact_set: Vec<usize> = drag(&x, w, r).iter().map(|d| d.index).collect();
            assert_eq!(fast_set, exact_set, "r={r}");
        }

        // merlin_fast agrees with the exact ladder across the whole regime.
        let cfg = MerlinConfig::new(20, 29).with_step(3);
        let fast = merlin_fast(&x, cfg);
        let exact = merlin(&x, cfg);
        assert_eq!(fast.len(), exact.len());
        for (f, e) in fast.iter().zip(&exact) {
            assert_eq!((f.index, f.length), (e.index, e.length));
            assert!((f.distance - e.distance).abs() <= 1e-5 + 1e-6 * e.distance.abs());
        }
    }

    #[test]
    fn degenerate_windows_follow_exact_conventions() {
        // Flat head, varying tail: windows fully inside the head are
        // degenerate and (for w = 10) have other admissible degenerate
        // windows, so their NN distance is 0; varying windows adjacent to
        // degenerate partners cap at √w.
        let mut x = vec![2.0; 60];
        for (i, v) in x[30..60].iter_mut().enumerate() {
            *v = (i as f64 * 0.9).sin();
        }
        let w = 10;
        let plan = SelfJoinPlan::new(&x, w);
        let fast = self_join_profile(&x, w, &plan);
        let truth = matrix_profile(&x, w);
        for (i, (&f, &t)) in fast.iter().zip(&truth.profile).enumerate() {
            assert!(
                (f - t).abs() <= 1e-5 + 1e-6 * t.abs(),
                "i={i}: fast {f} vs brute {t}"
            );
        }
        assert!(fast[0].abs() < 1e-9, "flat-vs-flat must be 0");
    }
}
