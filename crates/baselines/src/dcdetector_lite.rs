//! DCdetector-lite (after Yang et al., KDD 2023).
//!
//! Mechanism kept: two attention branches view every window at different
//! granularities — a *patch-level* branch attends over patch summaries, an
//! *in-patch* (point-level) branch attends over raw timestamps — and a purely
//! contrastive objective (no reconstruction) pulls the two branches'
//! per-timestamp representations together on normal data. At inference the
//! branch **discrepancy** at each timestamp is the anomaly score: anomalies
//! break the cross-granularity consistency the model learned from normal
//! patterns.
//!
//! Simplifications (DESIGN.md): single-head attention, one patch size, and a
//! cosine-distance consistency loss standing in for the original's pair of
//! KL divergences (same fixed point: branch agreement).

use crate::common::{make_segmenter, scatter_pointwise, znorm_windows};
use crate::Detector;
use neuro::graph::Graph;
use neuro::layers::{Linear, SelfAttention};
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// DCdetector-lite configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcDetectorConfig {
    pub d_model: usize,
    /// Patch length for the coarse branch.
    pub patch: usize,
    pub epochs: usize,
    pub lr: f64,
    pub seed: u64,
}

impl Default for DcDetectorConfig {
    fn default() -> Self {
        DcDetectorConfig {
            d_model: 16,
            patch: 8,
            epochs: 8,
            lr: 1e-3,
            seed: 0,
        }
    }
}

pub struct DcDetectorLite {
    pub cfg: DcDetectorConfig,
}

impl DcDetectorLite {
    pub fn new(cfg: DcDetectorConfig) -> Self {
        assert!(cfg.patch >= 2, "patch must be ≥ 2");
        DcDetectorLite { cfg }
    }
}

struct Net {
    embed: Linear,
    fine: SelfAttention,
    coarse: SelfAttention,
}

impl Net {
    fn new(rng: &mut StdRng, d: usize) -> Self {
        Net {
            embed: Linear::new(rng, 2, d),
            fine: SelfAttention::new(rng, d, d, d),
            coarse: SelfAttention::new(rng, d, d, d),
        }
    }

    fn params(&self) -> Vec<neuro::graph::Param> {
        let mut p = self.embed.params();
        p.extend(self.fine.params());
        p.extend(self.coarse.params());
        p
    }
}

/// Token features `(value, position)` for one window.
fn tokens(window: &[f64]) -> Tensor {
    let l = window.len();
    let mut data = Vec::with_capacity(l * 2);
    for (t, &v) in window.iter().enumerate() {
        data.push(v as f32);
        data.push(t as f32 / l.max(1) as f32);
    }
    Tensor::from_vec(&[l, 2], data)
}

/// Average rows of `[L, D]` into `[P, D]` patch means (constant pooling
/// matrix), then after coarse attention broadcast back to `[L, D]`.
fn pool_matrix(l: usize, patch: usize) -> (Tensor, Tensor, usize) {
    let p = l.div_ceil(patch);
    let mut pool = vec![0.0f32; p * l];
    let mut unpool = vec![0.0f32; l * p];
    for pi in 0..p {
        let lo = pi * patch;
        let hi = ((pi + 1) * patch).min(l);
        let w = (hi - lo) as f32;
        for t in lo..hi {
            pool[pi * l + t] = 1.0 / w;
            unpool[t * p + pi] = 1.0;
        }
    }
    (
        Tensor::from_vec(&[p, l], pool),
        Tensor::from_vec(&[l, p], unpool),
        p,
    )
}

/// Forward both branches over one window; returns per-timestamp cosine
/// discrepancy plus the consistency-loss node when training.
fn run_window(net: &Net, window: &[f64], patch: usize, train: bool) -> Vec<f64> {
    let l = window.len();
    let mut g = Graph::new();
    let x = g.input(tokens(window));
    let h = net.embed.forward(&mut g, x); // [L, D]

    // Fine branch: point-level attention.
    let (fine_out, _) = net.fine.forward(&mut g, h);
    let fine_n = g.l2_normalize_rows(fine_out);

    // Coarse branch: patch means → attention → broadcast back.
    let (pool, unpool, _p) = pool_matrix(l, patch);
    let pool = g.input(pool);
    let unpool = g.input(unpool);
    let patches = g.matmul(pool, h); // [P, D]
    let (coarse_out, _) = net.coarse.forward(&mut g, patches);
    let coarse_full = g.matmul(unpool, coarse_out); // [L, D]
    let coarse_n = g.l2_normalize_rows(coarse_full);

    // Per-timestamp cosine discrepancy: 1 − ⟨fine, coarse⟩.
    let prod = g.mul(fine_n, coarse_n);
    let cos = g.row_sum(prod); // [L,1]
    let neg = g.neg(cos);
    let disc = g.add_scalar(neg, 1.0);

    if train {
        let loss = g.mean_all(disc);
        if g.value(loss).item().is_finite() {
            g.backward(loss);
        }
    }
    g.value(disc).data().iter().map(|&v| v as f64).collect()
}

impl Detector for DcDetectorLite {
    fn name(&self) -> String {
        "DCdetector".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let seg = make_segmenter(train);
        let (_, slices) = znorm_windows(train, &seg);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let net = Net::new(&mut rng, self.cfg.d_model);
        let mut opt = Adam::new(net.params(), self.cfg.lr as f32);

        let mut idxs: Vec<usize> = (0..slices.len()).collect();
        for _ in 0..self.cfg.epochs {
            idxs.shuffle(&mut rng);
            for &i in &idxs {
                run_window(&net, &slices[i], self.cfg.patch, true);
                opt.step();
            }
        }

        let (windows, tslices) = znorm_windows(test, &seg);
        let per_window: Vec<Vec<f64>> = tslices
            .iter()
            .map(|w| run_window(&net, w, self.cfg.patch, false))
            .collect();
        scatter_pointwise(&windows, &per_window, test.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn quick() -> DcDetectorConfig {
        DcDetectorConfig {
            d_model: 8,
            patch: 5,
            epochs: 2,
            ..Default::default()
        }
    }

    fn dataset() -> (Vec<f64>, Vec<f64>) {
        let p = 20.0;
        let full: Vec<f64> = (0..700).map(|i| (2.0 * PI * i as f64 / p).sin()).collect();
        let mut test = full[400..].to_vec();
        for i in 100..130 {
            test[i] = -test[i]; // contextual inversion
        }
        (full[..400].to_vec(), test)
    }

    #[test]
    fn pooling_matrices_are_consistent() {
        let (pool, unpool, p) = pool_matrix(10, 4);
        assert_eq!(p, 3);
        assert_eq!(pool.shape(), &[3, 10]);
        assert_eq!(unpool.shape(), &[10, 3]);
        // Pool rows sum to 1; unpool rows have exactly one 1.
        for pi in 0..3 {
            let s: f32 = pool.row(pi).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        for t in 0..10 {
            let ones = unpool.row(t).iter().filter(|&&v| v == 1.0).count();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn score_shape_and_range() {
        let (train, test) = dataset();
        let s = DcDetectorLite::new(quick()).score(&train, &test);
        assert_eq!(s.len(), test.len());
        // Cosine discrepancy ∈ [0, 2].
        assert!(s.iter().all(|&v| (0.0..=2.0 + 1e-6).contains(&v)));
    }

    #[test]
    fn training_reduces_branch_discrepancy_on_normal_data() {
        let (train, test) = dataset();
        let su = DcDetectorLite::new(DcDetectorConfig {
            epochs: 0,
            ..quick()
        })
        .score(&train, &test);
        let st = DcDetectorLite::new(quick()).score(&train, &test);
        let mu: f64 = su[..80].iter().sum::<f64>() / 80.0;
        let mt: f64 = st[..80].iter().sum::<f64>() / 80.0;
        assert!(mt < mu, "consistency did not improve: {mt} !< {mu}");
    }

    #[test]
    fn deterministic() {
        let (train, test) = dataset();
        let a = DcDetectorLite::new(quick()).score(&train, &test);
        let b = DcDetectorLite::new(quick()).score(&train, &test);
        assert_eq!(a, b);
    }
}
