//! Score-to-label conversion.
//!
//! Baselines emit continuous anomaly scores. Following the comparison
//! protocol ("we test each model using its source code and exclude any PA
//! processes prior to … our redefined evaluation metrics"), scores are
//! binarised either by the best-F1 sweep that the baseline papers themselves
//! use, or by a fixed quantile.

use crate::pointwise;
use crate::Prf;

/// Labels from `scores > thr`.
pub fn apply(scores: &[f64], thr: f64) -> Vec<bool> {
    scores.iter().map(|&s| s > thr).collect()
}

/// The `q`-quantile of the scores (`q` clamped to `[0,1]`, nearest-rank).
/// Empty scores yield 0.0 — a defined value, matching the degenerate-input
/// convention of the metric families (an empty score stream has nothing to
/// threshold, and `apply(&[], 0.0)` is the empty prediction).
pub fn quantile(scores: &[f64], q: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Best point-wise-F1 threshold over the distinct score values.
///
/// Returns `(threshold, metrics_at_threshold)`. Candidate cut points are the
/// distinct scores (evaluated as `> s`, so every achievable labelling is
/// covered); ties keep the first (lowest) threshold.
pub fn best_f1(scores: &[f64], labels: &[bool]) -> (f64, Prf) {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut candidates: Vec<f64> = scores.to_vec();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    // Also consider "everything positive" via a threshold below the minimum.
    let below_min = candidates.first().map(|&m| m - 1.0).unwrap_or(0.0);
    candidates.insert(0, below_min);

    let mut best = (below_min, Prf::default());
    for &thr in &candidates {
        let pred = apply(scores, thr);
        let m = pointwise::prf(&pred, labels);
        if m.f1 > best.1.f1 {
            best = (thr, m);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_strict_greater() {
        assert_eq!(apply(&[1.0, 2.0, 3.0], 2.0), vec![false, false, true]);
    }

    #[test]
    fn quantile_basics() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 5.0);
        assert_eq!(quantile(&s, 0.5), 3.0);
    }

    #[test]
    fn best_f1_finds_separating_threshold() {
        let scores = [0.1, 0.2, 0.15, 0.9, 0.95, 0.2];
        let labels = [false, false, false, true, true, false];
        let (thr, m) = best_f1(&scores, &labels);
        assert_eq!(m.f1, 1.0);
        assert!((0.2..0.9).contains(&thr), "thr {thr}");
    }

    #[test]
    fn best_f1_on_inseparable_scores() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let (_, m) = best_f1(&scores, &labels);
        // Best achievable: flag everything → P=0.5, R=1.
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn best_f1_all_negative_labels() {
        let scores = [0.1, 0.9];
        let labels = [false, false];
        let (_, m) = best_f1(&scores, &labels);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn quantile_degenerate_inputs_are_defined() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        let s = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&s, -0.5), 1.0); // q clamped to 0
        assert_eq!(quantile(&s, 1.5), 3.0); // q clamped to 1
    }
}
