//@ path: crates/neuro/src/fixture.rs
//@ expect:
// Sanctioned counterpart to the determinism fixtures: every approved
// alternative in one file, and none of them may produce a diagnostic.
use std::collections::{BTreeMap, HashMap};

pub struct Stats {
    by_name: BTreeMap<String, u64>,
    cache: HashMap<String, u64>,
}

impl Stats {
    /// BTreeMap iteration is ordered: sanctioned.
    pub fn names(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect()
    }

    /// Hash iteration laundered through a sorted collect: sanctioned.
    pub fn cached_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cache.keys().cloned().collect();
        v.sort();
        v
    }

    /// Order-insensitive terminal on a hash collection: sanctioned.
    pub fn all_live(&self) -> bool {
        self.cache.values().all(|n| *n > 0)
    }
}

/// Exact-order reduction inside a parallel region, with the thread count
/// inherited from the ambient pool rather than re-derived: sanctioned.
pub fn row_sums(rows: &[Vec<f64>]) -> Vec<f64> {
    parallel::with_ambient(0, || {
        parallel::map_indexed(parallel::ambient(), rows, |_, r| {
            parallel::reduce::sum_in_order(r.iter().copied())
        })
    })
}
