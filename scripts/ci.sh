#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite.
# Run from anywhere; it cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test (TRIAD_THREADS=1: serial everywhere)"
TRIAD_THREADS=1 cargo test --workspace -q

echo "== cargo test (TRIAD_THREADS=4: same suite through the parallel runtime)"
TRIAD_THREADS=4 cargo test --workspace -q

echo "== stream soak (high-rate replay, kill-and-restore mid-run)"
cargo test --release -q --test stream_soak -- --ignored

echo "== triad bench --smoke (fixed-seed workloads at 1/2/4/8 threads)"
BENCH_DIR=$(mktemp -d)
TRACE_DIR=$(mktemp -d)
FAST_BENCH_DIR=$(mktemp -d)
FLEET_DIR_1=""
FLEET_DIR_4=""
trap 'rm -rf "$BENCH_DIR" "$TRACE_DIR" "$FAST_BENCH_DIR" "$FLEET_DIR_1" "$FLEET_DIR_4"' EXIT
cargo run -q --release -p triad-cli --bin triad -- bench --smoke --out-dir "$BENCH_DIR"
for stage in train detect stream discord; do
    f="$BENCH_DIR/BENCH_$stage.json"
    [ -s "$f" ] || { echo "ERROR: missing $f" >&2; exit 1; }
    for key in '"stage"' '"workload"' '"runs"' '"threads"' '"wall_ms"' \
               '"speedup_vs_serial"' '"checksum"' '"bit_identical": true'; do
        grep -q "$key" "$f" || {
            echo "ERROR: $f missing $key" >&2
            exit 1
        }
    done
done
# The discord stage measures both numeric modes in one run.
for key in '"fast_runs"' '"fast_speedup_vs_exact"'; do
    grep -q "$key" "$BENCH_DIR/BENCH_discord.json" || {
        echo "ERROR: BENCH_discord.json missing $key" >&2
        exit 1
    }
done
# The kernels micro-stage has its own schema: per-kernel naive-vs-fast rows.
f="$BENCH_DIR/BENCH_kernels.json"
[ -s "$f" ] || { echo "ERROR: missing $f" >&2; exit 1; }
for key in '"stage": "kernels"' '"workload"' '"runs"' '"kernel"' \
           '"naive_ms"' '"fast_ms"' '"speedup_vs_naive"' '"checksum"' \
           '"bit_identical": true'; do
    grep -q "$key" "$f" || {
        echo "ERROR: $f missing $key" >&2
        exit 1
    }
done
for kernel in sliding_dot matmul conv1d; do
    grep -q "\"kernel\": \"$kernel\"" "$f" || {
        echo "ERROR: $f missing kernel $kernel" >&2
        exit 1
    }
done
echo "   BENCH_{train,detect,stream,discord,kernels}.json schema-complete"

echo "== numeric-mode fast lane (tolerance-equivalence gate + smoke under --numeric-mode fast)"
# The equivalence harness proves fast-mode discords match exact mode on every
# archive anomaly kind; the smoke runs prove the flag is plumbed end to end —
# including that fast mode reproduces the *exact-mode* committed evalbed
# baseline, since voting consumes discord positions, never distances.
cargo test --release -q --test numeric_equivalence
cargo run -q --release -p triad-cli --bin triad -- bench --smoke \
    --numeric-mode fast --out-dir "$FAST_BENCH_DIR"
for stage in detect stream discord; do
    grep -q '"bit_identical": true' "$FAST_BENCH_DIR/BENCH_$stage.json" || {
        echo "ERROR: fast-mode BENCH_$stage.json not bit-identical across threads" >&2
        exit 1
    }
done
cargo run -q --release -p triad-cli --bin triad -- evalbed --smoke \
    --numeric-mode fast --out-dir "$FAST_BENCH_DIR/evalbed" \
    --check evalbed_out/EVALBED_smoke.json
echo "   fast lane green: equivalence tests, bench smoke, evalbed baseline check"

echo "== triad fleet --smoke (memory-budgeted soak; gates at TRIAD_THREADS=1 and 4)"
# The verb itself sweeps worker-thread counts {1,4} and gates on
# bit-identical outputs, residency <= budget, and >= 1 completed
# drift-triggered refit per run. Running it under two ambient TRIAD_THREADS
# values additionally proves the soak's own scheduling is
# environment-invariant: the gated checksums must agree across both files.
FLEET_DIR_1=$(mktemp -d)
FLEET_DIR_4=$(mktemp -d)
for t in 1 4; do
    eval "dir=\$FLEET_DIR_$t"
    TRIAD_THREADS=$t cargo run -q --release -p triad-cli --bin triad -- \
        fleet --smoke --out-dir "$dir"
    f="$dir/FLEET_soak.json"
    [ -s "$f" ] || { echo "ERROR: missing $f" >&2; exit 1; }
    for key in '"stage": "fleet-soak"' '"streams"' '"budget_bytes"' '"runs"' \
               '"checksum"' '"resident_bytes_max"' '"evictions"' \
               '"rehydrations"' '"drift_events"' '"refits_completed"' \
               '"bit_identical": true' '"residency_ok": true' \
               '"refits_ok": true'; do
        grep -q "$key" "$f" || {
            echo "ERROR: $f missing $key" >&2
            exit 1
        }
    done
done
SOAK_SUM_1=$(grep -o '"checksum": "[0-9a-f]*"' "$FLEET_DIR_1/FLEET_soak.json" | sort -u)
SOAK_SUM_4=$(grep -o '"checksum": "[0-9a-f]*"' "$FLEET_DIR_4/FLEET_soak.json" | sort -u)
[ -n "$SOAK_SUM_1" ] && [ "$SOAK_SUM_1" = "$SOAK_SUM_4" ] || {
    echo "ERROR: fleet soak checksums differ across TRIAD_THREADS envs:" >&2
    echo "  t=1: $SOAK_SUM_1" >&2
    echo "  t=4: $SOAK_SUM_4" >&2
    exit 1
}
echo "   FLEET_soak.json schema-complete, gates green, checksums env-invariant"

echo "== triad trace --smoke (fixed-seed traced workload; exports must validate)"
# The verb itself validates both exports (unique ids, parent links, nesting,
# per-thread monotone timestamps), asserts the five pipeline stages are
# attributed, and requires >= 95% root-span coverage. The shell checks below
# are a redundant schema gate over the written JSONL.
cargo run -q --release -p triad-cli --bin triad -- trace --smoke --out-dir "$TRACE_DIR"
TRACE_FILE="$TRACE_DIR/TRACE.jsonl"
[ -s "$TRACE_FILE" ] || { echo "ERROR: missing $TRACE_FILE" >&2; exit 1; }
[ -s "$TRACE_DIR/TRACE_chrome.json" ] || { echo "ERROR: missing TRACE_chrome.json" >&2; exit 1; }
for key in '"id"' '"parent"' '"tid"' '"name"' '"start_ns"' '"end_ns"'; do
    grep -q "$key" "$TRACE_FILE" || {
        echo "ERROR: $TRACE_FILE missing field $key" >&2
        exit 1
    }
done
for stage in featurize rank narrow discord vote; do
    grep -q "\"name\":\"$stage\"" "$TRACE_FILE" || {
        echo "ERROR: $TRACE_FILE missing pipeline stage $stage" >&2
        exit 1
    }
done
# Every non-zero parent id must itself appear as a span id (no orphans).
awk -F'"id":' '{ split($2, a, ","); print a[1] }' "$TRACE_FILE" | sort -u > "$TRACE_DIR/ids"
awk -F'"parent":' '{ split($2, a, ","); if (a[1] != "0") print a[1] }' "$TRACE_FILE" \
    | sort -u > "$TRACE_DIR/parents"
ORPHANS=$(comm -13 "$TRACE_DIR/ids" "$TRACE_DIR/parents")
[ -z "$ORPHANS" ] || {
    echo "ERROR: $TRACE_FILE has orphan parent ids: $ORPHANS" >&2
    exit 1
}
echo "   TRACE.jsonl schema-complete, five stages attributed, no orphan parents"

echo "== triad evalbed --smoke (regression gate vs the committed baseline)"
# The gated summary must be byte-stable: same ranking, same metric means
# (within tolerance), same dataset/method sets as the committed baseline —
# at both thread counts. A ranking flip or metric drop fails the build.
for t in 1 4; do
    EVALBED_DIR=$(mktemp -d)
    cargo run -q --release -p triad-cli --bin triad -- evalbed --smoke \
        --out-dir "$EVALBED_DIR" --threads "$t" \
        --check evalbed_out/EVALBED_smoke.json
    rm -rf "$EVALBED_DIR"
done
echo "   evalbed smoke gate PASS at threads 1 and 4"

echo "== triad lint --deny --baseline (no findings beyond the committed baseline)"
cargo run -q --release -p triad-cli --bin triad -- lint --deny --baseline lint_baseline.json

echo "== triad lint --fixture (every rule must fire on the seeded fixtures)"
cargo run -q --release -p triad-cli --bin triad -- lint --fixture

echo "== triad lint --deny on fixtures (must be NONZERO: the rules still bite)"
if cargo run -q --release -p triad-cli --bin triad -- lint --deny --root crates/lint/fixtures >/dev/null; then
    echo "ERROR: lint found nothing on the seeded fixtures" >&2
    exit 1
fi

echo "== stale-suppression gate (a suppression whose rule no longer fires must fail --deny)"
STALE_DIR=$(mktemp -d)
mkdir -p "$STALE_DIR/src"
cat > "$STALE_DIR/src/stale.rs" <<'EOF'
//@ path: crates/core/src/stale.rs
pub fn head(xs: &[u64]) -> u64 {
    // lint-allow(no-unwrap): slice is never empty at this call site
    xs.first().copied().unwrap_or(0)
}
EOF
if cargo run -q --release -p triad-cli --bin triad -- lint --deny --root "$STALE_DIR" >/dev/null; then
    echo "ERROR: stale lint-allow was not flagged" >&2
    rm -rf "$STALE_DIR"
    exit 1
fi
rm -rf "$STALE_DIR"
echo "   stale suppression correctly rejected"

echo "CI green."
