//! Blocking client for the line-delimited JSON protocol.
//!
//! One [`Client`] wraps one TCP connection; requests are serialized on it in
//! order (the protocol is strictly request→response per line). The CLI's
//! `triad client` subcommand and the e2e suite both drive the server through
//! this type.

use crate::json::{self, Value};
use crate::proto::MAX_LINE_BYTES;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn io_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connect to a server; `timeout` bounds each subsequent response wait.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io_err("no address resolved".into()))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request object, wait for its one response line.
    pub fn call(&mut self, request: &Value) -> io::Result<Value> {
        let line = request.to_string();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut buf = String::new();
        let n = (&mut self.reader)
            .take(MAX_LINE_BYTES as u64)
            .read_line(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        json::parse(buf.trim()).map_err(|e| io_err(format!("bad response JSON: {e}")))
    }

    /// `call` that also turns `ok:false` responses into errors carrying the
    /// server's message.
    pub fn call_ok(&mut self, request: &Value) -> io::Result<Value> {
        let resp = self.call(request)?;
        match resp.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => Err(io_err(
                resp.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown server error")
                    .to_string(),
            )),
            None => Err(io_err(format!("response without ok field: {resp}"))),
        }
    }

    fn verb(name: &str, fields: Vec<(&str, Value)>) -> Value {
        let mut all = vec![("verb", Value::from(name))];
        all.extend(fields);
        Value::obj(all)
    }

    pub fn health(&mut self) -> io::Result<Value> {
        self.call_ok(&Self::verb("health", vec![]))
    }

    pub fn list(&mut self) -> io::Result<Value> {
        self.call_ok(&Self::verb("list", vec![]))
    }

    pub fn stats(&mut self) -> io::Result<Value> {
        self.call_ok(&Self::verb("stats", vec![]))
    }

    pub fn stats_text(&mut self) -> io::Result<String> {
        let resp = self.call_ok(&Self::verb("stats", vec![("format", "text".into())]))?;
        Ok(resp
            .get("text")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string())
    }

    pub fn evict(&mut self, model: &str) -> io::Result<Value> {
        self.call_ok(&Self::verb("evict", vec![("model", model.into())]))
    }

    pub fn fit(
        &mut self,
        model: &str,
        train: &[f64],
        extra: Vec<(&str, Value)>,
    ) -> io::Result<Value> {
        let mut fields = vec![
            ("model", Value::from(model)),
            ("train", Value::num_arr(train)),
        ];
        fields.extend(extra);
        self.call_ok(&Self::verb("fit", fields))
    }

    pub fn detect(&mut self, model: &str, series: &[f64]) -> io::Result<Value> {
        self.call_ok(&Self::verb(
            "detect",
            vec![("model", model.into()), ("series", Value::num_arr(series))],
        ))
    }

    pub fn shutdown(&mut self) -> io::Result<Value> {
        self.call_ok(&Self::verb("shutdown", vec![]))
    }

    pub fn stream_open(&mut self, stream: &str, model: &str) -> io::Result<Value> {
        self.call_ok(&Self::verb(
            "stream.open",
            vec![("stream", stream.into()), ("model", model.into())],
        ))
    }

    pub fn stream_push(&mut self, stream: &str, points: &[f64]) -> io::Result<Value> {
        self.call_ok(&Self::verb(
            "stream.push",
            vec![
                ("stream", stream.into()),
                ("points", Value::num_arr(points)),
            ],
        ))
    }

    pub fn stream_poll(&mut self, stream: &str) -> io::Result<Value> {
        self.call_ok(&Self::verb("stream.poll", vec![("stream", stream.into())]))
    }

    pub fn stream_close(&mut self, stream: &str) -> io::Result<Value> {
        self.call_ok(&Self::verb("stream.close", vec![("stream", stream.into())]))
    }

    /// Checkpoint one stream, or every open stream when `stream` is `None`.
    pub fn stream_checkpoint(&mut self, stream: Option<&str>) -> io::Result<Value> {
        let fields = match stream {
            Some(s) => vec![("stream", Value::from(s))],
            None => vec![],
        };
        self.call_ok(&Self::verb("stream.checkpoint", fields))
    }

    pub fn stream_list(&mut self) -> io::Result<Value> {
        self.call_ok(&Self::verb("stream.list", vec![]))
    }
}
