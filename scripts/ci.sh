#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite.
# Run from anywhere; it cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test (TRIAD_THREADS=1: serial everywhere)"
TRIAD_THREADS=1 cargo test --workspace -q

echo "== cargo test (TRIAD_THREADS=4: same suite through the parallel runtime)"
TRIAD_THREADS=4 cargo test --workspace -q

echo "== stream soak (high-rate replay, kill-and-restore mid-run)"
cargo test --release -q --test stream_soak -- --ignored

echo "== triad bench --smoke (fixed-seed workloads at 1/2/4/8 threads)"
BENCH_DIR=$(mktemp -d)
trap 'rm -rf "$BENCH_DIR"' EXIT
cargo run -q --release -p triad-cli --bin triad -- bench --smoke --out-dir "$BENCH_DIR"
for stage in train detect stream discord; do
    f="$BENCH_DIR/BENCH_$stage.json"
    [ -s "$f" ] || { echo "ERROR: missing $f" >&2; exit 1; }
    for key in '"stage"' '"workload"' '"runs"' '"threads"' '"wall_ms"' \
               '"speedup_vs_serial"' '"checksum"' '"bit_identical": true'; do
        grep -q "$key" "$f" || {
            echo "ERROR: $f missing $key" >&2
            exit 1
        }
    done
done
echo "   BENCH_{train,detect,stream,discord}.json schema-complete"

echo "== triad-lint --deny (workspace must be clean)"
cargo run -q -p triad-lint -- --deny

echo "== triad-lint --fixture (every rule must fire on the seeded fixtures)"
cargo run -q -p triad-lint -- --fixture

echo "== triad-lint --deny on fixtures (must be NONZERO: the rules still bite)"
if cargo run -q -p triad-lint -- --deny --root crates/lint/fixtures >/dev/null; then
    echo "ERROR: lint found nothing on the seeded fixtures" >&2
    exit 1
fi

echo "CI green."
