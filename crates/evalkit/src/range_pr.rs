//! Range-based precision / recall (Tatbul et al., NeurIPS 2018).
//!
//! A third evaluation family beyond point-wise and affiliation metrics, added
//! as an extension of the paper's protocol: real and predicted anomaly
//! *ranges* are scored by existence, overlap size, and fragmentation.
//!
//! This implementation uses the flat positional bias and the standard
//! `γ(x) = 1/x` cardinality penalty:
//!
//! * `recall(R)  = α·∃overlap + (1−α)·γ(#preds ∩ R)·Σ |R∩P|/|R|`
//! * `precision(P) =            γ(#reals ∩ P)·Σ |P∩R|/|P|`
//!
//! with `α` the existence weight (default 0.5), averaged over ranges.

use crate::{harmonic, segments, Prf};
use std::ops::Range;

/// Existence-reward weight for recall (Tatbul's α).
pub const DEFAULT_ALPHA: f64 = 0.5;

fn overlap(a: &Range<usize>, b: &Range<usize>) -> usize {
    let lo = a.start.max(b.start);
    let hi = a.end.min(b.end);
    hi.saturating_sub(lo)
}

fn gamma(x: usize) -> f64 {
    if x <= 1 {
        1.0
    } else {
        1.0 / x as f64
    }
}

fn score_side(targets: &[Range<usize>], others: &[Range<usize>], alpha: f64) -> f64 {
    if targets.is_empty() {
        return 0.0;
    }
    let total: f64 = targets
        .iter()
        .map(|t| {
            let overlapping: Vec<usize> = others
                .iter()
                .map(|o| overlap(t, o))
                .filter(|&v| v > 0)
                .collect();
            let exists = if overlapping.is_empty() { 0.0 } else { 1.0 };
            let overlap_sum: f64 = overlapping.iter().map(|&v| v as f64 / t.len() as f64).sum();
            let overlap_reward = gamma(overlapping.len()) * overlap_sum.min(1.0);
            alpha * exists + (1.0 - alpha) * overlap_reward
        })
        .sum();
    total / targets.len() as f64
}

/// Range-based precision / recall / F1 with existence weight `alpha`.
pub fn range_prf_alpha(pred: &[bool], labels: &[bool], alpha: f64) -> Prf {
    assert_eq!(pred.len(), labels.len(), "prediction/label length mismatch");
    assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
    let real = segments(labels);
    let predicted = segments(pred);
    if real.is_empty() {
        return Prf::default();
    }
    // Precision has no existence term (α = 0 on the precision side).
    let precision = score_side(&predicted, &real, 0.0);
    let recall = score_side(&real, &predicted, alpha);
    Prf {
        precision,
        recall,
        f1: harmonic(precision, recall),
    }
}

/// Range-based metrics at the default α = 0.5.
pub fn range_prf(pred: &[bool], labels: &[bool]) -> Prf {
    range_prf_alpha(pred, labels, DEFAULT_ALPHA)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_range(n: usize, r: Range<usize>) -> Vec<bool> {
        let mut v = vec![false; n];
        for i in r {
            v[i] = true;
        }
        v
    }

    #[test]
    fn exact_match_is_perfect() {
        let labels = with_range(100, 40..60);
        let m = range_prf(&labels, &labels);
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert!((m.recall - 1.0).abs() < 1e-12);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn no_prediction_zero() {
        let labels = with_range(50, 10..20);
        let m = range_prf(&vec![false; 50], &labels);
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn partial_overlap_scores_between() {
        let labels = with_range(100, 40..60);
        let pred = with_range(100, 50..60); // covers half the event, all inside
        let m = range_prf(&pred, &labels);
        assert!((m.precision - 1.0).abs() < 1e-12); // prediction fully inside
                                                    // recall = 0.5·1 (existence) + 0.5·0.5 (overlap) = 0.75
        assert!((m.recall - 0.75).abs() < 1e-12, "recall {}", m.recall);
    }

    #[test]
    fn fragmentation_is_penalised() {
        let labels = with_range(100, 20..60);
        // Same 20 covered points, one contiguous vs four fragments.
        let solid = with_range(100, 30..50);
        let mut frag = vec![false; 100];
        for start in [22usize, 32, 42, 52] {
            for i in start..start + 5 {
                frag[i] = true;
            }
        }
        let ms = range_prf(&solid, &labels);
        let mf = range_prf(&frag, &labels);
        assert!(
            mf.recall < ms.recall,
            "fragmented {} !< solid {}",
            mf.recall,
            ms.recall
        );
    }

    #[test]
    fn existence_weight_controls_single_point_reward() {
        let labels = with_range(200, 100..150);
        let pred = with_range(200, 120..121); // one point inside
        let m0 = range_prf_alpha(&pred, &labels, 0.0);
        let m1 = range_prf_alpha(&pred, &labels, 1.0);
        assert!(m0.recall < 0.05); // pure overlap: tiny
        assert!((m1.recall - 1.0).abs() < 1e-12); // pure existence: full
    }

    #[test]
    fn multi_event_averages() {
        let mut labels = vec![false; 100];
        for i in 10..20 {
            labels[i] = true;
        }
        for i in 60..70 {
            labels[i] = true;
        }
        let pred = with_range(100, 10..20); // only first event found
        let m = range_prf_alpha(&pred, &labels, 0.5);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.precision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_real_events_default() {
        let m = range_prf(&with_range(10, 2..4), &vec![false; 10]);
        assert_eq!(m, Prf::default());
    }
}
