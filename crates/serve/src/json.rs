//! Minimal JSON value, parser and serializer for the wire protocol.
//!
//! The workspace has no serde (offline build); the protocol needs exactly
//! this: objects, arrays, strings, finite numbers, booleans, null. Object
//! key order is preserved on parse and emit, so a response serialized twice
//! is byte-identical — the registry evict/reload test relies on that.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Interpret an array of numbers as a series.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        let items = self.as_arr()?;
        let mut out = Vec::with_capacity(items.len());
        for it in items {
            out.push(it.as_f64()?);
        }
        Some(out)
    }

    /// Build an object value from key/value pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a numeric array from a float slice.
    pub fn num_arr(xs: &[f64]) -> Value {
        Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        write_into(self, &mut buf);
        f.write_str(&buf)
    }
}

fn write_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.is_finite() {
                // Rust's float Display is the shortest round-tripping form.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(it, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_into(val, out);
            }
            out.push('}');
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at byte {start}"));
        }
        Ok(Value::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates are replaced; the protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let Some(c) = rest.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            r#"{"verb":"detect","model":"m1","series":[1,2.5,-3e2],"flag":true,"x":null}"#,
            r#"[[],{},"a\"b\\c",0.125,-0]"#,
            r#""hé\nllo""#,
        ];
        for c in cases {
            let v = parse(c).expect(c);
            let s = v.to_string();
            assert_eq!(parse(&s).unwrap(), v, "{c}");
        }
    }

    #[test]
    fn emit_is_deterministic_and_ordered() {
        let v = Value::obj(vec![
            ("b", Value::Num(1.0)),
            ("a", Value::num_arr(&[0.1, 0.2])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[0.1,0.2]}"#);
        assert_eq!(v.to_string(), v.clone().to_string());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e308,
            -0.000123456789,
            123456789.123456789,
        ] {
            let s = Value::Num(x).to_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} vs {back} via {s}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "nan",
            "inf",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"s":"x","b":false,"a":[1,2],"z":null}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_f64_vec(), Some(vec![1.0, 2.0]));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("z"), Some(&Value::Null));
    }
}
