//! Evict/rehydrate transparency of the fleet tier on archive data.
//!
//! For every anomaly kind in the synthetic UCR archive: replaying the test
//! split through a [`FleetManager`] whose byte budget forces constant
//! eviction and rehydration must produce **bit-identical** statuses,
//! events, and offline-equivalent detections to an unevicted run — at one
//! and at four worker threads. A fleet killed after compacting its
//! checkpoint generations must adopt the survivors on restart and still
//! finish bit-exactly against the offline detector.

mod common;

use common::{dataset_of, quick_cfg, tmp_dir, KINDS};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use triad_core::{TriAd, TriadConfig, TriadDetection};
use triad_fleet::{DriftPolicy, FleetConfig, FleetManager};
use triad_stream::{ModelLoader, StreamStatus};

/// Model recipes keyed by name: the loader fits on the shard thread
/// (`FittedTriad` is `!Send`), so configs and training splits are what
/// cross into the fleet.
type Recipes = Arc<BTreeMap<String, (TriadConfig, Vec<f64>)>>;

fn loader_of(recipes: &Recipes) -> ModelLoader {
    let recipes = Arc::clone(recipes);
    Arc::new(move |name: &str| {
        let (cfg, train) = recipes
            .get(name)
            .ok_or_else(|| format!("unknown model {name:?}"))?;
        TriAd::new(cfg.clone())
            .fit(train)
            .map_err(|e| e.to_string())
    })
}

fn fleet_cfg(budget: usize, dir: std::path::PathBuf) -> FleetConfig {
    FleetConfig {
        shards: 2,
        budget_bytes: budget,
        store_dir: dir,
        drift: DriftPolicy {
            enabled: false,
            ..DriftPolicy::default()
        },
        ..FleetConfig::default()
    }
}

fn push_all(mgr: &FleetManager, stream: &str, points: &[f64]) {
    for chunk in points.chunks(64) {
        // Bounded retry: a momentarily full queue is backpressure, not loss.
        let mut queued = false;
        for _ in 0..600 {
            if mgr.push(stream, chunk).expect("push").queued {
                queued = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(queued, "queue for {stream} never drained");
    }
}

fn wait_for_seq(mgr: &FleetManager, stream: &str, want: u64) -> StreamStatus {
    for _ in 0..600 {
        let status = mgr.poll(stream).expect("poll");
        if status.seq >= want {
            return status;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stream {stream} never reached seq {want}");
}

/// One full fleet pass over every anomaly kind at a given budget and
/// thread count; returns per-kind (status, detection) plus the run's
/// eviction/rehydration counters.
#[allow(clippy::type_complexity)]
fn run_kinds(
    budget: usize,
    threads: usize,
    tag: &str,
    recipes: &Recipes,
    tests: &[(String, Vec<f64>)],
) -> (Vec<(StreamStatus, Option<TriadDetection>)>, u64, u64) {
    let dir = tmp_dir(tag);
    let mgr =
        FleetManager::new(fleet_cfg(budget, dir.clone()), loader_of(recipes), None).expect("fleet");
    let _ = threads; // thread count is pinned in each recipe's config
    for (i, (stream, _)) in tests.iter().enumerate() {
        mgr.open(stream, &format!("m{i}")).expect("open");
    }
    for (stream, test) in tests {
        push_all(&mgr, stream, test);
    }
    let mut out = Vec::new();
    for (stream, test) in tests {
        let status = wait_for_seq(&mgr, stream, test.len() as u64);
        let report = mgr.close(stream).expect("close");
        assert_eq!(report.finalize_error, None, "{stream}: finalize refused");
        out.push((status, report.detection));
    }
    let stats = mgr.fleet_stats();
    drop(mgr);
    let _ = std::fs::remove_dir_all(&dir);
    (out, stats.evictions, stats.rehydrations)
}

#[test]
fn evicted_fleet_matches_unevicted_and_offline_on_every_kind() {
    let mut book = BTreeMap::new();
    let mut tests: Vec<(String, Vec<f64>)> = Vec::new();
    let mut offline: Vec<TriadDetection> = Vec::new();
    for (i, kind) in KINDS.into_iter().enumerate() {
        let ds = dataset_of(kind);
        let cfg = quick_cfg(i as u64);
        let fitted = TriAd::new(cfg.clone()).fit(ds.train()).expect("fit");
        offline.push(fitted.detect(ds.test()));
        book.insert(format!("m{i}"), (cfg, ds.train().to_vec()));
        tests.push((format!("k{i}"), ds.test().to_vec()));
    }
    let recipes: Recipes = Arc::new(book);

    for threads in [1usize, 4] {
        // Pin the worker count inside every model config so the sweep does
        // not depend on the ambient TRIAD_THREADS of the test runner.
        let pinned: Recipes = Arc::new(
            recipes
                .iter()
                .map(|(name, (cfg, train))| {
                    let cfg = TriadConfig {
                        threads,
                        ..cfg.clone()
                    };
                    (name.clone(), (cfg, train.clone()))
                })
                .collect(),
        );
        let (tight, evictions, rehydrations) = run_kinds(
            48 * 1024,
            threads,
            &format!("fleet_eq_tight_t{threads}"),
            &pinned,
            &tests,
        );
        let (loose, loose_evictions, _) = run_kinds(
            0,
            threads,
            &format!("fleet_eq_loose_t{threads}"),
            &pinned,
            &tests,
        );

        assert!(
            evictions > 0 && rehydrations > 0,
            "48 KiB over {} streams must evict and rehydrate (t={threads})",
            tests.len()
        );
        assert_eq!(loose_evictions, 0, "unlimited budget must not evict");
        assert_eq!(tight, loose, "eviction visible in outputs at t={threads}");
        for ((kind, (_, det)), want) in KINDS.iter().zip(&tight).zip(&offline) {
            assert_eq!(
                det.as_ref(),
                Some(want),
                "{kind:?}: evicted fleet diverges from offline detect (t={threads})"
            );
        }
    }
}

#[test]
fn fleet_killed_after_compaction_resumes_bit_exactly() {
    let ds = dataset_of(ucrgen::anomaly::AnomalyKind::LevelShift);
    let cfg = quick_cfg(9);
    let fitted = TriAd::new(cfg.clone()).fit(ds.train()).expect("fit");
    let offline = fitted.detect(ds.test());
    let test = ds.test();
    let cut_a = test.len() / 3 + 1; // deliberately off-stride cuts
    let cut_b = 2 * test.len() / 3 + 1;

    let recipes: Recipes = Arc::new(BTreeMap::from([(
        "m0".to_string(),
        (cfg, ds.train().to_vec()),
    )]));
    let dir = tmp_dir("fleet_eq_restart");
    let fleet_cfg = fleet_cfg(0, dir.clone());

    {
        let mgr = FleetManager::new(fleet_cfg.clone(), loader_of(&recipes), None).expect("fleet");
        mgr.open("survivor", "m0").expect("open");
        push_all(&mgr, "survivor", &test[..cut_a]);
        wait_for_seq(&mgr, "survivor", cut_a as u64);
        assert_eq!(mgr.checkpoint(Some("survivor")).expect("ckpt"), 1);
        push_all(&mgr, "survivor", &test[cut_a..cut_b]);
        wait_for_seq(&mgr, "survivor", cut_b as u64);
        assert_eq!(mgr.checkpoint(Some("survivor")).expect("ckpt"), 1);
        // Writing generation 2 compacts generation 1 away: the kill below
        // restores from a *compacted* store, not a fresh one.
        let ckpts: Vec<_> = std::fs::read_dir(&dir)
            .expect("store dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        assert_eq!(
            ckpts.len(),
            1,
            "compaction left extra generations {ckpts:?}"
        );
        assert!(
            ckpts[0].contains(".g00000002."),
            "unexpected name {ckpts:?}"
        );
        // Hard kill: drop without closing — everything past the checkpoint
        // is lost by contract; the adopted stream resumes from cut_b.
    }

    let mgr = FleetManager::new(fleet_cfg, loader_of(&recipes), None).expect("fleet restart");
    assert_eq!(mgr.streams(), vec!["survivor".to_string()]);
    let resumed = mgr.poll("survivor").expect("poll");
    assert_eq!(resumed.seq, cut_b as u64, "adopted seq is the saved cut");
    push_all(&mgr, "survivor", &test[cut_b..]);
    wait_for_seq(&mgr, "survivor", test.len() as u64);
    let report = mgr.close("survivor").expect("close");
    assert_eq!(
        report.detection.as_ref(),
        Some(&offline),
        "restored fleet diverges from offline detect"
    );
    drop(mgr);
    let _ = std::fs::remove_dir_all(&dir);
}
