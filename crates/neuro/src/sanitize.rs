//! Debug-assertions runtime sanitizer for the autodiff substrate.
//!
//! Three classes of bugs are cheap to catch at runtime and miserable to
//! debug after the fact:
//!
//! * **numeric poisoning** — a NaN/Inf produced by one op silently spreads
//!   through every downstream tensor and surfaces hundreds of steps later
//!   as a useless loss curve. The sanitizer checks every tensor at the
//!   single op boundary ([`Graph::push`]) and every gradient at the
//!   `backward` flush, so the failure names the first bad node.
//! * **tape leaks** — `Graph` is a per-forward-pass tape; holding tapes
//!   alive across batches is a memory leak. A live-tape counter trips when
//!   more than [`max_live_tapes`] coexist **on one thread** (tapes are
//!   thread-confined, and per-thread counting keeps concurrent serve
//!   workers or parallel tests from tripping each other).
//! * **tape reuse** — running `backward` twice on one tape double-flushes
//!   gradients into the bound params.
//!
//! Enablement (resolved once, overridable for tests via [`set_enabled`]):
//!
//! | build              | default | override                 |
//! |--------------------|---------|--------------------------|
//! | `debug_assertions` | **on**  | `TRIAD_SANITIZE=0` → off |
//! | release            | off     | `TRIAD_SANITIZE=1` → on  |
//!
//! `TRIAD_SANITIZE_MAX_TAPES` (default 8) bounds the live-tape count.
//! Checks are panics by design: a sanitizer's job is to stop the process at
//! the first sign of corruption, exactly like `debug_assert!`.
//!
//! [`Graph::push`]: crate::graph::Graph
//! [`max_live_tapes`]: max_live_tapes

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// 0 = unresolved, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
/// 0 = unresolved; otherwise the resolved cap + 1 (so a cap of 0 is valid).
static MAX_TAPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Tapes alive on this thread. Thread-local because a `Graph` never
    /// crosses threads; a global count would let unrelated worker threads
    /// trip each other's leak check.
    static LIVE_TAPES: Cell<usize> = const { Cell::new(0) };
}

fn resolve_enabled() -> bool {
    let default_on = cfg!(debug_assertions);
    match std::env::var("TRIAD_SANITIZE") {
        Ok(v) if v == "0" => false,
        Ok(v) if v == "1" => true,
        _ => default_on,
    }
}

/// Is the sanitizer active? First call resolves `TRIAD_SANITIZE`; later
/// calls are a single atomic load.
pub fn enabled() -> bool {
    // relaxed-ok: STATE is a write-once latch; every resolved value is
    // identical, so racing resolvers store the same byte.
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let on = resolve_enabled();
            // relaxed-ok: same latch as above.
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        s => s == 2,
    }
}

/// Force the sanitizer on/off, overriding the environment (test hook).
pub fn set_enabled(on: bool) {
    // relaxed-ok: single-byte latch, no data published under it.
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// How many tapes may be alive at once before the leak check trips.
pub fn max_live_tapes() -> usize {
    // relaxed-ok: write-once latch; racing resolvers store the same value.
    match MAX_TAPES.load(Ordering::Relaxed) {
        0 => {
            let cap = std::env::var("TRIAD_SANITIZE_MAX_TAPES")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(8);
            // relaxed-ok: same latch as above.
            MAX_TAPES.store(cap + 1, Ordering::Relaxed);
            cap
        }
        stored => stored - 1,
    }
}

/// `Graph` tapes currently alive on this thread.
pub fn live_tapes() -> usize {
    LIVE_TAPES.with(|c| c.get())
}

/// Called from `Graph`'s constructor. Trips the leak check when enabled.
/// The check runs *before* the increment so a tripped constructor (which
/// never produces a `Graph`, hence never runs `Drop`) leaves the counter
/// consistent.
pub(crate) fn note_tape_created() {
    let live = LIVE_TAPES.with(|c| c.get()) + 1;
    if enabled() && live > max_live_tapes() {
        // lint-allow(no-panic): sanitizer trip — aborting at the leak site is
        // the feature, exactly like debug_assert!
        panic!(
            "neuro sanitizer: {live} live autodiff tapes (cap {}); tapes are \
             per-forward-pass and should be dropped after backward() — \
             raise TRIAD_SANITIZE_MAX_TAPES if this is intentional",
            max_live_tapes()
        );
    }
    LIVE_TAPES.with(|c| c.set(live));
}

/// Called from `Graph::drop`.
pub(crate) fn note_tape_dropped() {
    LIVE_TAPES.with(|c| c.set(c.get().saturating_sub(1)));
}

/// Panic if `data` contains a non-finite value. `what` names the boundary
/// (op push, gradient flush) and `node` the offending tape node.
pub(crate) fn check_finite(what: &str, node: usize, data: &[f32]) {
    if !enabled() {
        return;
    }
    if let Some(i) = data.iter().position(|v| !v.is_finite()) {
        // lint-allow(no-panic): sanitizer trip — stopping at the first
        // non-finite value is the feature, exactly like debug_assert!
        panic!(
            "neuro sanitizer: non-finite value {} at {what} (tape node {node}, element {i}) — \
             set TRIAD_SANITIZE=0 to disable",
            data[i]
        );
    }
}

/// Panic on `backward` reuse of a one-shot tape.
pub(crate) fn check_backward_once(already_ran: bool) {
    if enabled() && already_ran {
        // lint-allow(no-panic): sanitizer trip; double backward silently
        // double-accumulates gradients, which is strictly worse than a panic
        panic!(
            "neuro sanitizer: backward() called twice on one tape; tapes are \
             one-shot — build a fresh Graph per forward pass"
        );
    }
}

/// Serialises tests that mutate the global sanitizer state (used by the
/// graph sanitizer tests too).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enablement_latch_and_override() {
        let _g = test_guard();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn max_tapes_has_a_default() {
        assert!(max_live_tapes() >= 1);
    }

    #[test]
    fn check_finite_passes_finite_data() {
        let _g = test_guard();
        set_enabled(true);
        check_finite("test", 0, &[0.0, -1.5, 3.0e30]);
    }
}
