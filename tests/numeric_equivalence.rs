//! The tolerance-equivalence matrix for the numeric modes (DESIGN.md
//! "numeric modes").
//!
//! `--numeric-mode fast` swaps the detect pipeline's discord stage from the
//! exact adaptive-`r` MERLIN ladder onto the MASS-backed profile kernels
//! (`discord::fast`). The contract this file gates:
//!
//! * **Same discords.** For every archive anomaly kind, at 1 and 4 threads,
//!   fast mode reports the identical discord `(index, length)` sequence as
//!   exact mode, with distances within 1e-6 relative. Since voting consumes
//!   only discord positions (never distances), everything downstream —
//!   votes, prediction, threshold, fallback flag — must be *bit*-equal, as
//!   must the mode-independent stages upstream (rankings, candidates,
//!   selected window, search region).
//! * **Fast is deterministic too.** Within fast mode, detection is
//!   bit-identical across thread counts, exactly like exact mode
//!   (`parallel_determinism.rs`): the only cross-worker merge in the fast
//!   kernel is an element-wise `f64::max`.
//! * **Same length ladder.** Both modes draw candidate lengths from
//!   `discord::merlin::swept_lengths`, so they explore the identical length
//!   sequence — the regression probe that keeps the two sweeps from
//!   drifting apart.

mod common;

use common::{dataset_of, quick_cfg, KINDS};
use triad_core::{NumericMode, TriAd, TriadDetection};

/// Fast-vs-exact discord distance tolerance, per the DESIGN.md contract:
/// 1e-6 relative plus a 1e-5 absolute floor for near-zero distances, where
/// the final square root amplifies FFT round-off ε into √ε.
fn close(fast: f64, exact: f64) -> bool {
    (fast - exact).abs() <= 1e-5 + 1e-6 * exact.abs()
}

fn assert_equivalent(label: &str, exact: &TriadDetection, fast: &TriadDetection) {
    // Discords: identical (index, length) sequence, distances within 1e-6.
    assert_eq!(
        exact.discords.len(),
        fast.discords.len(),
        "{label}: discord counts differ"
    );
    for (e, f) in exact.discords.iter().zip(&fast.discords) {
        assert_eq!(
            (e.index, e.length),
            (f.index, f.length),
            "{label}: discord position differs"
        );
        assert!(
            close(f.distance, e.distance),
            "{label}: length {} distance {} vs exact {}",
            e.length,
            f.distance,
            e.distance
        );
    }
    // Stages 1–2 never touch the discord kernels, and voting consumes only
    // discord positions — so everything except the distances is bit-equal.
    assert_eq!(exact.rankings, fast.rankings, "{label}: rankings differ");
    assert_eq!(
        exact.candidates, fast.candidates,
        "{label}: candidates differ"
    );
    assert_eq!(
        exact.selected_window, fast.selected_window,
        "{label}: selected window differs"
    );
    assert_eq!(
        exact.search_region, fast.search_region,
        "{label}: search region differs"
    );
    assert_eq!(exact.votes, fast.votes, "{label}: votes differ");
    assert_eq!(
        exact.prediction, fast.prediction,
        "{label}: prediction differs"
    );
    assert_eq!(
        exact.threshold, fast.threshold,
        "{label}: threshold differs"
    );
    assert_eq!(
        exact.used_fallback, fast.used_fallback,
        "{label}: fallback flag differs"
    );
}

#[test]
fn fast_mode_matches_exact_for_every_kind_and_thread_count() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let ds = dataset_of(kind);
        for threads in [1usize, 4] {
            let mut cfg = quick_cfg(i as u64);
            cfg.threads = threads;
            let mut fitted = TriAd::new(cfg).fit(ds.train()).expect("fit");
            let exact = fitted.detect(ds.test());
            fitted.set_numeric_mode(NumericMode::Fast);
            let fast = fitted.detect(ds.test());
            assert_equivalent(&format!("{kind:?}/{threads}t"), &exact, &fast);
        }
    }
}

#[test]
fn fast_mode_is_bit_identical_across_thread_counts_for_every_kind() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let ds = dataset_of(kind);
        let mut fitted = TriAd::new(quick_cfg(i as u64))
            .fit(ds.train())
            .expect("fit");
        fitted.set_numeric_mode(NumericMode::Fast);
        let mut reference: Option<TriadDetection> = None;
        for t in [1usize, 2, 4, 8] {
            fitted.set_threads(t);
            let det = fitted.detect(ds.test());
            match &reference {
                None => reference = Some(det),
                Some(r) => assert_eq!(
                    &det, r,
                    "{kind:?}: fast-mode detection differs at {t} threads"
                ),
            }
        }
    }
}

#[test]
fn fast_and_exact_sweep_the_identical_length_ladder() {
    use discord::fast::merlin_fast;
    use discord::merlin::{merlin, swept_lengths, MerlinConfig};

    let ds = common::easy_dataset();
    let test = ds.test();
    let sweep = MerlinConfig::new(8, 64).with_step(4);
    let ladder = swept_lengths(test.len(), sweep);
    assert!(!ladder.is_empty(), "degenerate fixture");

    let exact: Vec<usize> = merlin(test, sweep).iter().map(|d| d.length).collect();
    let fast: Vec<usize> = merlin_fast(test, sweep).iter().map(|d| d.length).collect();
    assert_eq!(exact, fast, "modes visited different length sequences");

    // Both sequences are drawn in order from the shared ladder: each reported
    // length appears at a strictly later ladder position than the previous.
    let mut pos = 0usize;
    for len in &exact {
        let at = ladder[pos..]
            .iter()
            .position(|l| l == len)
            .unwrap_or_else(|| panic!("length {len} out of ladder order"));
        pos += at + 1;
    }
}
