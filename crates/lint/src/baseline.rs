//! Finding fingerprints and the `--baseline` grandfather file.
//!
//! A baseline lets CI gate on *new* findings only: `--write-baseline`
//! records every current finding's fingerprint; `--baseline FILE` then
//! filters those fingerprints out of later runs, so pre-existing debt does
//! not block the gate while anything fresh does. (This repo's own baseline
//! is empty — the workspace was remediated to clean — but the mechanism is
//! what keeps the gate honest as rules grow.)
//!
//! The fingerprint must survive unrelated edits, so it deliberately does
//! not include the line number. It is FNV-1a 64 over:
//!
//! ```text
//! rule \0 path \0 trim(prev line) \n trim(line) \n trim(next line) [\0 occurrence]
//! ```
//!
//! — whitespace-trimmed context makes it indentation- and line-shift
//! tolerant; the occurrence index (count of identical contexts earlier in
//! the same file, in report order) keeps repeated identical findings
//! distinct. The file is plain JSON, hand-rolled both ways because the
//! workspace builds offline without serde.

use crate::engine::FileReport;
use crate::rules::Diagnostic;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fill `fingerprint` on every diagnostic of one file. `diags` must already
/// be in their final (sorted) order so occurrence indices are stable.
pub fn assign_fingerprints(diags: &mut [Diagnostic], src: &[u8]) {
    let text = String::from_utf8_lossy(src);
    let lines: Vec<&str> = text.lines().collect();
    let ctx = |line: u32| -> &str {
        let i = line as usize;
        if i >= 1 && i <= lines.len() {
            lines[i - 1].trim()
        } else {
            ""
        }
    };
    let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
    for d in diags.iter_mut() {
        let mut h = fnv1a(FNV_OFFSET, d.rule.as_bytes());
        h = fnv1a(h, b"\0");
        h = fnv1a(h, d.path.as_bytes());
        h = fnv1a(h, b"\0");
        h = fnv1a(h, ctx(d.line.saturating_sub(1)).as_bytes());
        h = fnv1a(h, b"\n");
        h = fnv1a(h, ctx(d.line).as_bytes());
        h = fnv1a(h, b"\n");
        h = fnv1a(h, ctx(d.line + 1).as_bytes());
        let occ = seen.entry(h).or_insert(0);
        if *occ > 0 {
            h = fnv1a(h, b"\0");
            h = fnv1a(h, occ.to_string().as_bytes());
        }
        *occ += 1;
        d.fingerprint = h;
    }
}

/// Serialize the current findings as a baseline file.
pub fn render(reports: &[FileReport]) -> String {
    let mut out =
        String::from("{\n  \"version\": 1,\n  \"tool\": \"triad-lint\",\n  \"findings\": [");
    let mut first = true;
    for r in reports {
        for d in &r.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\":\"{}\",\"path\":\"{}\",\"hash\":\"{:016x}\"}}",
                d.rule, d.path, d.fingerprint
            ));
        }
    }
    out.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
    out
}

/// Parse a baseline file into its fingerprint set. Tolerant scanner: every
/// `"hash":"<16 hex>"` pair counts, nothing else is interpreted — a
/// hand-edited file with reordered keys still loads.
pub fn parse(text: &str) -> Result<BTreeSet<u64>, String> {
    if !text.contains("\"version\"") {
        return Err("not a triad-lint baseline (missing \"version\")".to_string());
    }
    let mut set = BTreeSet::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"hash\"") {
        rest = &rest[at + "\"hash\"".len()..];
        let Some(q1) = rest.find('"') else { break };
        let tail = &rest[q1 + 1..];
        let Some(q2) = tail.find('"') else { break };
        let hex = &tail[..q2];
        let v = u64::from_str_radix(hex, 16)
            .map_err(|_| format!("bad fingerprint `{hex}` in baseline"))?;
        set.insert(v);
        rest = &tail[q2..];
    }
    Ok(set)
}

/// Drop every diagnostic whose fingerprint is grandfathered.
pub fn apply(reports: &mut [FileReport], grandfathered: &BTreeSet<u64>) -> usize {
    let mut dropped = 0usize;
    for r in reports.iter_mut() {
        let before = r.diagnostics.len();
        r.diagnostics
            .retain(|d| !grandfathered.contains(&d.fingerprint));
        dropped += before - r.diagnostics.len();
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: "crates/x/src/f.rs".into(),
            line,
            message: "m".into(),
            fingerprint: 0,
        }
    }

    #[test]
    fn fingerprints_survive_line_shifts() {
        let a = b"fn f() {\n    x.unwrap();\n}\n";
        let b = b"// a new leading comment\n\nfn f() {\n    x.unwrap();\n}\n";
        let mut da = [mk("no-unwrap", 2)];
        let mut db = [mk("no-unwrap", 4)];
        assign_fingerprints(&mut da, a);
        assign_fingerprints(&mut db, b);
        assert_eq!(da[0].fingerprint, db[0].fingerprint);
        assert_ne!(da[0].fingerprint, 0);
    }

    #[test]
    fn identical_contexts_get_distinct_occurrences() {
        let src = b"a.unwrap();\na.unwrap();\na.unwrap();\n";
        // Lines 1 and 3 have different neighbours; craft three identical
        // contexts instead via repeated middle lines.
        let src3 = b"x();\na.unwrap();\nx();\na.unwrap();\nx();\na.unwrap();\nx();\n";
        let mut d = [mk("no-unwrap", 2), mk("no-unwrap", 4), mk("no-unwrap", 6)];
        assign_fingerprints(&mut d, src3);
        assert_ne!(d[0].fingerprint, d[1].fingerprint);
        assert_ne!(d[1].fingerprint, d[2].fingerprint);
        let _ = src;
    }

    #[test]
    fn render_parse_round_trip() {
        let mut d = vec![mk("no-unwrap", 2), mk("float-cmp", 5)];
        assign_fingerprints(
            &mut d,
            b"a\nb.unwrap();\nc\nd\ne.partial_cmp(f).unwrap();\ng\n",
        );
        let reports = vec![FileReport {
            rel_path: "crates/x/src/f.rs".into(),
            diagnostics: d.clone(),
            expected: Vec::new(),
        }];
        let text = render(&reports);
        let set = parse(&text).expect("parses");
        assert_eq!(set.len(), 2);
        assert!(set.contains(&d[0].fingerprint));
        assert!(set.contains(&d[1].fingerprint));
    }

    #[test]
    fn apply_filters_grandfathered_findings() {
        let mut d = vec![mk("no-unwrap", 1), mk("no-panic", 2)];
        assign_fingerprints(&mut d, b"a.unwrap();\npanic!();\n");
        let keep = d[1].fingerprint;
        let mut reports = vec![FileReport {
            rel_path: "crates/x/src/f.rs".into(),
            diagnostics: d.clone(),
            expected: Vec::new(),
        }];
        let mut grandfathered = BTreeSet::new();
        grandfathered.insert(d[0].fingerprint);
        let dropped = apply(&mut reports, &grandfathered);
        assert_eq!(dropped, 1);
        assert_eq!(reports[0].diagnostics.len(), 1);
        assert_eq!(reports[0].diagnostics[0].fingerprint, keep);
    }

    #[test]
    fn parse_rejects_non_baselines() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"version\":1,\"findings\":[{\"hash\":\"zz\"}]}").is_err());
        let empty = parse("{\"version\":1,\"tool\":\"triad-lint\",\"findings\":[]}").expect("ok");
        assert!(empty.is_empty());
    }
}
