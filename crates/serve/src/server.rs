//! The TCP serving layer: accept loop, thread-pool dispatcher, verb
//! handlers, graceful shutdown.
//!
//! Connections are fanned out over a fixed pool of worker threads through a
//! bounded `crossbeam` channel (the accept loop blocks when every worker is
//! busy and the backlog is full — natural backpressure). Workers speak the
//! line-delimited JSON protocol from [`crate::proto`]; `detect` requests are
//! handed to the [`crate::batch::Batcher`] and executed by dedicated
//! executor threads, everything else is answered in place.
//!
//! Shutdown (the `shutdown` verb or [`ServerHandle::shutdown`]) drains: the
//! accept loop stops taking connections, workers finish the requests already
//! on their sockets, the batcher flushes its queues, and only then do the
//! threads exit.

use crate::batch::{BatchPolicy, Batcher};
use crate::json::{self, Value};
use crate::metrics::{histogram_json, inc, render_histogram, Metrics};
use crate::proto::{
    detect_response, detection_fields, err_response, ok_response, stream_status_fields,
    MAX_LINE_BYTES,
};
use crate::registry::ModelRegistry;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use triad_core::{persist, NumericMode, TriAd, TriadConfig};
use triad_fleet::{FleetConfig, FleetManager, FleetStats, RefitRequest, Refitter};
use triad_stream::{
    CloseReport, ManagerConfig, PushTicket, ShardMetrics, StreamError, StreamManager, StreamStatus,
};

/// Server tunables. `Default` suits tests and local runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Directory of `*.triad` model files.
    pub models_dir: PathBuf,
    /// Connection worker threads.
    pub workers: usize,
    /// Worker threads *inside* each detection (the deterministic parallel
    /// runtime; 0 = auto). Orthogonal to `workers`/`executors`: those decide
    /// how many requests run at once, this decides how many cores one
    /// request uses. Results are bit-identical at any value.
    pub threads: usize,
    /// Numeric kernel mode for detection (`exact` keeps the bit-exact
    /// reference kernels; `fast` switches to the FFT-backed MASS discord
    /// kernels — tolerance-equivalent, bit-identical within the mode).
    pub numeric_mode: NumericMode,
    /// Batch executor threads.
    pub executors: usize,
    /// Detect batch closes at this many requests…
    pub max_batch: usize,
    /// …or this long after its oldest request, whichever first.
    pub max_delay_ms: u64,
    /// Queued detect requests older than this are answered with an error.
    pub request_timeout_ms: u64,
    /// Idle connections are closed after this long without a request.
    pub idle_timeout_ms: u64,
    /// Max models kept deserialized (LRU beyond that).
    pub cache_capacity: usize,
    /// Worker shards for the online streaming layer.
    pub stream_shards: usize,
    /// Bounded ingest-queue depth per stream shard (backpressure valve).
    pub stream_queue: usize,
    /// Where stream checkpoints live; `None` disables checkpointing (a
    /// restarted server then starts with no open streams).
    pub stream_checkpoint_dir: Option<PathBuf>,
    /// `Some(bytes)` switches the streaming layer to the memory-budgeted
    /// fleet tier: resident engines are capped at this many bytes globally
    /// (0 = fleet tier with no cap), idle streams are evicted to
    /// generation-numbered checkpoints and rehydrated bit-identically on
    /// the next touch, and drift-triggered refits run in the background
    /// through the model registry. `None` keeps the flat tier.
    pub fleet_budget_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            models_dir: PathBuf::from("models"),
            workers: 4,
            threads: 0,
            numeric_mode: NumericMode::default(),
            executors: 2,
            max_batch: 16,
            max_delay_ms: 20,
            request_timeout_ms: 30_000,
            idle_timeout_ms: 10_000,
            cache_capacity: 8,
            stream_shards: 2,
            stream_queue: 1024,
            stream_checkpoint_dir: None,
            fleet_budget_bytes: None,
        }
    }
}

/// The streaming layer behind the `stream.*` verbs: the flat
/// [`StreamManager`] (every open stream stays resident) or the
/// memory-budgeted [`FleetManager`]. Same verb surface either way — the
/// fleet tier's evictions and rehydrations are invisible in responses.
enum StreamTier {
    Flat(StreamManager),
    Fleet(FleetManager),
}

impl StreamTier {
    fn open(&self, stream: &str, model: &str) -> Result<(), StreamError> {
        match self {
            StreamTier::Flat(m) => m.open(stream, model),
            StreamTier::Fleet(m) => m.open(stream, model),
        }
    }

    fn push(&self, stream: &str, points: &[f64]) -> Result<PushTicket, StreamError> {
        match self {
            StreamTier::Flat(m) => m.push(stream, points),
            StreamTier::Fleet(m) => m.push(stream, points),
        }
    }

    fn poll(&self, stream: &str) -> Result<StreamStatus, StreamError> {
        match self {
            StreamTier::Flat(m) => m.poll(stream),
            StreamTier::Fleet(m) => m.poll(stream),
        }
    }

    fn close(&self, stream: &str) -> Result<CloseReport, StreamError> {
        match self {
            StreamTier::Flat(m) => m.close(stream),
            StreamTier::Fleet(m) => m.close(stream),
        }
    }

    fn checkpoint(&self, stream: Option<&str>) -> Result<usize, StreamError> {
        match self {
            StreamTier::Flat(m) => m.checkpoint(stream),
            StreamTier::Fleet(m) => m.checkpoint(stream),
        }
    }

    fn streams(&self) -> Vec<String> {
        match self {
            StreamTier::Flat(m) => m.streams(),
            StreamTier::Fleet(m) => m.streams(),
        }
    }

    fn shard_of(&self, stream: &str) -> usize {
        match self {
            StreamTier::Flat(m) => m.shard_of(stream),
            StreamTier::Fleet(m) => m.shard_of(stream),
        }
    }

    fn shard_count(&self) -> usize {
        match self {
            StreamTier::Flat(m) => m.shard_count(),
            StreamTier::Fleet(m) => m.shard_count(),
        }
    }

    fn shard_metrics(&self) -> &[Arc<ShardMetrics>] {
        match self {
            StreamTier::Flat(m) => m.shard_metrics(),
            StreamTier::Fleet(m) => m.shard_metrics(),
        }
    }

    fn fleet_stats(&self) -> Option<FleetStats> {
        match self {
            StreamTier::Flat(_) => None,
            StreamTier::Fleet(m) => Some(m.fleet_stats()),
        }
    }
}

/// State shared by the accept loop, workers, and executors.
struct Shared {
    registry: Arc<RwLock<ModelRegistry>>,
    metrics: Arc<Metrics>,
    batcher: Batcher,
    /// Online streaming layer; stream engines live on its shard threads,
    /// loading models from the same `models_dir` as the registry.
    streams: StreamTier,
    shutdown: AtomicBool,
    addr: SocketAddr,
    request_timeout: Duration,
    idle_timeout: Duration,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the shutdown flag and poke the accept loop awake with a dummy
    /// connection so it notices.
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// A running server; join it with [`ServerHandle::wait`] or stop it with
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// Ask the server to stop accepting and start draining. Non-blocking.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until the server has fully drained and every thread exited.
    pub fn wait(mut self) {
        // Order matters: the accept thread owns the connection sender, so
        // joining it closes the channel; workers then drain the remaining
        // queued connections and exit; only after no producer is left may
        // the batcher drain and release its executors.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.batcher.drain();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }

    /// `request_shutdown` + `wait`.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

/// Bind, spawn the thread pools, and return a handle.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let mut registry =
        ModelRegistry::open(&cfg.models_dir, cfg.cache_capacity, Arc::clone(&metrics))?;
    registry.set_threads(cfg.threads);
    registry.set_numeric_mode(cfg.numeric_mode);
    let policy = BatchPolicy {
        max_batch: cfg.max_batch.max(1),
        max_delay: Duration::from_millis(cfg.max_delay_ms),
        request_timeout: Duration::from_millis(cfg.request_timeout_ms.max(1)),
    };
    // Stream shards load models straight from the models directory on their
    // own threads (`FittedTriad` is not `Send`, so the registry's cached
    // instances cannot cross into a shard). `fit` saves to disk before it
    // replies, so a fit→stream.open sequence always sees the file.
    let models_dir = cfg.models_dir.clone();
    let detect_threads = cfg.threads;
    let detect_numeric_mode = cfg.numeric_mode;
    let loader: triad_stream::ModelLoader = Arc::new(move |name: &str| {
        let path = models_dir.join(format!("{name}.triad"));
        persist::load_file(&path)
            .map(|mut m| {
                m.set_threads(detect_threads);
                m.set_numeric_mode(detect_numeric_mode);
                m
            })
            .map_err(|e| format!("load model {name:?}: {e}"))
    });
    let registry = Arc::new(RwLock::new(registry));
    let streams = match cfg.fleet_budget_bytes {
        None => StreamTier::Flat(StreamManager::new(
            ManagerConfig {
                shards: cfg.stream_shards.max(1),
                queue_capacity: cfg.stream_queue.max(1),
                checkpoint_dir: cfg.stream_checkpoint_dir.clone(),
                ..Default::default()
            },
            loader,
        )),
        Some(budget) => {
            // Drift-triggered refits fit on the refit thread and persist
            // through the registry, so the refreshed model is immediately
            // visible to `list`/`detect` and to the shard loader above.
            let refit_registry = Arc::clone(&registry);
            let refitter: Refitter = Arc::new(move |req: &RefitRequest| {
                let fitted = TriAd::new(req.config.clone())
                    .fit(&req.train)
                    .map_err(|e| format!("refit {:?}: {e}", req.new_model))?;
                refit_registry
                    .write()
                    .map_err(|_| "registry poisoned".to_string())?
                    .save_fitted(&req.new_model, fitted)
            });
            let store_dir = cfg
                .stream_checkpoint_dir
                .clone()
                .unwrap_or_else(|| cfg.models_dir.join("_fleet"));
            let fleet = FleetManager::new(
                FleetConfig {
                    shards: cfg.stream_shards.max(1),
                    queue_capacity: cfg.stream_queue.max(1),
                    store_dir,
                    budget_bytes: budget as usize,
                    ..FleetConfig::default()
                },
                loader,
                Some(refitter),
            )
            .map_err(io::Error::other)?;
            StreamTier::Fleet(fleet)
        }
    };
    let shared = Arc::new(Shared {
        registry,
        metrics: Arc::clone(&metrics),
        batcher: Batcher::new(policy),
        streams,
        shutdown: AtomicBool::new(false),
        addr,
        request_timeout: policy.request_timeout,
        idle_timeout: Duration::from_millis(cfg.idle_timeout_ms.max(1)),
    });

    let (conn_tx, conn_rx) = crossbeam::channel::bounded::<TcpStream>(1024);

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("triad-accept".into())
            .spawn(move || {
                // conn_tx lives (only) here: the loop breaking closes the
                // channel and lets the workers run dry.
                for stream in listener.incoming() {
                    if shared.shutting_down() {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            // Marks the handoff of an accepted socket to the
                            // worker pool in the trace timeline.
                            let _accept = obs::span("accept");
                            if conn_tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            if shared.shutting_down() {
                                break;
                            }
                        }
                    }
                }
            })?
    };

    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let shared = Arc::clone(&shared);
        let rx = conn_rx.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("triad-worker-{i}"))
                .spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        handle_conn(&shared, stream);
                    }
                })?,
        );
    }
    drop(conn_rx);

    let mut executors = Vec::with_capacity(cfg.executors.max(1));
    for i in 0..cfg.executors.max(1) {
        let shared = Arc::clone(&shared);
        executors.push(
            std::thread::Builder::new()
                .name(format!("triad-exec-{i}"))
                .spawn(move || {
                    shared
                        .batcher
                        .run_executor(&shared.registry, &shared.metrics)
                })?,
        );
    }

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers,
        executors,
    })
}

/// `read_line` with a hard byte cap so one client can't balloon memory.
fn read_request_line<R: BufRead>(r: &mut R, buf: &mut String) -> io::Result<usize> {
    let mut limited = r.take(MAX_LINE_BYTES as u64);
    let n = limited.read_line(buf)?;
    if n >= MAX_LINE_BYTES && !buf.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line too long",
        ));
    }
    Ok(n)
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    inc(&shared.metrics.connections_total);
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_request_line(&mut reader, &mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break, // idle timeout, oversized line, or socket error
        }
        if line.trim().is_empty() {
            continue;
        }
        inc(&shared.metrics.requests_total);
        let mut req_span = obs::span("request");
        req_span.add_field("bytes", line.trim().len());
        let (mut response, wants_shutdown) = handle_request(shared, line.trim());
        if response.get("ok").and_then(Value::as_bool) == Some(false) {
            inc(&shared.metrics.errors_total);
        }
        // Echo the request's span id so a client can find its trace. Only
        // injected while tracing is live: with tracing off the envelope is
        // byte-identical to an uninstrumented server.
        if req_span.id() != 0 {
            if let Value::Obj(fields) = &mut response {
                fields.push(("trace_id".into(), Value::Num(req_span.id() as f64)));
            }
        }
        let out = response.to_string();
        let write_failed = {
            let mut respond_span = obs::span("respond");
            respond_span.add_field("bytes", out.len());
            writer
                .write_all(out.as_bytes())
                .and_then(|_| writer.write_all(b"\n"))
                .and_then(|_| writer.flush())
                .is_err()
        };
        drop(req_span);
        if write_failed {
            break;
        }
        inc(&shared.metrics.responses_total);
        if wants_shutdown {
            shared.request_shutdown();
            break;
        }
        if shared.shutting_down() {
            // Finish the in-flight request (just did), then close.
            break;
        }
    }
}

/// Dispatch one request line. Returns the response and whether the verb
/// asked the whole server to shut down.
fn handle_request(shared: &Arc<Shared>, line: &str) -> (Value, bool) {
    let parse_span = obs::span("parse");
    let req = match json::parse(line) {
        Ok(v @ Value::Obj(_)) => v,
        Ok(_) => {
            return (
                err_response("?", None, "request must be a JSON object"),
                false,
            )
        }
        Err(e) => return (err_response("?", None, &format!("bad JSON: {e}")), false),
    };
    drop(parse_span);
    let id = req.get("id").cloned();
    let id = id.as_ref();
    let Some(verb) = req.get("verb").and_then(Value::as_str) else {
        return (err_response("?", id, "missing \"verb\""), false);
    };
    match verb {
        "health" => {
            inc(&shared.metrics.health_total);
            let models = shared.registry.read().map(|r| r.len()).unwrap_or(0);
            (
                ok_response(
                    "health",
                    id,
                    vec![
                        ("status".into(), "ok".into()),
                        ("models".into(), Value::Num(models as f64)),
                        ("draining".into(), Value::Bool(shared.shutting_down())),
                    ],
                ),
                false,
            )
        }
        "list" => {
            inc(&shared.metrics.list_total);
            let infos = match shared.registry.read() {
                Ok(r) => r.list(),
                Err(_) => return (err_response("list", id, "registry poisoned"), false),
            };
            let models: Vec<Value> = infos
                .iter()
                .map(|m| {
                    Value::Obj(vec![
                        ("name".into(), m.name.as_str().into()),
                        ("loaded".into(), Value::Bool(m.loaded)),
                        ("bytes".into(), Value::Num(m.file_bytes as f64)),
                    ])
                })
                .collect();
            (
                ok_response("list", id, vec![("models".into(), Value::Arr(models))]),
                false,
            )
        }
        "stats" => {
            inc(&shared.metrics.stats_total);
            let body = if req.get("format").and_then(Value::as_str) == Some("text") {
                let mut text = shared.metrics.render_text();
                render_stream_metrics(&shared.streams, &mut text);
                vec![("text".into(), Value::Str(text))]
            } else {
                let mut fields = match shared.metrics.to_json() {
                    Value::Obj(fields) => fields,
                    other => vec![("metrics".into(), other)],
                };
                fields.push(("streams".into(), stream_metrics_json(&shared.streams)));
                fields
            };
            (ok_response("stats", id, body), false)
        }
        "evict" => {
            inc(&shared.metrics.evict_total);
            let Some(model) = req.get("model").and_then(Value::as_str) else {
                return (err_response("evict", id, "evict requires \"model\""), false);
            };
            let evicted = match shared.registry.read() {
                Ok(r) => r.evict(model),
                Err(_) => Err("registry poisoned".into()),
            };
            match evicted {
                Ok(was_loaded) => (
                    ok_response(
                        "evict",
                        id,
                        vec![
                            ("model".into(), model.into()),
                            ("was_loaded".into(), Value::Bool(was_loaded)),
                        ],
                    ),
                    false,
                ),
                Err(e) => (err_response("evict", id, &e), false),
            }
        }
        "fit" => {
            inc(&shared.metrics.fit_total);
            (handle_fit(shared, &req, id), false)
        }
        "detect" => {
            inc(&shared.metrics.detect_total);
            (handle_detect(shared, &req, id), false)
        }
        "shutdown" => {
            inc(&shared.metrics.shutdown_total);
            (
                ok_response("shutdown", id, vec![("draining".into(), Value::Bool(true))]),
                true,
            )
        }
        v if v.starts_with("stream.") => {
            inc(&shared.metrics.stream_total);
            (handle_stream(shared, v, &req, id), false)
        }
        other => (
            err_response(other, id, &format!("unknown verb {other:?}")),
            false,
        ),
    }
}

fn handle_fit(shared: &Arc<Shared>, req: &Value, id: Option<&Value>) -> Value {
    let Some(model) = req.get("model").and_then(Value::as_str) else {
        return err_response("fit", id, "fit requires \"model\"");
    };
    let Some(train) = req.get("train").and_then(|v| v.as_f64_vec()) else {
        return err_response("fit", id, "fit requires a numeric \"train\" array");
    };

    let mut cfg = TriadConfig::default();
    for (key, slot) in [
        ("epochs", &mut cfg.epochs as &mut usize),
        ("hidden", &mut cfg.hidden),
        ("depth", &mut cfg.depth),
        ("batch", &mut cfg.batch),
        ("merlin_step", &mut cfg.merlin_step),
    ] {
        if let Some(v) = req.get(key).and_then(Value::as_u64) {
            *slot = v as usize;
        }
    }
    if let Some(seed) = req.get("seed").and_then(Value::as_u64) {
        cfg.seed = seed;
    }
    if let Err(e) = cfg.validate() {
        return err_response("fit", id, &format!("bad config: {e}"));
    }

    let t0 = obs::now_instant();
    let fitted = match TriAd::new(cfg).fit(&train) {
        Ok(f) => f,
        Err(e) => return err_response("fit", id, &format!("fit failed: {e}")),
    };
    let period = fitted.period();
    let window = fitted.window_len();
    let saved = match shared.registry.write() {
        Ok(mut r) => r
            .save_fitted(model, fitted)
            .map(|()| r.slot(model).map(|s| s.file_bytes()).unwrap_or(0)),
        Err(_) => Err("registry poisoned".into()),
    };
    let bytes = match saved {
        Ok(b) => b,
        Err(e) => return err_response("fit", id, &e),
    };
    let elapsed_ms = t0.elapsed().as_millis() as u64;
    shared.metrics.fit_latency_ms.observe(elapsed_ms);
    ok_response(
        "fit",
        id,
        vec![
            ("model".into(), model.into()),
            ("n_train".into(), Value::Num(train.len() as f64)),
            ("period".into(), Value::Num(period as f64)),
            ("window".into(), Value::Num(window as f64)),
            ("bytes".into(), Value::Num(bytes as f64)),
            ("elapsed_ms".into(), Value::Num(elapsed_ms as f64)),
        ],
    )
}

fn handle_detect(shared: &Arc<Shared>, req: &Value, id: Option<&Value>) -> Value {
    let Some(model) = req.get("model").and_then(Value::as_str) else {
        return err_response("detect", id, "detect requires \"model\"");
    };
    let Some(series) = req.get("series").and_then(|v| v.as_f64_vec()) else {
        return err_response("detect", id, "detect requires a numeric \"series\" array");
    };
    if series.is_empty() {
        return err_response("detect", id, "detect \"series\" must be non-empty");
    }
    let known = match shared.registry.read() {
        Ok(r) => r.slot(model).is_some(),
        Err(_) => return err_response("detect", id, "registry poisoned"),
    };
    if !known {
        return err_response("detect", id, &format!("no such model {model:?}"));
    }

    let rx = shared.batcher.submit(model, series);
    // Queue budget is `request_timeout` (enforced by the batcher); on top of
    // that allow generous pipeline time before giving up on the reply.
    let wait = shared.request_timeout + Duration::from_secs(120);
    let received = {
        let _wait_span = obs::span("batch-wait");
        rx.recv_timeout(wait)
    };
    match received {
        Ok(Ok(body)) => detect_response(id, body),
        Ok(Err(e)) => err_response("detect", id, &e),
        Err(_) => err_response("detect", id, "detect timed out"),
    }
}

/// Dispatch the `stream.*` verb family onto the [`StreamManager`].
fn handle_stream(shared: &Arc<Shared>, verb: &str, req: &Value, id: Option<&Value>) -> Value {
    let stream_name = req.get("stream").and_then(Value::as_str);
    match verb {
        "stream.open" => {
            let Some(stream) = stream_name else {
                return err_response(verb, id, "stream.open requires \"stream\"");
            };
            let Some(model) = req.get("model").and_then(Value::as_str) else {
                return err_response(verb, id, "stream.open requires \"model\"");
            };
            // The shard would discover a missing model too, but only after
            // the loader tries the file; the registry knows now.
            let known = match shared.registry.read() {
                Ok(r) => r.slot(model).is_some(),
                Err(_) => return err_response(verb, id, "registry poisoned"),
            };
            if !known {
                return err_response(verb, id, &format!("no such model {model:?}"));
            }
            match shared.streams.open(stream, model) {
                Ok(()) => ok_response(
                    verb,
                    id,
                    vec![
                        ("stream".into(), stream.into()),
                        ("model".into(), model.into()),
                        (
                            "shard".into(),
                            Value::Num(shared.streams.shard_of(stream) as f64),
                        ),
                    ],
                ),
                Err(e) => err_response(verb, id, &e.to_string()),
            }
        }
        "stream.push" => {
            let Some(stream) = stream_name else {
                return err_response(verb, id, "stream.push requires \"stream\"");
            };
            let Some(points) = req.get("points").and_then(|v| v.as_f64_vec()) else {
                return err_response(verb, id, "stream.push requires a numeric \"points\" array");
            };
            match shared.streams.push(stream, &points) {
                Ok(ticket) => ok_response(
                    verb,
                    id,
                    vec![
                        ("stream".into(), stream.into()),
                        ("queued".into(), Value::Bool(ticket.queued)),
                        ("dropped".into(), Value::Num(ticket.dropped as f64)),
                        ("queue_len".into(), Value::Num(ticket.queue_len as f64)),
                        ("shard".into(), Value::Num(ticket.shard as f64)),
                    ],
                ),
                Err(e) => err_response(verb, id, &e.to_string()),
            }
        }
        "stream.poll" => {
            let Some(stream) = stream_name else {
                return err_response(verb, id, "stream.poll requires \"stream\"");
            };
            match shared.streams.poll(stream) {
                Ok(status) => ok_response(verb, id, stream_status_fields(stream, &status)),
                Err(e) => err_response(verb, id, &e.to_string()),
            }
        }
        "stream.close" => {
            let Some(stream) = stream_name else {
                return err_response(verb, id, "stream.close requires \"stream\"");
            };
            match shared.streams.close(stream) {
                Ok(report) => {
                    let mut body = stream_status_fields(stream, &report.status);
                    body.push((
                        "detection".into(),
                        match &report.detection {
                            Some(det) => detection_fields(stream, det),
                            None => Value::Null,
                        },
                    ));
                    body.push((
                        "finalize_error".into(),
                        match &report.finalize_error {
                            Some(e) => Value::Str(e.clone()),
                            None => Value::Null,
                        },
                    ));
                    ok_response(verb, id, body)
                }
                Err(e) => err_response(verb, id, &e.to_string()),
            }
        }
        "stream.checkpoint" => match shared.streams.checkpoint(stream_name) {
            Ok(written) => ok_response(
                verb,
                id,
                vec![("written".into(), Value::Num(written as f64))],
            ),
            Err(e) => err_response(verb, id, &e.to_string()),
        },
        "stream.list" => {
            let names: Vec<Value> = shared
                .streams
                .streams()
                .into_iter()
                .map(Value::Str)
                .collect();
            ok_response(verb, id, vec![("streams".into(), Value::Arr(names))])
        }
        other => err_response(other, id, &format!("unknown stream verb {other:?}")),
    }
}

/// Fleet-tier counter list shared by both expositions (JSON field names
/// and `triad_fleet_*` text metric suffixes).
fn fleet_counters(s: &FleetStats) -> [(&'static str, u64); 12] {
    [
        ("budget_bytes", s.budget_bytes),
        ("resident_bytes", s.resident_bytes),
        ("resident_streams", s.resident_streams),
        ("evicted_streams", s.evicted_streams),
        ("evictions", s.evictions),
        ("rehydrations", s.rehydrations),
        ("rehydrate_failures", s.rehydrate_failures),
        ("compacted_files", s.compacted_files),
        ("drift_events", s.drift_events),
        ("refits_requested", s.refits_requested),
        ("refits_completed", s.refits_completed),
        ("refits_failed", s.refits_failed),
    ]
}

/// Per-shard streaming counters for the `stats` verb's JSON payload.
fn stream_metrics_json(mgr: &StreamTier) -> Value {
    let mut shards = Vec::with_capacity(mgr.shard_count());
    let mut open_total = 0u64;
    for (i, m) in mgr.shard_metrics().iter().enumerate() {
        open_total += ShardMetrics::get(&m.open_streams);
        let mut fields: Vec<(String, Value)> = vec![("shard".into(), Value::Num(i as f64))];
        for (name, counter) in shard_counters(m) {
            fields.push((name.into(), Value::Num(ShardMetrics::get(counter) as f64)));
        }
        fields.push((
            "score_latency_us".into(),
            histogram_json(&m.score_latency_us),
        ));
        shards.push(Value::Obj(fields));
    }
    let mut fields = vec![
        ("shards".into(), Value::Arr(shards)),
        ("open_streams".into(), Value::Num(open_total as f64)),
    ];
    if let Some(stats) = mgr.fleet_stats() {
        let fleet: Vec<(String, Value)> = fleet_counters(&stats)
            .into_iter()
            .map(|(name, v)| (name.into(), Value::Num(v as f64)))
            .collect();
        fields.push(("fleet".into(), Value::Obj(fleet)));
    }
    Value::Obj(fields)
}

/// Per-shard streaming counters in the text exposition format.
fn render_stream_metrics(mgr: &StreamTier, out: &mut String) {
    use std::fmt::Write;
    for (i, m) in mgr.shard_metrics().iter().enumerate() {
        for (name, counter) in shard_counters(m) {
            let _ = writeln!(
                out,
                "triad_stream_{name}{{shard=\"{i}\"}} {}",
                ShardMetrics::get(counter)
            );
        }
        render_histogram(
            &m.score_latency_us,
            &format!("triad_stream_shard_{i}_score_latency_us"),
            "_us",
            out,
        );
    }
    if let Some(stats) = mgr.fleet_stats() {
        for (name, v) in fleet_counters(&stats) {
            let _ = writeln!(out, "triad_fleet_{name} {v}");
        }
    }
}

fn shard_counters(m: &ShardMetrics) -> [(&'static str, &std::sync::atomic::AtomicU64); 9] {
    [
        ("ingested", &m.ingested),
        ("dropped_backpressure", &m.dropped_backpressure),
        ("dropped_nonfinite", &m.dropped_nonfinite),
        ("windows_scored", &m.windows_scored),
        ("events_opened", &m.events_opened),
        ("checkpoints_written", &m.checkpoints_written),
        ("checkpoints_skipped_clean", &m.checkpoints_skipped_clean),
        ("checkpoint_failures", &m.checkpoint_failures),
        ("open_streams", &m.open_streams),
    ]
}

/// Run a detection directly (no server) — shared by `triad client --local`
/// style tooling and unit tests.
pub fn detect_once(
    registry: &RwLock<ModelRegistry>,
    model: &str,
    series: &[f64],
) -> Result<Value, String> {
    let slot = registry
        .read()
        .map_err(|_| "registry poisoned".to_string())?
        .slot(model)
        .ok_or_else(|| format!("no such model {model:?}"))?;
    let reg = registry
        .read()
        .map_err(|_| "registry poisoned".to_string())?;
    let guard = reg.lock_loaded(&slot)?;
    let fitted = guard
        .as_ref()
        .ok_or_else(|| "model slot empty after load".to_string())?;
    let det = fitted.try_detect(series).map_err(|e| e.to_string())?;
    Ok(detection_fields(model, &det))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::get;

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1 && cfg.executors >= 1 && cfg.max_batch >= 1);
    }

    #[test]
    fn bad_requests_get_error_envelopes_without_a_model_dir() {
        let dir = std::env::temp_dir().join(format!("triad_server_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = start(ServeConfig {
            models_dir: dir.clone(),
            workers: 1,
            executors: 1,
            ..Default::default()
        })
        .expect("start");
        let addr = handle.addr();

        let mut s = TcpStream::connect(addr).unwrap();
        for (req, needle) in [
            ("not json", "bad JSON"),
            ("[1,2]", "JSON object"),
            ("{\"no\":\"verb\"}", "missing \\\"verb\\\""),
            ("{\"verb\":\"teleport\"}", "unknown verb"),
            ("{\"verb\":\"detect\",\"model\":\"m\"}", "series"),
            (
                "{\"verb\":\"detect\",\"model\":\"ghost\",\"series\":[1,2,3]}",
                "no such model",
            ),
        ] {
            s.write_all(req.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert!(line.contains("\"ok\":false"), "{req} -> {line}");
            assert!(line.contains(needle), "{req} -> {line}");
        }

        // health + stats still answer.
        s.write_all(b"{\"verb\":\"health\",\"id\":1}\n").unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"ok\":true") && line.contains("\"id\":1"),
            "{line}"
        );

        assert!(get(&handle.metrics().errors_total) >= 6);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_verbs_round_trip_over_tcp() {
        use crate::client::Client;
        use std::f64::consts::PI;

        let dir = std::env::temp_dir().join(format!("triad_server_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Pre-fit a small model straight into the models dir; the registry
        // discovers it at startup and the stream shards load it by file.
        let train: Vec<f64> = (0..560)
            .map(|i| (2.0 * PI * i as f64 / 32.0).sin() + 0.3 * (4.0 * PI * i as f64 / 32.0).sin())
            .collect();
        let fitted = TriAd::new(TriadConfig {
            epochs: 2,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        })
        .fit(&train)
        .expect("fit");
        let mut test = train[..380.min(train.len())].to_vec();
        for (i, v) in test.iter_mut().enumerate().take(260).skip(200) {
            *v = (8.0 * PI * i as f64 / 32.0).sin();
        }
        persist::save_file(&dir.join("m.triad"), &fitted).expect("save model");

        let handle = start(ServeConfig {
            models_dir: dir.clone(),
            workers: 2,
            executors: 1,
            stream_shards: 2,
            ..Default::default()
        })
        .expect("start");
        let mut c = Client::connect(handle.addr(), Duration::from_secs(300)).expect("connect");

        assert!(c.stream_open("s1", "ghost").is_err(), "unknown model");
        c.stream_open("s1", "m").expect("open");
        assert!(c.stream_open("s1", "m").is_err(), "duplicate stream");

        for chunk in test.chunks(64) {
            let t = c.stream_push("s1", chunk).expect("push");
            assert_eq!(t.get("queued").and_then(Value::as_bool), Some(true));
        }
        // Poll until the shard has drained the queue.
        let mut polled = None;
        for _ in 0..600 {
            let p = c.stream_poll("s1").expect("poll");
            if p.get("seq").and_then(Value::as_u64) == Some(test.len() as u64) {
                polled = Some(p);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let polled = polled.expect("stream never drained");
        assert!(polled.get("windows_scored").and_then(Value::as_u64) > Some(0));

        let listed = c.stream_list().expect("list");
        assert_eq!(
            listed.get("streams").map(|v| v.to_string()),
            Some("[\"s1\"]".to_string())
        );

        // Per-shard metrics are visible through the stats verb.
        let stats = c.stats().expect("stats");
        let streams = stats.get("streams").expect("streams in stats");
        let shards = streams
            .get("shards")
            .and_then(Value::as_arr)
            .expect("shards");
        assert_eq!(shards.len(), 2);
        let ingested: u64 = shards
            .iter()
            .map(|s| s.get("ingested").and_then(Value::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(ingested, test.len() as u64);
        let text = c.stats_text().expect("stats text");
        assert!(
            text.contains("triad_stream_ingested{shard=\"0\"}"),
            "{text}"
        );
        assert!(text.contains("_p99"), "{text}");

        // Close returns the offline-equivalent detection: compare against
        // the direct (no-server) path on the same model file.
        let closed = c.stream_close("s1").expect("close");
        assert_eq!(closed.get("finalize_error"), Some(&Value::Null));
        let offline = detection_fields("s1", &fitted.detect(&test));
        assert_eq!(
            closed.get("detection").map(|v| v.to_string()),
            Some(offline.to_string()),
            "streamed detection differs from offline"
        );
        assert!(c.stream_poll("s1").is_err(), "closed stream still polls");

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_tier_serves_stream_verbs_under_budget_and_exposes_counters() {
        use crate::client::Client;
        use std::f64::consts::PI;

        let dir = std::env::temp_dir().join(format!("triad_server_fleet_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        let train: Vec<f64> = (0..560)
            .map(|i| (2.0 * PI * i as f64 / 32.0).sin() + 0.3 * (4.0 * PI * i as f64 / 32.0).sin())
            .collect();
        let fitted = TriAd::new(TriadConfig {
            epochs: 2,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        })
        .fit(&train)
        .expect("fit");
        persist::save_file(&dir.join("m.triad"), &fitted).expect("save model");
        let test = &train[..380];

        // A budget far below one engine's footprint: every batch ends with
        // the shard evicting, so the verbs exercise rehydration constantly.
        let handle = start(ServeConfig {
            models_dir: dir.clone(),
            workers: 2,
            executors: 1,
            stream_shards: 2,
            fleet_budget_bytes: Some(16 * 1024),
            ..Default::default()
        })
        .expect("start");
        let mut c = Client::connect(handle.addr(), Duration::from_secs(300)).expect("connect");

        for name in ["f1", "f2", "f3"] {
            c.stream_open(name, "m").expect("open");
        }
        for chunk in test.chunks(64) {
            for name in ["f1", "f2", "f3"] {
                let t = c.stream_push(name, chunk).expect("push");
                assert_eq!(t.get("queued").and_then(Value::as_bool), Some(true));
            }
        }
        for name in ["f1", "f2", "f3"] {
            let mut drained = false;
            for _ in 0..600 {
                let p = c.stream_poll(name).expect("poll");
                if p.get("seq").and_then(Value::as_u64) == Some(test.len() as u64) {
                    drained = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            assert!(drained, "stream {name} never drained");
        }

        // The fleet section rides along in both stats expositions.
        let stats = c.stats().expect("stats");
        let fleet = stats
            .get("streams")
            .and_then(|s| s.get("fleet"))
            .expect("fleet counters in stats");
        assert_eq!(
            fleet.get("budget_bytes").and_then(Value::as_u64),
            Some(16 * 1024)
        );
        let evictions = fleet.get("evictions").and_then(Value::as_u64).unwrap_or(0);
        assert!(evictions > 0, "tiny budget must evict: {fleet:?}");
        let resident = fleet
            .get("resident_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(u64::MAX);
        assert!(resident <= 16 * 1024, "residency over budget: {resident}");
        let text = c.stats_text().expect("stats text");
        assert!(text.contains("triad_fleet_evictions"), "{text}");

        // Eviction/rehydration is invisible in the close-time detection.
        let closed = c.stream_close("f1").expect("close");
        assert_eq!(closed.get("finalize_error"), Some(&Value::Null));
        let offline = detection_fields("f1", &fitted.detect(test));
        assert_eq!(
            closed.get("detection").map(|v| v.to_string()),
            Some(offline.to_string()),
            "fleet-streamed detection differs from offline"
        );

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
