//! Experiment index — run `cargo run -p bench --release --bin <name>`.

fn main() {
    println!("TriAD reproduction — experiment binaries (run with --release):");
    for (name, what) in [
        (
            "table2",
            "LSTM-AE random vs trained under PW/PA/PA%K on KPI-like, SWaT-like, UCR (Table II)",
        ),
        (
            "table3",
            "all models × all metrics on the synthetic UCR archive (Table III)",
        ),
        (
            "table4",
            "MERLIN++ vs TriAD windows: event accuracy + inference time (Table IV)",
        ),
        ("fig1", "traditional augmentations look anomalous (Fig. 1)"),
        ("fig2", "LSTM-AE reconstructs anomalies too well (Fig. 2)"),
        ("fig3", "KPI-like one-liner anomalies (Fig. 3)"),
        ("fig5", "jitter & warp augmentation examples (Fig. 5)"),
        ("fig6", "anomaly-length histogram of the archive (Fig. 6)"),
        ("fig7", "MERLIN-vs-TriAD search-length ratio (Fig. 7)"),
        ("fig8", "parameter study: alpha / depth / h_d (Fig. 8)"),
        ("fig9", "ablation study (Fig. 9)"),
        (
            "case_study",
            "full walk-through on one dataset (Figs. 10-13)",
        ),
        ("fig14", "MTGFlow false positives (Fig. 14)"),
        ("fig15", "discord failure + Sec. IV-G fallback (Fig. 15)"),
        ("fig16", "six anomaly families detected (Fig. 16)"),
    ] {
        println!("  {name:<11} {what}");
    }
    println!();
    println!("Common flags: --datasets N --seeds N --epochs N");
    println!("Paper scale: --datasets 250 --seeds 5 --epochs 20 (defaults are laptop-scale; see EXPERIMENTS.md)");
}
