//@ path: crates/serve/src/fixture.rs
//@ expect: ambient-entropy
// Seeded violation: wall clock, the per-process hasher seed, and an
// environment read outside the sanctioned config layer.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn fresh_hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::default()
}

pub fn debug_knob() -> bool {
    std::env::var("SERVE_DEBUG").is_ok()
}
