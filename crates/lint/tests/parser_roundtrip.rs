//! The delimiter tree is faithful: an in-order traversal visits every
//! token exactly once, so reassembling the spans reproduces the input
//! byte-for-byte. Pinned here over every workspace source file (the
//! corpus the linter actually runs on) and over randomized inputs skewed
//! toward pathological bracket nesting.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use triad_lint::parser;
use triad_lint::tokenizer;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a workspace root two levels up")
        .to_path_buf()
}

/// Tokenize, parse, and re-emit the file from the tree's token order.
fn reassemble(bytes: &[u8]) -> Vec<u8> {
    let toks = tokenizer::tokenize(bytes);
    let tree = parser::parse(&toks, bytes);
    let order = tree.token_order();
    assert_eq!(order.len(), toks.len(), "traversal must visit every token");
    let mut out = Vec::with_capacity(bytes.len());
    for i in order {
        out.extend_from_slice(&bytes[toks[i].start..toks[i].end]);
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !matches!(
                name.as_ref(),
                "target" | ".git" | "bench_out" | "evalbed_out"
            ) {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_source_file_round_trips() {
    let mut files = Vec::new();
    collect_rs(&workspace_root(), &mut files);
    // The walk must have found the real corpus, not an empty directory —
    // vendor/ and fixtures/ are deliberately included: the parser must be
    // total on them too.
    assert!(files.len() > 100, "only {} .rs files found", files.len());
    for path in files {
        let bytes = std::fs::read(&path).expect("workspace file readable");
        assert_eq!(
            reassemble(&bytes),
            bytes,
            "parse→reassemble changed {}",
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Total on arbitrary bytes: never panics, always reassembles exactly.
    #[test]
    fn parser_round_trips_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        prop_assert_eq!(reassemble(&bytes), bytes);
    }

    // Skew toward delimiters, strays, and literal-openers: unbalanced
    // nesting, mismatched closers, and brackets inside strings/comments.
    #[test]
    fn parser_round_trips_bracket_heavy_input(raw in prop::collection::vec(0u8..=255, 0..256)) {
        const ALPHABET: &[u8] = b"(){}[]\"'/*\\\n a0,;<>";
        let bytes: Vec<u8> = raw.iter().map(|&b| ALPHABET[b as usize % ALPHABET.len()]).collect();
        prop_assert_eq!(reassemble(&bytes), bytes);
    }
}
