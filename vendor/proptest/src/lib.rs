//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace uses — the
//! [`proptest!`] macro, range / `any::<T>()` / `prop::collection::vec`
//! strategies, `prop_assert*` / `prop_assume!`, and [`ProptestConfig`] — as a
//! plain randomized test runner. Differences from upstream, acceptable for
//! this repository's invariant checks:
//!
//! * no shrinking: a failing case reports its case index and message only
//!   (the runner is deterministic per test name, so failures replay exactly);
//! * no persistence: `*.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`with_cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — does not count as a failure.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Per-test driver: deterministic RNG (seeded from the test name) plus
/// rejection bookkeeping.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
    rejects: u32,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            cases: config.cases,
            rejects: 0,
            name,
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Record one case's outcome; panics (failing the `#[test]`) on `Fail`.
    pub fn handle(&mut self, case: u32, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                assert!(
                    self.rejects <= self.cases * 16,
                    "proptest '{}': too many prop_assume! rejections",
                    self.name
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{}' failed at case {}: {}", self.name, case, msg)
            }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_strategies!(usize, u64, u32, u16, u8, isize, i64, i32, f64, f32);

    /// `any::<T>()` — the full-domain strategy.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any_strategy<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // Finite, wide-range values (no NaN/inf: the workspace's numeric
            // invariants are about real-valued signals).
            let mag: f64 = rng.random_range(-1e6f64..1e6);
            mag
        }
    }

    impl Strategy for Any<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(0usize..=usize::MAX - 1)
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.random()
        }
    }
}

/// `proptest::prelude::*` — everything test files import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };

    /// `any::<T>()` as re-exported by the real prelude.
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::any_strategy::<T>()
    }

    pub mod prop {
        pub mod collection {
            use crate::strategy::Strategy;
            use rand::rngs::StdRng;
            use rand::Rng;

            /// Vec strategy: random length in `len`, elements from `elem`.
            pub struct VecStrategy<S> {
                elem: S,
                len: core::ops::Range<usize>,
            }

            pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
                assert!(len.start < len.end, "empty vec length range");
                VecStrategy { elem, len }
            }

            impl<S: Strategy> Strategy for VecStrategy<S> {
                type Value = Vec<S::Value>;
                fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                    let n = rng.random_range(self.len.clone());
                    (0..n).map(|_| self.elem.sample(rng)).collect()
                }
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest! { ... }` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), runner.rng());)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                runner.handle(case, outcome);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0f64..1.0, 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10, "len {}", v.len());
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn ranges_and_assume(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(lo < hi);
            prop_assert_eq!(lo.min(hi), lo);
        }

        #[test]
        fn any_bool_varies(flips in prop::collection::vec(any::<bool>(), 64..65)) {
            // 64 fair flips virtually never agree unanimously.
            let heads = flips.iter().filter(|&&b| b).count();
            prop_assert!(heads > 0 && heads < 64, "{} heads", heads);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
