//! Table III — overall comparison with SOTA deep-learning models on the
//! (synthetic) UCR archive.
//!
//! Per model: F1(PW), F1(PA), PA%K precision/recall/F1 AUCs, affiliation
//! precision/recall/F1. TriAD additionally reports tri-window and
//! single-window detection accuracy (the table's footnote) and runs under
//! multiple seeds with mean ± std.
//!
//! Flags: `--datasets N` (default 10; paper 250), `--seeds N` (default 2;
//! paper 5), `--epochs N` (default 5; paper 20), `--oracle 1` to give the
//! baselines the best-F1 oracle threshold instead of the deployment
//! (train-calibrated mean + 3σ) protocol.

use baselines::anomaly_transformer_lite::{AnomalyTransformerConfig, AnomalyTransformerLite};
use baselines::dcdetector_lite::{DcDetectorConfig, DcDetectorLite};
use baselines::lstm_ae::{LstmAe, LstmAeConfig};
use baselines::mtgflow_lite::{MtgFlowConfig, MtgFlowLite};
use baselines::ts2vec_lite::{Ts2VecConfig, Ts2VecLite};
use baselines::usad::{Usad, UsadConfig};
use baselines::Detector;
use bench::{f3, mean_std, par_map, print_table, Args, MetricRow};
use triad_core::TriadConfig;
use ucrgen::archive::{generate_archive, ArchiveConfig};

fn main() {
    let args = Args::parse();
    let n_datasets: usize = args.get("datasets", 10);
    let n_seeds: u64 = args.get("seeds", 2);
    let epochs: usize = args.get("epochs", 5);
    let oracle: usize = args.get("oracle", 0);

    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count: n_datasets,
            ..Default::default()
        },
    );
    eprintln!(
        "table3: {n_datasets} datasets, {n_seeds} TriAD seeds, {epochs} epochs (paper: 250/5/20)"
    );

    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Baselines (deterministic; single seed as in the paper's protocol
    //     of running each author's code once) ---
    type DetectorFactory = Box<dyn Fn() -> Box<dyn Detector> + Sync>;
    let factories: Vec<DetectorFactory> = vec![
        Box::new(move || {
            Box::new(LstmAe::random(LstmAeConfig {
                epochs,
                ..Default::default()
            }))
        }),
        Box::new(move || {
            Box::new(LstmAe::trained(LstmAeConfig {
                epochs,
                ..Default::default()
            }))
        }),
        Box::new(move || {
            Box::new(Usad::new(UsadConfig {
                epochs,
                ..Default::default()
            }))
        }),
        Box::new(move || {
            Box::new(Ts2VecLite::new(Ts2VecConfig {
                epochs,
                ..Default::default()
            }))
        }),
        Box::new(move || {
            Box::new(AnomalyTransformerLite::new(AnomalyTransformerConfig {
                epochs,
                ..Default::default()
            }))
        }),
        Box::new(move || {
            Box::new(MtgFlowLite::new(MtgFlowConfig {
                epochs,
                ..Default::default()
            }))
        }),
        Box::new(move || {
            Box::new(DcDetectorLite::new(DcDetectorConfig {
                epochs,
                ..Default::default()
            }))
        }),
    ];

    for factory in &factories {
        let name = factory().name();
        eprintln!("running {name} ...");
        let metrics = par_map(&archive, |ds| {
            if oracle != 0 {
                let mut det = factory();
                bench::run_detector(det.as_mut(), ds)
            } else {
                bench::run_detector_calibrated(factory.as_ref(), ds)
            }
        });
        let m = MetricRow::mean(&metrics);
        rows.push(vec![
            name,
            f3(m.pw.f1),
            f3(m.pa.f1),
            f3(m.pak.precision_auc),
            f3(m.pak.recall_auc),
            f3(m.pak.f1_auc),
            f3(m.affiliation.precision),
            f3(m.affiliation.recall),
            f3(m.affiliation.f1),
        ]);
    }

    // --- TriAD over seeds ---
    eprintln!("running TriAD ...");
    let mut per_seed: Vec<(MetricRow, f64, f64)> = Vec::new();
    for seed in 0..n_seeds {
        let outcomes = par_map(&archive, |ds| {
            let cfg = TriadConfig {
                epochs,
                seed,
                merlin_step: 2,
                ..Default::default()
            };
            bench::run_triad(ds, &cfg).ok()
        });
        let ok: Vec<_> = outcomes.into_iter().flatten().collect();
        let m = MetricRow::mean(&ok.iter().map(|o| o.metrics).collect::<Vec<_>>());
        let tri = ok.iter().filter(|o| o.tri_window_hit).count() as f64 / archive.len() as f64;
        let single =
            ok.iter().filter(|o| o.single_window_hit).count() as f64 / archive.len() as f64;
        per_seed.push((m, tri, single));
        eprintln!(
            "  seed {seed}: F1(PA%K)-AUC {:.3}, tri-window {:.3}, single {:.3}",
            m.pak.f1_auc, tri, single
        );
    }

    let pick = |f: &dyn Fn(&MetricRow) -> f64| -> (f64, f64) {
        mean_std(&per_seed.iter().map(|(m, _, _)| f(m)).collect::<Vec<_>>())
    };
    let fmt = |(m, s): (f64, f64)| format!("{m:.3}±{s:.3}");
    rows.push(vec![
        "TriAD".into(),
        fmt(pick(&|m| m.pw.f1)),
        fmt(pick(&|m| m.pa.f1)),
        fmt(pick(&|m| m.pak.precision_auc)),
        fmt(pick(&|m| m.pak.recall_auc)),
        fmt(pick(&|m| m.pak.f1_auc)),
        fmt(pick(&|m| m.affiliation.precision)),
        fmt(pick(&|m| m.affiliation.recall)),
        fmt(pick(&|m| m.affiliation.f1)),
    ]);

    print_table(
        "Table III — overall comparison on the synthetic UCR archive",
        &[
            "Model",
            "F1(PW)",
            "F1(PA)",
            "PA%K P-AUC",
            "PA%K R-AUC",
            "PA%K F1-AUC",
            "Aff P",
            "Aff R",
            "Aff F1",
        ],
        &rows,
    );

    let tri = mean_std(&per_seed.iter().map(|(_, t, _)| *t).collect::<Vec<_>>());
    let single = mean_std(&per_seed.iter().map(|(_, _, s)| *s).collect::<Vec<_>>());
    println!(
        "\n* Window-based detection accuracy of TriAD: tri-window {:.3}±{:.3}, single window {:.3}±{:.3}",
        tri.0, tri.1, single.0, single.1
    );
}
