//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build container has no network and no crates.io mirror, so the
//! workspace vendors the exact API slice it uses: [`Rng`] / [`RngCore`] /
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator
//! behind `StdRng` is xoshiro256++ seeded through splitmix64 — deterministic,
//! fast, and statistically strong enough for the seeded experiments and
//! property tests in this repository. Streams differ from upstream `rand`
//! (which uses ChaCha12), so absolute seeded outputs are repo-internal, which
//! is all the experiments require.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`Rng::random`).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)`, 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-with-rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    let _ = x;
    (m >> 64) as u64
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Sized {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "empty inclusive range in random_range");
                    let s = (hi as i128 - lo as i128) as u128 + 1;
                    if s > u64::MAX as u128 {
                        // Full-width range: every u64 is valid.
                        return rng.next_u64() as $t;
                    }
                    s as u64
                } else {
                    assert!(lo < hi, "empty range in random_range");
                    (hi as i128 - lo as i128) as u64
                };
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty inclusive range in random_range");
                } else {
                    assert!(lo < hi, "empty range in random_range");
                }
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_uniform_impls!(f64, f32);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let b = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point for xoshiro; perturb it.
            if s == [0u64; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xD1B54A32D192ED03,
                    0x8BB84E1C6E7A3F29,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Choosing helpers, mirroring `rand::seq::IndexedRandom`.
    pub trait IndexedRandom {
        type Item;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.random();
            assert!((0.0..1.0).contains(&g));
            let k = r.random_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = r.random_range(5u64..=5);
            assert_eq!(k, 5);
            let x = r.random_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&x));
            let i = r.random_range(-7i64..-2);
            assert!((-7..-2).contains(&i));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = s / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn bool_and_random_bool() {
        let mut r = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4000..6000).contains(&heads), "{heads}");
        let often = (0..10_000).filter(|_| r.random_bool(0.9)).count();
        assert!(often > 8500, "{often}");
    }
}
