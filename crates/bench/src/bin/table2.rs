//! Table II — the evaluation-protocol pathology: a *randomly initialised*
//! LSTM-AE vs a *trained* one on explicit-anomaly benchmarks (KPI-like,
//! SWaT-like) and on the rigorous UCR-style archive, under F1(PW), F1(PA)
//! and F1(PA%K).
//!
//! Expected shape (paper Table II): PA inflates both variants massively on
//! KPI/SWaT; under PA%K the random model is competitive with — or beats —
//! the trained one on the flawed sets, while on UCR both stay low and
//! training helps.
//!
//! Flags: `--datasets N` (UCR subset size, default 6), `--epochs N`.

use baselines::lstm_ae::{LstmAe, LstmAeConfig};
use baselines::Detector;
use bench::{f3, par_map, print_table, Args, MetricRow};
use ucrgen::archive::{generate_archive, ArchiveConfig};
use ucrgen::oneliner::{from_ucr, kpi_like, swat_like, LabelledSeries};

fn eval_on(series: &[LabelledSeries], trained: bool, epochs: usize) -> MetricRow {
    let rows = par_map(series, |d| {
        let cfg = LstmAeConfig {
            epochs,
            ..Default::default()
        };
        let mk = || {
            if trained {
                LstmAe::trained(cfg)
            } else {
                LstmAe::random(cfg)
            }
        };
        // Deployment protocol: calibrate the threshold on the model's own
        // scores over the (normal) training split, never on test labels.
        let test_scores = mk().score(d.train(), d.test());
        let train_scores = mk().score(d.train(), d.train());
        MetricRow::from_scores_calibrated(&test_scores, &train_scores, &d.test_labels())
    });
    MetricRow::mean(&rows)
}

fn main() {
    let args = Args::parse();
    let n_ucr: usize = args.get("datasets", 6);
    let epochs: usize = args.get("epochs", 6);

    let kpi: Vec<LabelledSeries> = (0..3).map(|s| kpi_like(s, 2000, 3000, 8)).collect();
    let swat: Vec<LabelledSeries> = (0..3).map(|s| swat_like(s, 2000, 4000, 4)).collect();
    let ucr: Vec<LabelledSeries> = generate_archive(
        7,
        &ArchiveConfig {
            count: n_ucr,
            ..Default::default()
        },
    )
    .iter()
    .map(from_ucr)
    .collect();

    let mut rows = Vec::new();
    for (dataset_name, series) in [("KPI", &kpi), ("SWaT", &swat), ("UCR", &ucr)] {
        for trained in [false, true] {
            let m = eval_on(series, trained, epochs);
            let model = if trained {
                "LSTM-AE (Trained)"
            } else {
                "LSTM-AE (Random)"
            };
            eprintln!("{dataset_name}/{model}: done");
            rows.push(vec![
                dataset_name.to_string(),
                model.to_string(),
                f3(m.pw.f1),
                f3(m.pa.f1),
                f3(m.pak.f1_auc),
            ]);
        }
    }

    print_table(
        "Table II — evaluation results under the new protocol",
        &["Dataset", "Model", "F1(PW)", "F1(PA)", "F1(PA%K)"],
        &rows,
    );
    println!("\nReading: on KPI/SWaT-like data PA inflates both models; PA%K shows the");
    println!("random model competitive with the trained one (the 'one-liner' pathology).");
    println!("On UCR-style data all scores drop and training genuinely helps.");
}
