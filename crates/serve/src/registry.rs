//! Named model slots over `triad-core::persist`, with an LRU cache of
//! deserialized models and atomic on-disk save/reload.
//!
//! The registry maps model names to files in a models directory
//! (`<dir>/<name>.triad`). Deserialized [`FittedTriad`]s are cached per slot
//! behind a `Mutex`; at most `capacity` slots hold a live model at once —
//! beyond that the least-recently-used one is dropped back to its file
//! (`evict` does the same explicitly, and a subsequent detect reloads
//! bit-identical state, which the end-to-end test asserts).
//!
//! ## Threading model
//!
//! `FittedTriad` contains `neuro` parameters (`Rc<RefCell<…>>`), so it is
//! neither `Send` nor `Sync`. [`SendModel`] asserts `Send` (see the safety
//! comment); it is sound because a fitted model owns its entire `Rc` graph —
//! `train::fit` and `persist::load` build a fresh graph per model and no
//! `Rc` handle escapes the `FittedTriad` API — so the whole object moves
//! between threads as one unit. It is **never** `Sync`: all access goes
//! through the slot `Mutex`, one thread at a time, which is exactly what the
//! batching layer wants anyway (one pipeline run per model at a time, many
//! models in parallel).

use crate::metrics::{inc, Metrics};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use triad_core::{persist, FittedTriad, NumericMode};

/// Move-only wrapper making a fitted model transferable across threads.
pub struct SendModel(pub FittedTriad);

// SAFETY: `FittedTriad` is self-contained — every `Rc`/`RefCell` inside it is
// created during `fit`/`load` and reachable only through this value (the
// public API hands out `&`-references, never `Rc` clones). Moving sole
// ownership to another thread therefore cannot race reference counts. The
// wrapper is deliberately NOT `Sync`: concurrent `&SendModel` access from two
// threads could still race `RefCell` borrow flags, so every `SendModel` in
// this module lives behind a `Mutex` and is only touched by its lock holder.
#[allow(unsafe_code)] // the crate-level deny's one sanctioned exception
unsafe impl Send for SendModel {}

impl std::ops::Deref for SendModel {
    type Target = FittedTriad;
    fn deref(&self) -> &FittedTriad {
        &self.0
    }
}

/// One named model: its file plus an optional deserialized instance.
pub struct ModelSlot {
    name: String,
    path: PathBuf,
    model: Mutex<Option<SendModel>>,
    /// Logical-clock stamp of the last detect/load touch (drives LRU).
    last_used: AtomicU64,
    /// Serialized size on disk, bytes.
    file_bytes: AtomicU64,
}

impl ModelSlot {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn is_loaded(&self) -> bool {
        self.model.lock().map(|g| g.is_some()).unwrap_or(false)
    }

    pub fn file_bytes(&self) -> u64 {
        // relaxed-ok: size is display-only bookkeeping for the `list` verb;
        // a stale read is harmless.
        self.file_bytes.load(Ordering::Relaxed)
    }
}

/// Summary row for the `list` verb.
pub struct ModelInfo {
    pub name: String,
    pub loaded: bool,
    pub file_bytes: u64,
}

/// The registry. Callers share it as `Arc<RwLock<ModelRegistry>>`: writes
/// (slot creation/removal) take the write lock; the per-request path only
/// needs a read lock to clone a slot `Arc`, so detects on different models
/// proceed in parallel.
pub struct ModelRegistry {
    dir: PathBuf,
    /// BTreeMap so eviction scans and listings visit slots in name order.
    slots: BTreeMap<String, Arc<ModelSlot>>,
    clock: AtomicU64,
    capacity: usize,
    metrics: Arc<Metrics>,
    /// Worker-thread count applied to every model this registry hands out
    /// (0 = auto). A pure performance knob — detections are bit-identical
    /// at any value — so it is registry-wide, not persisted per model.
    threads: usize,
    /// Numeric kernel mode applied to every model this registry hands out.
    /// Like `threads` it is a serving-time knob, not persisted per model:
    /// within either mode results are bit-identical across thread counts.
    numeric_mode: NumericMode,
}

/// `<name>.triad` under the models directory.
const MODEL_EXT: &str = "triad";

fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("model name must be 1..=64 characters".into());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        || name.starts_with('.')
    {
        return Err(format!(
            "invalid model name {name:?}: use [A-Za-z0-9_.-], not starting with '.'"
        ));
    }
    Ok(())
}

impl ModelRegistry {
    /// Open (creating if needed) a models directory; every existing
    /// `*.triad` file becomes an unloaded slot.
    pub fn open(dir: &Path, capacity: usize, metrics: Arc<Metrics>) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut slots = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(MODEL_EXT) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if validate_name(stem).is_err() {
                continue;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            slots.insert(
                stem.to_string(),
                Arc::new(ModelSlot {
                    name: stem.to_string(),
                    path: path.clone(),
                    model: Mutex::new(None),
                    last_used: AtomicU64::new(0),
                    file_bytes: AtomicU64::new(bytes),
                }),
            );
        }
        Ok(ModelRegistry {
            dir: dir.to_path_buf(),
            slots,
            clock: AtomicU64::new(1),
            capacity: capacity.max(1),
            metrics,
            threads: 0,
            numeric_mode: NumericMode::default(),
        })
    }

    /// Worker-thread count applied to models as they are loaded or saved
    /// (0 = auto; already-cached instances keep their setting).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Numeric kernel mode applied to models as they are loaded or saved
    /// (already-cached instances keep their setting).
    pub fn set_numeric_mode(&mut self, mode: NumericMode) {
        self.numeric_mode = mode;
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn touch(&self, slot: &ModelSlot) {
        // relaxed-ok: LRU stamps are advisory; the fetch_add is already a
        // total order on the clock itself, and an approximately-ordered
        // last_used only perturbs which victim eviction picks.
        let t = self.clock.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(t, Ordering::Relaxed);
    }

    /// Persist a freshly fitted model under `name` (atomic rename) and cache
    /// the live instance. Overwrites any previous model of the same name.
    pub fn save_fitted(&mut self, name: &str, mut fitted: FittedTriad) -> Result<(), String> {
        validate_name(name)?;
        fitted.set_threads(self.threads);
        fitted.set_numeric_mode(self.numeric_mode);
        let final_path = self.dir.join(format!("{name}.{MODEL_EXT}"));
        let tmp_path = self.dir.join(format!(".{name}.{MODEL_EXT}.tmp"));
        persist::save_file(&tmp_path, &fitted).map_err(|e| format!("save {name}: {e}"))?;
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp_path);
            format!("install {name}: {e}")
        })?;
        let bytes = std::fs::metadata(&final_path).map(|m| m.len()).unwrap_or(0);

        let slot = self
            .slots
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(ModelSlot {
                    name: name.to_string(),
                    path: final_path.clone(),
                    model: Mutex::new(None),
                    last_used: AtomicU64::new(0),
                    file_bytes: AtomicU64::new(0),
                })
            })
            .clone();
        // relaxed-ok: display-only size bookkeeping; see `file_bytes`.
        slot.file_bytes.store(bytes, Ordering::Relaxed);
        *slot.model.lock().map_err(|_| "slot poisoned")? = Some(SendModel(fitted));
        self.touch(&slot);
        self.enforce_capacity();
        Ok(())
    }

    /// Look up a slot by name.
    pub fn slot(&self, name: &str) -> Option<Arc<ModelSlot>> {
        self.slots.get(name).cloned()
    }

    /// Lock a slot's model, deserializing from disk on a cache miss, and
    /// update LRU bookkeeping. The returned guard keeps exclusive use of the
    /// model for the caller's batch.
    pub fn lock_loaded<'s>(
        &self,
        slot: &'s ModelSlot,
    ) -> Result<MutexGuard<'s, Option<SendModel>>, String> {
        // lint-allow(lock-across-io): deserializing under the slot lock is the
        // cache-miss protocol — it serializes concurrent loads of one model so
        // the file is read once, and the guard is exactly what callers came
        // for; other models' slots are untouched and proceed in parallel.
        let mut guard = slot.model.lock().map_err(|_| "slot poisoned")?;
        if guard.is_some() {
            inc(&self.metrics.cache_hits);
        } else {
            inc(&self.metrics.cache_misses);
            let mut fitted =
                persist::load_file(&slot.path).map_err(|e| format!("load {}: {e}", slot.name))?;
            fitted.set_threads(self.threads);
            fitted.set_numeric_mode(self.numeric_mode);
            *guard = Some(SendModel(fitted));
        }
        self.touch(slot);
        // A fresh load may have pushed us over the cache budget.
        self.enforce_capacity();
        Ok(guard)
    }

    /// Drop the deserialized copy (the file stays). Returns whether a live
    /// instance was actually evicted.
    pub fn evict(&self, name: &str) -> Result<bool, String> {
        let Some(slot) = self.slots.get(name) else {
            return Err(format!("no such model {name:?}"));
        };
        let mut guard = slot.model.lock().map_err(|_| "slot poisoned")?;
        let was_loaded = guard.take().is_some();
        if was_loaded {
            inc(&self.metrics.cache_evictions);
        }
        Ok(was_loaded)
    }

    /// Keep at most `capacity` models deserialized, dropping the
    /// least-recently-used ones. Slots whose lock is currently held (a batch
    /// is running on them) are skipped — they are in use by definition.
    fn enforce_capacity(&self) {
        loop {
            let mut loaded: Vec<(&Arc<ModelSlot>, u64)> = Vec::new();
            for slot in self.slots.values() {
                if let Ok(g) = slot.model.try_lock() {
                    if g.is_some() {
                        // relaxed-ok: advisory LRU stamp; see `touch`.
                        loaded.push((slot, slot.last_used.load(Ordering::Relaxed)));
                    }
                }
            }
            if loaded.len() <= self.capacity {
                return;
            }
            let Some(&(victim, _)) = loaded.iter().min_by_key(|(_, t)| *t) else {
                return;
            };
            if let Ok(mut g) = victim.model.try_lock() {
                if g.take().is_some() {
                    inc(&self.metrics.cache_evictions);
                }
            } else {
                return;
            }
        }
    }

    /// All known models, sorted by name.
    pub fn list(&self) -> Vec<ModelInfo> {
        let mut out: Vec<ModelInfo> = self
            .slots
            .values()
            .map(|s| ModelInfo {
                name: s.name.clone(),
                loaded: s.is_loaded(),
                file_bytes: s.file_bytes(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use triad_core::{TriAd, TriadConfig};

    fn quick_fit(seed: u64) -> FittedTriad {
        let train: Vec<f64> = (0..600)
            .map(|i| (2.0 * PI * i as f64 / 40.0).sin())
            .collect();
        let cfg = TriadConfig {
            epochs: 2,
            depth: 2,
            hidden: 6,
            batch: 4,
            merlin_step: 4,
            seed,
            ..Default::default()
        };
        TriAd::new(cfg).fit(&train).expect("fit")
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("triad_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_list_evict_reload() {
        let dir = tmp_dir("basic");
        let metrics = Arc::new(Metrics::new());
        let mut reg = ModelRegistry::open(&dir, 4, Arc::clone(&metrics)).unwrap();
        assert!(reg.is_empty());

        reg.save_fitted("m1", quick_fit(1)).unwrap();
        let infos = reg.list();
        assert_eq!(infos.len(), 1);
        assert!(infos[0].loaded && infos[0].file_bytes > 0);

        // Evict drops the instance but keeps the file; reload works.
        assert!(reg.evict("m1").unwrap());
        assert!(!reg.slot("m1").unwrap().is_loaded());
        let slot = reg.slot("m1").unwrap();
        {
            let guard = reg.lock_loaded(&slot).unwrap();
            assert!(guard.is_some());
        }
        assert_eq!(crate::metrics::get(&metrics.cache_misses), 1);
        assert!(reg.evict("nope").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_discovers_saved_models() {
        let dir = tmp_dir("reopen");
        let metrics = Arc::new(Metrics::new());
        {
            let mut reg = ModelRegistry::open(&dir, 4, Arc::clone(&metrics)).unwrap();
            reg.save_fitted("persisted", quick_fit(2)).unwrap();
        }
        let reg = ModelRegistry::open(&dir, 4, metrics).unwrap();
        assert_eq!(reg.len(), 1);
        let slot = reg.slot("persisted").unwrap();
        assert!(!slot.is_loaded());
        assert!(reg.lock_loaded(&slot).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_caps_loaded_models() {
        let dir = tmp_dir("lru");
        let metrics = Arc::new(Metrics::new());
        let mut reg = ModelRegistry::open(&dir, 2, Arc::clone(&metrics)).unwrap();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            reg.save_fitted(name, quick_fit(i as u64)).unwrap();
        }
        let loaded: usize = reg.list().iter().filter(|m| m.loaded).count();
        assert!(loaded <= 2, "{loaded} loaded");
        assert!(crate::metrics::get(&metrics.cache_evictions) >= 1);
        // The most recently saved model survived.
        assert!(reg.slot("c").unwrap().is_loaded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_names() {
        let dir = tmp_dir("names");
        let metrics = Arc::new(Metrics::new());
        let mut reg = ModelRegistry::open(&dir, 2, metrics).unwrap();
        for bad in ["", "../escape", "a/b", ".hidden", &"x".repeat(65)] {
            assert!(reg.save_fitted(bad, quick_fit(0)).is_err(), "{bad:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detection_identical_across_evict_reload() {
        let dir = tmp_dir("bitexact");
        let metrics = Arc::new(Metrics::new());
        let mut reg = ModelRegistry::open(&dir, 4, metrics).unwrap();
        reg.save_fitted("m", quick_fit(7)).unwrap();
        let test: Vec<f64> = (0..300)
            .map(|i| {
                (2.0 * PI * i as f64 / 40.0).sin() + if (120..160).contains(&i) { 0.8 } else { 0.0 }
            })
            .collect();
        let slot = reg.slot("m").unwrap();
        let before = {
            let guard = reg.lock_loaded(&slot).unwrap();
            guard.as_ref().unwrap().detect(&test)
        };
        reg.evict("m").unwrap();
        let after = {
            let guard = reg.lock_loaded(&slot).unwrap();
            guard.as_ref().unwrap().detect(&test)
        };
        assert_eq!(before.prediction, after.prediction);
        assert_eq!(before.votes, after.votes);
        assert_eq!(before.discords, after.discords);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
